//! Vendored offline stand-in for `criterion`.
//!
//! Implements the harness surface this workspace's benches use —
//! `Criterion::bench_function`, `benchmark_group` (+ `sample_size`,
//! `finish`), `Bencher::iter`/`iter_batched`, `BatchSize`,
//! `criterion_group!`, `criterion_main!` — measuring with `std::time::Instant`
//! and printing a compact `name: median time/iter over N samples` line
//! instead of the real crate's statistical reports.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup allocations (accepted, not tuned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// A fresh batch every iteration.
    PerIteration,
}

/// Runs closures and records wall-clock samples.
pub struct Bencher {
    samples: u32,
    recorded: Vec<Duration>,
}

impl Bencher {
    fn new(samples: u32) -> Bencher {
        Bencher {
            samples,
            recorded: Vec::new(),
        }
    }

    /// Times `routine` over several samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then timed samples.
        std_black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            self.recorded.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs produced by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.recorded.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.recorded.is_empty() {
            return Duration::ZERO;
        }
        self.recorded.sort();
        self.recorded[self.recorded.len() / 2]
    }
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        println!(
            "bench {}: {:?}/iter (median of {} samples)",
            name.as_ref(),
            b.median(),
            self.sample_size
        );
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u32>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u32);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher::new(samples);
        f(&mut b);
        println!(
            "bench {}/{}: {:?}/iter (median of {samples} samples)",
            self.name,
            name.as_ref(),
            b.median()
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("x", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }
}
