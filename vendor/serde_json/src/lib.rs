//! Vendored offline stand-in for `serde_json`.
//!
//! Provides `to_string`, `to_string_pretty`, and `from_str` over the vendored
//! `serde` crate's [`Value`] data model. The emitted text is standard JSON;
//! floats print via Rust's shortest round-trip `Display` (so parsing the
//! output recovers the exact bit pattern — the `float_roundtrip` feature of
//! the real crate is the default and only behavior here).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

pub use serde::Value as JsonValue;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if !n.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            // Keep integral floats distinguishable from integers is not
            // required; serde_json prints `1.0` as `1.0`, so match that.
            if n.fract() == 0.0 && n.abs() < 1e15 {
                out.push_str(&format!("{n:.1}"));
            } else {
                out.push_str(&n.to_string());
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Handle surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::new("control character in string"));
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi\"\\".to_string()).unwrap(), r#""hi\"\\""#);
    }

    #[test]
    fn integral_floats_keep_a_fraction_marker() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
    }

    #[test]
    fn float_display_round_trips_exactly() {
        for x in [0.1f64, 1e-300, 123_456_789.123_456_78, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
    }

    #[test]
    fn nested_collections_round_trip() {
        let v: Vec<Vec<Option<u32>>> = vec![vec![Some(1), None], vec![]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,null],[]]");
        assert_eq!(from_str::<Vec<Vec<Option<u32>>>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<u32> = vec![1, 2];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("{not json").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("42 trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }
}
