//! Vendored offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! Value-based traits in the vendored `serde` crate, by parsing the raw token
//! stream (the build environment has no `syn`/`quote`). Supported shapes are
//! exactly what this workspace uses: non-generic structs (named, tuple,
//! newtype, unit) and enums (unit, newtype, tuple, struct variants), with the
//! container attributes `#[serde(default)]` and
//! `#[serde(rename_all = "snake_case")]` and the field attribute
//! `#[serde(default)]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum VariantData {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    data: VariantData,
}

#[derive(Debug)]
enum Kind {
    UnitStruct,
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    container_default: bool,
    rename_all_snake: bool,
    kind: Kind,
}

#[derive(Debug, Default)]
struct SerdeAttrs {
    default: bool,
    rename_all_snake: bool,
}

/// Consumes leading `#[...]` attribute pairs from `toks` starting at `*i`,
/// returning any `#[serde(...)]` settings found.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut out = SerdeAttrs::default();
    while *i + 1 < toks.len() {
        let is_pound = matches!(&toks[*i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_pound {
            break;
        }
        let TokenTree::Group(g) = &toks[*i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    parse_serde_args(&args.stream(), &mut out);
                }
            }
        }
        *i += 2;
    }
    out
}

fn parse_serde_args(stream: &TokenStream, out: &mut SerdeAttrs) {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut j = 0;
    while j < toks.len() {
        if let TokenTree::Ident(id) = &toks[j] {
            match id.to_string().as_str() {
                "default" => out.default = true,
                "rename_all" => {
                    // rename_all = "snake_case"
                    if let Some(TokenTree::Literal(lit)) = toks.get(j + 2) {
                        if lit.to_string().contains("snake_case") {
                            out.rename_all_snake = true;
                        } else {
                            panic!("vendored serde_derive: unsupported rename_all {lit}");
                        }
                        j += 2;
                    }
                }
                other => panic!("vendored serde_derive: unsupported serde attribute `{other}`"),
            }
        }
        j += 1;
    }
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(&toks[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Parses the named fields of a brace-delimited body.
fn parse_named_fields(stream: &TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_visibility(&toks, &mut i);
        let TokenTree::Ident(name) = &toks[i] else {
            panic!(
                "vendored serde_derive: expected field name, found {:?}",
                toks[i].to_string()
            );
        };
        fields.push(Field {
            name: name.to_string(),
            default: attrs.default,
        });
        i += 1;
        // Skip `: Type` up to the next top-level comma; commas inside
        // parens/brackets are hidden by token groups, but generic arguments
        // use bare `<`/`>` puncts, so track angle depth explicitly.
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a paren-delimited tuple body.
fn count_tuple_fields(stream: &TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(toks.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') && angle == 0 {
        count -= 1;
    }
    count
}

fn parse_variants(stream: &TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let _attrs = take_attrs(&toks, &mut i); // tolerates #[default], #[doc], …
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!(
                "vendored serde_derive: expected variant name, found {:?}",
                toks[i].to_string()
            );
        };
        let name = name.to_string();
        i += 1;
        let data = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantData::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantData::Struct(parse_named_fields(&g.stream()))
            }
            _ => VariantData::Unit,
        };
        variants.push(Variant { name, data });
        // Skip to past the separating comma (also skips `= discr` forms).
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = take_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let keyword = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!(
            "vendored serde_derive: expected struct/enum, found {:?}",
            other.to_string()
        ),
    };
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        panic!("vendored serde_derive: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive: generic types are not supported ({name})");
    }
    let kind = match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!(
                "vendored serde_derive: unsupported struct body {:?}",
                other.map(|t| t.to_string())
            ),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(&g.stream()))
            }
            other => panic!(
                "vendored serde_derive: unsupported enum body {:?}",
                other.map(|t| t.to_string())
            ),
        },
        other => panic!("vendored serde_derive: cannot derive for `{other}` items"),
    };
    Input {
        name,
        container_default: attrs.default,
        rename_all_snake: attrs.rename_all_snake,
        kind,
    }
}

/// serde's `rename_all = "snake_case"` rule: an underscore before every
/// non-leading uppercase letter, then lowercase.
fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() && i > 0 {
            out.push('_');
        }
        out.push(c.to_ascii_lowercase());
    }
    out
}

fn wire_name(input: &Input, variant: &str) -> String {
    if input.rename_all_snake {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

fn obj_literal(pairs: &[(String, String)]) -> String {
    if pairs.is_empty() {
        return "serde::Value::Obj(::std::vec::Vec::new())".to_string();
    }
    let entries: Vec<String> = pairs
        .iter()
        .map(|(k, expr)| format!("(::std::string::String::from(\"{k}\"), {expr})"))
        .collect();
    format!(
        "serde::Value::Obj(::std::vec::Vec::from([{}]))",
        entries.join(", ")
    )
}

/// Generates the match arm body deserializing named `fields` out of the
/// object `src_expr` into constructor `ctor` (e.g. `Name` or `Name::Variant`).
fn gen_named_de(ctor: &str, src_expr: &str, fields: &[Field], container_default: bool) -> String {
    if container_default {
        let mut body =
            format!("{{ let mut __out: {ctor} = <{ctor} as ::std::default::Default>::default();\n");
        for f in fields {
            body.push_str(&format!(
                "if let ::std::option::Option::Some(__x) = {src}.get_field(\"{n}\") {{ __out.{n} = serde::Deserialize::from_value(__x)?; }}\n",
                src = src_expr,
                n = f.name
            ));
        }
        body.push_str("::std::result::Result::Ok(__out) }");
        return body;
    }
    let mut inits = Vec::new();
    for f in fields {
        let fallback = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!("serde::Deserialize::from_missing_field(\"{}\")?", f.name)
        };
        inits.push(format!(
            "{n}: match {src}.get_field(\"{n}\") {{ ::std::option::Option::Some(__x) => serde::Deserialize::from_value(__x)?, ::std::option::Option::None => {fallback} }}",
            n = f.name,
            src = src_expr,
        ));
    }
    format!(
        "::std::result::Result::Ok({ctor} {{ {} }})",
        inits.join(", ")
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => "serde::Value::Null".to_string(),
        Kind::NamedStruct(fields) => {
            let pairs: Vec<(String, String)> = fields
                .iter()
                .map(|f| {
                    (
                        f.name.clone(),
                        format!("serde::Serialize::to_value(&self.{})", f.name),
                    )
                })
                .collect();
            obj_literal(&pairs)
        }
        Kind::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "serde::Value::Arr(::std::vec::Vec::from([{}]))",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let wire = wire_name(&input, &v.name);
                let arm = match &v.data {
                    VariantData::Unit => format!(
                        "{name}::{v} => serde::Value::Str(::std::string::String::from(\"{wire}\")),",
                        v = v.name
                    ),
                    VariantData::Tuple(1) => format!(
                        "{name}::{v}(__f0) => {obj},",
                        v = v.name,
                        obj = obj_literal(&[(wire, "serde::Serialize::to_value(__f0)".to_string())])
                    ),
                    VariantData::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Serialize::to_value(__f{i})"))
                            .collect();
                        let arr = format!(
                            "serde::Value::Arr(::std::vec::Vec::from([{}]))",
                            items.join(", ")
                        );
                        format!(
                            "{name}::{v}({binds}) => {obj},",
                            v = v.name,
                            binds = binds.join(", "),
                            obj = obj_literal(&[(wire, arr)])
                        )
                    }
                    VariantData::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| format!("{n}: __b_{n}", n = f.name)).collect();
                        let pairs: Vec<(String, String)> = fields
                            .iter()
                            .map(|f| {
                                (f.name.clone(), format!("serde::Serialize::to_value(__b_{})", f.name))
                            })
                            .collect();
                        let inner = obj_literal(&pairs);
                        format!(
                            "{name}::{v} {{ {binds} }} => {obj},",
                            v = v.name,
                            binds = binds.join(", "),
                            obj = obj_literal(&[(wire, inner)])
                        )
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    let out = format!(
        "impl serde::Serialize for {name} {{\n fn to_value(&self) -> serde::Value {{ {body} }}\n}}"
    );
    out.parse()
        .expect("vendored serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => format!(
            "match __v {{ serde::Value::Null => ::std::result::Result::Ok({name}), _ => ::std::result::Result::Err(serde::DeError::custom(\"expected null for unit struct {name}\")) }}"
        ),
        Kind::NamedStruct(fields) => {
            let check = format!(
                "if __v.as_obj().is_none() {{ return ::std::result::Result::Err(serde::DeError::custom(\"expected object for {name}\")); }}"
            );
            format!("{check}\n{}", gen_named_de(name, "__v", fields, input.container_default))
        }
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(serde::Deserialize::from_value(__v)?))"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_arr().ok_or_else(|| serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if __items.len() != {n} {{ return ::std::result::Result::Err(serde::DeError::custom(\"wrong tuple arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for v in variants {
                let wire = wire_name(&input, &v.name);
                match &v.data {
                    VariantData::Unit => unit_arms.push(format!(
                        "\"{wire}\" => ::std::result::Result::Ok({name}::{v}),",
                        v = v.name
                    )),
                    VariantData::Tuple(1) => data_arms.push(format!(
                        "\"{wire}\" => ::std::result::Result::Ok({name}::{v}(serde::Deserialize::from_value(__inner)?)),",
                        v = v.name
                    )),
                    VariantData::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        data_arms.push(format!(
                            "\"{wire}\" => {{\n\
                             let __items = __inner.as_arr().ok_or_else(|| serde::DeError::custom(\"expected array for variant {wire}\"))?;\n\
                             if __items.len() != {n} {{ return ::std::result::Result::Err(serde::DeError::custom(\"wrong arity for variant {wire}\")); }}\n\
                             ::std::result::Result::Ok({name}::{v}({items}))\n}},",
                            v = v.name,
                            items = items.join(", ")
                        ));
                    }
                    VariantData::Struct(fields) => {
                        let ctor = format!("{name}::{v}", v = v.name);
                        // Struct variants never use container-default.
                        let mut inits = Vec::new();
                        for f in fields {
                            let fallback = if f.default {
                                "::std::default::Default::default()".to_string()
                            } else {
                                format!("serde::Deserialize::from_missing_field(\"{}\")?", f.name)
                            };
                            inits.push(format!(
                                "{n}: match __inner.get_field(\"{n}\") {{ ::std::option::Option::Some(__x) => serde::Deserialize::from_value(__x)?, ::std::option::Option::None => {fallback} }}",
                                n = f.name
                            ));
                        }
                        data_arms.push(format!(
                            "\"{wire}\" => ::std::result::Result::Ok({ctor} {{ {} }}),",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 serde::Value::Str(__s) => match __s.as_str() {{\n{units}\n_ => ::std::result::Result::Err(serde::DeError::custom(::std::format!(\"unknown variant `{{}}` of {name}\", __s))) }},\n\
                 serde::Value::Obj(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__k, __inner) = &__pairs[0];\n let _ = __inner;\n\
                 match __k.as_str() {{\n{datas}\n_ => ::std::result::Result::Err(serde::DeError::custom(::std::format!(\"unknown variant `{{}}` of {name}\", __k))) }}\n}},\n\
                 _ => ::std::result::Result::Err(serde::DeError::custom(\"expected string or single-key object for enum {name}\"))\n}}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n"),
            )
        }
    };
    let out = format!(
        "impl serde::Deserialize for {name} {{\n fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{ {body} }}\n}}"
    );
    out.parse()
        .expect("vendored serde_derive: generated invalid Deserialize impl")
}
