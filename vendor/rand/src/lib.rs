//! Vendored offline stand-in for `rand` 0.9.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods this workspace calls (`random::<f64>()`, `random_range(lo..hi)`).
//! The generator is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `StdRng` (ChaCha12), but the workspace only requires a
//! deterministic, statistically solid stream, not upstream-identical output.

use std::ops::Range;

pub mod rngs {
    pub use super::StdRng;
}

/// A seedable random number generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// The raw 64-bit output interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Distributions samplable by [`Rng::random`].
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution for this type.
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Lemire's multiply-shift; span == 0 encodes the full 2^64 range.
    if span == 0 {
        return rng.next_u64();
    }
    // Rejection loop keeps the draw exactly uniform.
    let zone = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_std(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring the `rand` 0.9 `Rng` surface.
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_std(self)
    }

    /// Draws uniformly from a range.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_uniform_ish() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(0usize..3);
            assert!(y < 3);
        }
        // Full-width range must not panic or loop.
        let _ = r.random_range(0u64..u64::MAX);
    }
}
