//! Vendored offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a small serialization framework under the `serde` name. It keeps
//! the *derive-facing* surface the workspace actually uses — `#[derive(Serialize,
//! Deserialize)]`, `#[serde(default)]`, `#[serde(rename_all = "snake_case")]` —
//! but is built on a simple JSON-like [`Value`] data model rather than the
//! full serde visitor architecture. `serde_json` in `vendor/serde_json`
//! renders and parses that model.
//!
//! Encoding conventions match serde's externally-tagged defaults:
//! structs are objects, newtype structs are their inner value, tuple structs
//! are arrays, unit enum variants are strings, and data-carrying variants are
//! single-key objects.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-like data model everything serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also unit and `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative integer.
    I64(i64),
    /// A non-negative integer, kept exact (no `f64` round-trip).
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object's pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array's items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get_field<'a>(&'a self, key: &str) -> Option<&'a Value> {
        self.as_obj()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// The standard "missing field" error.
    pub fn missing_field(field: &str) -> DeError {
        DeError::custom(format!("missing field `{field}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can convert itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent from the input. `Option` fields
    /// become `None` (matching serde); everything else errors.
    fn from_missing_field(field: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let out = match *v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::F64(n) if n.fract() == 0.0 => Ok(n as $t),
                    ref other => Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", found {}"), other.type_name()))),
                };
                out
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(n) => Ok(n),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(DeError::custom(format!(
                "expected float, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::custom(format!(
                "expected null, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected array, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

fn key_to_string<K: Serialize>(k: &K) -> String {
    // JSON object keys must be strings; like serde_json, only keys whose
    // serialized form is a string are supported.
    match k.to_value() {
        Value::Str(s) => s,
        other => panic!(
            "map key must serialize to a string, found {}",
            other.type_name()
        ),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    K::from_value(&Value::Str(s.to_string()))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected object, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<K: Serialize + std::hash::Hash + Eq, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic, as the simulation
        // requires byte-identical output for identical state.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected object, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected array, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize + Ord + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        // Sort elements so serialization is deterministic, as the simulation
        // requires byte-identical output for identical state.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Arr(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected array, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Rc::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_arr().ok_or_else(|| DeError::custom("expected array for tuple"))?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if items.len() != LEN {
                    return Err(DeError::custom(format!("expected tuple of {} elements, found {}", LEN, items.len())));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_is_none() {
        assert_eq!(Option::<u32>::from_missing_field("x"), Ok(None));
        assert!(u32::from_missing_field("x").is_err());
    }

    #[test]
    fn integers_stay_exact() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v), Ok(u64::MAX));
        let v = (-7i64).to_value();
        assert_eq!(i64::from_value(&v), Ok(-7));
    }

    #[test]
    fn maps_and_vecs_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1u32, 2, 3]);
        let v = m.to_value();
        assert_eq!(BTreeMap::<String, Vec<u32>>::from_value(&v), Ok(m));
    }
}
