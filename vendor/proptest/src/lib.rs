//! Vendored offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`,
//! `any`, integer/float range strategies, `[chars]{m,n}` string strategies,
//! tuple strategies, `.prop_map`, `.prop_recursive`,
//! `proptest::collection::{vec, btree_map}`, `proptest::bool::ANY`, and
//! `ProptestConfig::with_cases` — as a deterministic generate-and-check
//! loop. Cases are generated from a fixed
//! per-case seed, so failures are reproducible run to run; there is no
//! shrinking: the failing inputs are printed verbatim.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }

        /// Builds a recursive strategy: `self` generates leaves, and
        /// `recurse` wraps an inner strategy into branches. `depth` bounds
        /// the nesting; the size hints of the real API are accepted but
        /// unused. At each level the generator picks uniformly between a
        /// leaf and one more level of branching, so generation always
        /// terminates.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut strat = base.clone();
            for _ in 0..depth {
                strat = Union::new(vec![base.clone(), recurse(strat).boxed()]).boxed();
            }
            strat
        }
    }

    /// Object-safe strategy, used behind [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn DynStrategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate_dyn(rng)
        }
    }

    /// Strategy returning a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug + 'static> Union<T> {
        /// Creates a union over the given options.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    signed_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// `&str` strategies: a `[chars]{m,n}` character-class pattern, or a
    /// literal string when the pattern shape is not recognized.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let Some(parsed) = parse_char_class_pattern(pattern) else {
            return pattern.to_string();
        };
        let (chars, lo, hi) = parsed;
        let len = if lo == hi {
            lo
        } else {
            lo + rng.below((hi - lo + 1) as u64) as usize
        };
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }

    /// Parses `[a-z0-9 ]{m,n}` (or `{n}`) into (alphabet, min, max).
    fn parse_char_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class = &rest[..close];
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        let mut chars = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (a, b) = (cs[i], cs[i + 2]);
                for c in a..=b {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        Some((chars, lo, hi))
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+),)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A),
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
    }

    /// Strategy for a whole primitive domain (the `any::<T>()` backend).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next() as $t
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    use super::strategy::AnyStrategy;
    use std::marker::PhantomData;

    /// Produces the canonical whole-domain strategy for `T`.
    pub fn any<T>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod bool {
    use super::strategy::{AnyStrategy, Strategy};
    use super::test_runner::TestRng;

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            AnyStrategy::<bool> {
                _marker: std::marker::PhantomData,
            }
            .generate(rng)
        }
    }

    /// Uniform over `{false, true}`.
    pub const ANY: BoolAny = BoolAny;
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` with size drawn from
    /// `size` (possibly smaller after key deduplication).
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Builds a [`BTreeMapStrategy`].
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord + Debug,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod test_runner {
    use rand::{Rng, RngCore, SeedableRng};
    use std::fmt;

    /// Per-run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// The deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// A deterministic generator for the given case index.
        #[must_use]
        pub fn deterministic(case: u64) -> TestRng {
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(
                    0x5EED_5EED_0000_0001 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            }
        }

        /// The next raw 64 bits (named to mirror the real crate's API, not
        /// `Iterator::next`).
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform in `[0, bound)`; `bound` of 0 means the full 2^64 span.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return self.next();
            }
            self.inner.random_range(0..bound)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.inner.random::<f64>()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each `name(arg in strategy, ...)` block becomes a
/// `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(__case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = ::std::format!(
                        ::std::concat!($(::std::stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__e) = __result {
                        ::std::panic!(
                            "proptest case {} failed: {}\n  inputs: {}",
                            __case, __e, __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, ::std::format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l != __r, "assertion failed: `{:?}` != `{:?}`", __l, __r);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn string_pattern_matches_class(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vec_and_map_sizes(v in crate::collection::vec(0u8..10, 1..6),
                             m in crate::collection::btree_map("[a-z]{1,3}", 0u32..5, 0..4)) {
            prop_assert!((1..6).contains(&v.len()));
            prop_assert!(m.len() < 4);
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![Just(1u32), 5u32..8, (10u32..12).prop_map(|v| v * 2)]) {
            prop_assert!(x == 1 || (5..8).contains(&x) || x == 20 || x == 22);
        }

        #[test]
        fn recursive_strategy_terminates_within_depth(
            s in Just("x".to_string())
                .prop_recursive(4, 16, 2, |inner| inner.prop_map(|s| format!("({s})")))
        ) {
            prop_assert!(s.matches('x').count() == 1);
            prop_assert!(s.len() <= 1 + 2 * 4, "nested deeper than the bound: {s}");
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..100, 1..10);
        let mut a = crate::test_runner::TestRng::deterministic(7);
        let mut b = crate::test_runner::TestRng::deterministic(7);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
