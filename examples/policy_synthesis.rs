//! Automatic policy extraction (the paper's §VI future work, implemented):
//! observe an exploit on the undefended browser, derive a blocking policy
//! from the trace's dangerous facts alone, install it, and show the re-run
//! is clean.
//!
//! ```sh
//! cargo run --example policy_synthesis
//! ```

use jskernel::attacks::cve_exploits::Exploit2018_5092;
use jskernel::attacks::harness::CveExploit;
use jskernel::browser::Browser;
use jskernel::core::policy::synthesize;
use jskernel::core::{config::KernelConfig, kernel::JsKernel};
use jskernel::vuln::oracle;
use jskernel::DefenseKind;

fn main() {
    let exploit = Exploit2018_5092;
    let cve = exploit.cve();

    // Phase 1 — observe: run the exploit on the undefended browser.
    let mut victim = Browser::new(
        DefenseKind::LegacyChrome.config(1),
        DefenseKind::LegacyChrome.mediator(),
    );
    exploit.run(&mut victim);
    let report = oracle::scan(victim.trace());
    println!("observation run ({}):", cve);
    for (c, e) in report.triggered() {
        println!("  triggered {c}: {}", e.witness);
    }

    // Phase 2 — extract: derive rules from the dangerous facts (the
    // synthesizer never consults the CVE oracle).
    let policy = synthesize("observed", victim.trace()).expect("dangerous trace");
    println!("\nsynthesized policy:\n{}", policy.to_json());

    // Phase 3 — enforce: install only the synthesized policy and re-run.
    let kernel = JsKernel::new(KernelConfig::timing_only().with_policy(policy));
    let mut defended = Browser::new(DefenseKind::JsKernel.config(1), Box::new(kernel));
    exploit.run(&mut defended);
    let report = oracle::scan(defended.trace());
    println!(
        "re-run under the synthesized policy: {} triggered vulnerabilities",
        report.count()
    );
    assert_eq!(report.count(), 0);
}
