//! Trace forensics: run the same exploit under the undefended browser and
//! under JSKernel, export both traces as JSON, and diff their dangerous
//! facts — the workflow an analyst uses to see *what* a defense changed.
//!
//! ```sh
//! cargo run --example trace_diff
//! ```

use jskernel::attacks::cve_exploits::Exploit2014_1488;
use jskernel::attacks::harness::CveExploit;
use jskernel::browser::trace::{Fact, Trace, TraceItem};
use jskernel::browser::Browser;
use jskernel::DefenseKind;
use std::collections::BTreeMap;

/// Buckets a trace's facts by variant name.
fn fact_histogram(trace: &Trace) -> BTreeMap<String, usize> {
    let mut hist = BTreeMap::new();
    for entry in trace.entries() {
        if let TraceItem::Fact(f) = &entry.item {
            let label = match f {
                Fact::FetchStarted { .. } => "FetchStarted",
                Fact::FetchSettled { .. } => "FetchSettled",
                Fact::AbortDelivered { .. } => "AbortDelivered",
                Fact::WorkerStarted { .. } => "WorkerStarted",
                Fact::WorkerTerminated {
                    user_level_only: false,
                    ..
                } => "WorkerTerminated(real)",
                Fact::WorkerTerminated { .. } => "WorkerTerminated(user-level)",
                Fact::TransferFreed { .. } => "TransferFreed",
                Fact::FreedBufferAccess { .. } => "FreedBufferAccess",
                Fact::Denied { .. } => "Denied",
                other => {
                    let dbg = format!("{other:?}");
                    let name = dbg.split([' ', '{']).next().unwrap_or("Other").to_owned();
                    return_insert(&mut hist, name);
                    continue;
                }
            };
            return_insert(&mut hist, label.to_owned());
        }
    }
    hist
}

fn return_insert(hist: &mut BTreeMap<String, usize>, key: String) {
    *hist.entry(key).or_insert(0) += 1;
}

fn run(kind: DefenseKind) -> Browser {
    let exploit = Exploit2014_1488;
    let mut cfg = kind.config(3);
    exploit.configure(&mut cfg);
    let mut browser = Browser::new(cfg, kind.mediator());
    exploit.run(&mut browser);
    browser
}

fn main() {
    let legacy = run(DefenseKind::LegacyChrome);
    let kernel = run(DefenseKind::JsKernel);

    println!("CVE-2014-1488 exploit — fact histograms\n");
    println!("{:<30}{:>8}{:>10}", "fact", "legacy", "jskernel");
    let lh = fact_histogram(legacy.trace());
    let kh = fact_histogram(kernel.trace());
    let keys: std::collections::BTreeSet<_> = lh.keys().chain(kh.keys()).collect();
    for k in keys {
        println!(
            "{:<30}{:>8}{:>10}",
            k,
            lh.get(k).copied().unwrap_or(0),
            kh.get(k).copied().unwrap_or(0)
        );
    }

    // The JSON export is what offline tools (and the policy synthesizer)
    // consume.
    let json = kernel.trace_json();
    println!(
        "\nkernel trace: {} entries, {} bytes of JSON (Browser::trace_json)",
        kernel.trace().len(),
        json.len()
    );
    assert!(json.contains("WorkerTerminated"));
}
