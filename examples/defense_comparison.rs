//! A miniature Table I: run a representative timing attack (SVG filtering)
//! and a representative CVE exploit (worker SOP bypass) against every
//! defense column, with small trial counts for a quick demonstration.
//!
//! For the full matrix use `cargo bench -p jsk-bench --bench table1`.
//!
//! ```sh
//! cargo run --release --example defense_comparison
//! ```

use jskernel::attacks::cve_exploits::Exploit2013_1714;
use jskernel::attacks::harness::{run_cve_attack, run_timing_attack};
use jskernel::attacks::SvgFiltering;
use jskernel::DefenseKind;

fn main() {
    let trials = 8;
    println!("SVG filtering (timing) and CVE-2013-1714 (worker SOP bypass) per defense\n");
    println!(
        "{:<16}{:>12}{:>12}{:>14}{:>16}",
        "defense", "low (ms)", "high (ms)", "timing", "CVE-2013-1714"
    );
    for kind in DefenseKind::table1_columns() {
        let svg = run_timing_attack(&SvgFiltering::default(), kind, trials, 0xDEC0);
        let (low, high) = svg.summaries();
        let cve = run_cve_attack(&Exploit2013_1714, kind, 0xDEC1);
        println!(
            "{:<16}{:>12.2}{:>12.2}{:>14}{:>16}",
            kind.label(),
            low.mean,
            high.mean,
            if svg.defended() {
                "defends"
            } else {
                "VULNERABLE"
            },
            if cve.defended() {
                "defends"
            } else {
                "VULNERABLE"
            },
        );
    }
    println!(
        "\nJSKernel is the only column defending both: its kernel clock \
         makes the SVG measurement a constant, and its CVE policy enforces \
         the same-origin check the vulnerable worker path lacks."
    );
}
