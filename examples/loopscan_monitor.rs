//! Loopscan (§IV-A3): fingerprinting which cross-origin site is loading by
//! monitoring the shared main-thread event loop — run against legacy
//! Chrome, DeterFox (whose cross-context coupling still leaks), and
//! JSKernel (whose kernel clock shows a flat 1 ms).
//!
//! ```sh
//! cargo run --release --example loopscan_monitor
//! ```

use jskernel::attacks::harness::{run_timing_attack, Secret};
use jskernel::attacks::Loopscan;
use jskernel::DefenseKind;

fn main() {
    let attack = Loopscan::default();
    println!(
        "Loopscan — max event-loop gap while loading {} (secret A) vs {} (secret B)\n",
        attack.site_a.name, attack.site_b.name
    );
    println!(
        "{:<16}{:>16}{:>16}{:>14}",
        "defense", "google (ms)", "youtube (ms)", "verdict"
    );
    for kind in [
        DefenseKind::LegacyChrome,
        DefenseKind::LegacyFirefox,
        DefenseKind::DeterFox,
        DefenseKind::TorBrowser,
        DefenseKind::JsKernel,
    ] {
        let r = run_timing_attack(&attack, kind, 6, 0x1005);
        let (a, b) = r.summaries();
        println!(
            "{:<16}{:>16.2}{:>16.2}{:>14}",
            kind.label(),
            a.mean,
            b.mean,
            if r.defended() {
                "defends"
            } else {
                "VULNERABLE"
            },
        );
    }
    let _ = Secret::A;
    println!(
        "\nEach site's longest JavaScript burst stalls the attacker's \
         self-posted ticks by a site-specific amount — unless the observable \
         clock is the kernel's, where every gap is the deterministic message \
         quantum."
    );
}
