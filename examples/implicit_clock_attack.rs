//! Listing 1, end to end: a worker's `postMessage` stream as an implicit
//! clock, measuring an SVG filter whose cost depends on a secret (the
//! image's resolution) — run against the undefended browser and against
//! JSKernel.
//!
//! ```sh
//! cargo run --example implicit_clock_attack
//! ```

use jskernel::browser::mediator::LegacyMediator;
use jskernel::browser::task::{cb, worker_script};
use jskernel::browser::{Browser, BrowserConfig, JsValue, Mediator};
use jskernel::browser_profile::BrowserProfile;
use jskernel::sim::time::SimDuration;
use jskernel::{JsKernel, KernelConfig};
use std::cell::RefCell;
use std::rc::Rc;

/// Runs the Listing 1 attack once; returns the number of worker ticks the
/// adversary counted while the secret-dependent filter ran.
fn run_attack(mediator: Box<dyn Mediator>, seed: u64, secret_px: u64) -> f64 {
    let mut browser = Browser::new(BrowserConfig::new(BrowserProfile::chrome(), seed), mediator);
    browser.boot(move |scope| {
        // worker.js: for (;;) postMessage(i)  — a steady tick stream.
        let worker = scope.create_worker(
            "worker.js",
            worker_script(|scope| {
                scope.set_interval(
                    1.0,
                    cb(|scope, _| {
                        scope.post_message(JsValue::from(1.0));
                    }),
                );
            }),
        );
        let count = Rc::new(RefCell::new(0u64));
        let counter = count.clone();
        scope.set_worker_onmessage(
            worker,
            cb(move |_, _| {
                *counter.borrow_mut() += 1;
            }),
        );
        // Main script: measure the SVG filter between two animation frames.
        scope.set_timeout(
            60.0,
            cb(move |scope, _| {
                let count = count.clone();
                scope.request_animation_frame(cb(move |scope, _| {
                    let before = *count.borrow();
                    scope.apply_svg_filter(secret_px);
                    let count = count.clone();
                    scope.request_animation_frame(cb(move |scope, _| {
                        let ticks = *count.borrow() - before;
                        scope.record("ticks", JsValue::from(ticks as f64));
                    }));
                }));
            }),
        );
    });
    browser.run_for(SimDuration::from_millis(400));
    browser
        .record_value("ticks")
        .and_then(JsValue::as_f64)
        .expect("attack records its tick count")
}

fn main() {
    let low = 64 * 64; // the "small image" secret
    let high = 2048 * 2048; // the "large image" secret

    println!("Listing 1 — implicit clock via worker postMessage ticks\n");
    println!(
        "{:<28}{:>14}{:>14}",
        "defense", "low-res ticks", "high-res ticks"
    );

    for seed in 0..3 {
        let a = run_attack(Box::new(LegacyMediator), seed, low);
        let b = run_attack(Box::new(LegacyMediator), 100 + seed, high);
        println!("{:<28}{a:>14}{b:>14}", format!("legacy (seed {seed})"));
    }
    println!();
    for seed in 0..3 {
        let a = run_attack(Box::new(JsKernel::new(KernelConfig::full())), seed, low);
        let b = run_attack(
            Box::new(JsKernel::new(KernelConfig::full())),
            100 + seed,
            high,
        );
        println!("{:<28}{a:>14}{b:>14}", format!("jskernel (seed {seed})"));
    }

    println!(
        "\nOn the legacy browser the tick count tracks the filter's duration \
         — the adversary reads the secret. Under JSKernel the deterministic \
         scheduling policy (Listing 3) fixes the count: identical for both \
         secrets and across runs."
    );
}
