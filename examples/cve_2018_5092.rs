//! Listing 2, end to end: the CVE-2018-5092 use-after-free — a worker's
//! signal-carrying fetch, a false worker termination on document close, and
//! the abort sweep that hits the freed request — run against every defense
//! column of Table I, with the exploit oracle judging each run.
//!
//! ```sh
//! cargo run --example cve_2018_5092
//! ```

use jskernel::attacks::cve_exploits::Exploit2018_5092;
use jskernel::attacks::harness::run_cve_attack;
use jskernel::DefenseKind;

fn main() {
    println!("CVE-2018-5092 — abort delivered to a fetch freed by a false worker termination\n");
    println!("{:<16}{:<12}witness", "defense", "triggered");
    for kind in DefenseKind::table1_columns() {
        let result = run_cve_attack(&Exploit2018_5092, kind, 0x5092);
        println!(
            "{:<16}{:<12}{}",
            kind.label(),
            if result.triggered { "YES" } else { "no" },
            result.witness.as_deref().unwrap_or("-")
        );
    }
    println!(
        "\nThe legacy browsers (and the timing-only defenses) exhibit the \
         use-after-free. Chrome Zero avoids it as a side effect of its \
         polyfill worker (no real thread to falsely terminate). JSKernel \
         blocks it by policy (Listing 4): the kernel tracks the worker's \
         pending fetch through the pendingChildFetch/confirmFetch overlay \
         messages, keeps the kernel worker alive until the fetch settles, \
         and suppresses aborts aimed at freed requests."
    );
}
