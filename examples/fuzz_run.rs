//! Runs the coverage-guided schedule fuzzer and writes its artifacts:
//!
//! * `FUZZ_REPORT.json` — the full deterministic report (coverage,
//!   recall, findings, oracle violations).
//! * `fuzz_corpus/<name>.json` — one corpus entry per minimized finding,
//!   in the same JSON shape the seed corpus uses.
//!
//! Knobs: `JSK_FUZZ_ITERS` (default 200), `JSK_FUZZ_SEED` (default 1),
//! `JSK_JOBS` (workers; never changes output bytes).
//!
//! Exits nonzero on any oracle violation — a schedule that races *under
//! the kernel* — which is how the CI fuzz-smoke job gates.

use jsk_fuzz::{run_fuzz, FuzzConfig};
use std::path::Path;

fn main() {
    let cfg = FuzzConfig::from_env();
    eprintln!(
        "fuzz: iters={} seed={} jobs={}",
        cfg.iters, cfg.seed, cfg.jobs
    );
    let report = run_fuzz(&cfg);

    std::fs::write("FUZZ_REPORT.json", report.to_json() + "\n").expect("write FUZZ_REPORT.json");
    let dir = Path::new("fuzz_corpus");
    std::fs::create_dir_all(dir).expect("create fuzz_corpus/");
    for finding in report.findings.iter().chain(&report.oracle_violations) {
        let file = dir.join(format!(
            "{}.json",
            finding.schedule.name.replace(['~', '/'], "_")
        ));
        std::fs::write(&file, finding.schedule.to_json() + "\n").expect("write corpus entry");
    }

    println!(
        "executed {} candidates ({} corpus), {} coverage features",
        report.executed,
        report.corpus_size,
        report.coverage.len()
    );
    println!(
        "{} minimized finding(s), {} oracle violation(s)",
        report.findings.len(),
        report.oracle_violations.len()
    );
    for f in &report.findings {
        println!(
            "  finding {}: {} ({} -> {} events), novel: {:?}",
            f.name, f.mutation, f.events_before, f.events_after, f.novel
        );
    }
    for v in &report.oracle_violations {
        println!(
            "  ORACLE VIOLATION {}: {} race(s) under the kernel ({} events)",
            v.name, v.kernel_races, v.events_after
        );
    }
    if !report.oracle_violations.is_empty() {
        eprintln!("kernel-mode races found — failing");
        std::process::exit(1);
    }
}
