//! Quickstart: build a simulated browser, install the JSKernel, and run a
//! page that uses timers, a worker, `fetch`, and the DOM.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use jskernel::browser::net::ResourceSpec;
use jskernel::browser::task::{cb, worker_script};
use jskernel::browser::{Browser, BrowserConfig, JsValue};
use jskernel::browser_profile::BrowserProfile;
use jskernel::{JsKernel, KernelConfig};

fn main() {
    // A Chrome-profile browser with the full JSKernel (deterministic
    // scheduling + all twelve CVE policies) installed as its "extension".
    let cfg = BrowserConfig::new(BrowserProfile::chrome(), 42);
    let mut browser = Browser::new(cfg, Box::new(JsKernel::new(KernelConfig::full())));

    browser.register_resource(
        "https://attacker.example/data.json",
        ResourceSpec::of_size(4_096),
    );

    browser.boot(|scope| {
        // DOM.
        let heading = scope.create_element("h1");
        scope.set_text(heading, "hello from user space");
        let root = scope.document_root();
        scope.append_child(root, heading);

        // A worker that doubles numbers.
        let worker = scope.create_worker(
            "doubler.js",
            worker_script(|scope| {
                scope.set_onmessage(cb(|scope, v| {
                    let n = v.as_f64().unwrap_or_default();
                    scope.post_message(JsValue::from(n * 2.0));
                }));
            }),
        );
        scope.set_worker_onmessage(
            worker,
            cb(|scope, v| {
                scope.record("doubled", v);
            }),
        );
        scope.set_timeout(
            5.0,
            cb(move |scope, _| {
                scope.post_message_to_worker(worker, JsValue::from(21.0));
            }),
        );

        // A fetch.
        scope.fetch(
            "https://attacker.example/data.json",
            None,
            cb(|scope, v| {
                scope.record("fetch_ok", v.get("ok").cloned().unwrap_or_default());
            }),
        );

        // The kernel clock: reads advance with API activity, not physical
        // time.
        let t0 = scope.performance_now();
        scope.record("clock_ms", JsValue::from(t0));
    });

    browser.run_until_idle();

    println!("defense installed : {}", browser.defense_name());
    println!("doubled 21        : {:?}", browser.record_value("doubled"));
    println!("fetch ok          : {:?}", browser.record_value("fetch_ok"));
    println!("kernel clock (ms) : {:?}", browser.record_value("clock_ms"));
    println!("document          : {}", browser.dom().serialize());
    println!("simulated events  : {}", browser.steps());
}
