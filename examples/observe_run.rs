//! Records a Perfetto-loadable trace and a metrics snapshot of one CVE
//! exploit running against JSKernel.
//!
//! The observer watches the full two-phase event lifecycle: every kernel
//! dispatch is a `kernel.dispatch` span on its thread track, every
//! asynchronous event an async `kevent.*` span from registration to
//! release, every policy decision a `policy.decide` span. Open `kevent`
//! spans at the end of the trace are not a bug — they are orphaned events
//! the watchdog reaped, left visibly unfinished on purpose.
//!
//! ```sh
//! cargo run --example observe_run
//! # then load trace.perfetto.json at https://ui.perfetto.dev
//! ```
//!
//! Knobs: `JSK_OBSERVE=0` disables the observer (the run still prints the
//! oracle verdict); `JSK_OBSERVE_OUT=<dir>` redirects the two output files
//! (default: current directory). Timestamps are simulated time, so the
//! trace is byte-identical across machines and `JSK_JOBS` settings.

#[cfg(feature = "observe")]
fn main() {
    use jskernel::attacks::cve_exploits::Exploit2018_5092;
    use jskernel::attacks::harness::CveExploit;
    use jskernel::browser::browser::Browser;
    use jskernel::vuln::oracle;
    use jskernel::DefenseKind;
    use std::path::PathBuf;

    let seed = 0x5092;
    let exploit = Exploit2018_5092;
    let defense = DefenseKind::JsKernel;

    if !jsk_observe::enabled_from_env() {
        let result = jskernel::attacks::harness::run_cve_attack(&exploit, defense, seed);
        println!(
            "JSK_OBSERVE=0: observer disabled; {} {} the exploit (no trace written)",
            result.defense,
            if result.defended() {
                "defended against"
            } else {
                "was triggered by"
            }
        );
        return;
    }

    // The exploit's interval registers ~1M kernel events before the
    // deferred termination settles; cap the buffer at the opening of the
    // run — registration, first dispatches, the policy denial — which is
    // the part the walkthrough in docs/BOOK.md reads. Metrics still cover
    // the whole run. `JSK_OBSERVE_TRACE=0` skips the buffer entirely
    // (metrics-only — the always-on accounting configuration).
    let cap = 200_000;
    let trace_on = std::env::var("JSK_OBSERVE_TRACE")
        .map_or(true, |v| !matches!(v.trim(), "0" | "false" | "off"));
    let obs = if trace_on {
        jsk_observe::Observer::with_trace_capacity(cap)
    } else {
        jsk_observe::Observer::new()
    }
    .shared();
    let mut cfg = defense
        .config(seed)
        .with_observer(jsk_observe::handle_of(&obs));
    exploit.configure(&mut cfg);
    let mut browser = Browser::new(cfg, defense.mediator());
    exploit.run(&mut browser);
    let report = oracle::scan(browser.trace());
    let triggered = report.is_triggered(exploit.cve());

    let out_dir =
        std::env::var_os("JSK_OBSERVE_OUT").map_or_else(|| PathBuf::from("."), PathBuf::from);
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let trace_path = out_dir.join("trace.perfetto.json");
    let metrics_path = out_dir.join("metrics.json");

    let observer = obs.borrow();
    std::fs::write(&metrics_path, observer.metrics_json()).expect("write metrics");
    let metrics = observer.metrics();
    println!(
        "CVE-2018-5092 vs {}: {}",
        defense.label(),
        if triggered { "TRIGGERED" } else { "defended" }
    );
    if trace_on {
        let trace_json = observer.chrome_trace_json();
        let summary = jsk_observe::chrome::validate(&trace_json).expect("trace validates");
        std::fs::write(&trace_path, &trace_json).expect("write trace");
        println!(
            "trace: {} events ({} sync spans, {} async spans, {} instants) -> {}",
            summary.events,
            summary.spans,
            summary.async_spans,
            summary.instants,
            trace_path.display()
        );
        if observer.dropped_events() > 0 {
            println!(
                "trace: buffer capped at {cap} events; {} later events dropped \
                 (metrics still cover the full run)",
                observer.dropped_events()
            );
        }
    } else {
        println!("trace: disabled (JSK_OBSERVE_TRACE=0), metrics only");
    }
    println!(
        "metrics: registered={} confirmed={} dispatched={} denials={} -> {}",
        metrics.counter("kernel.registered"),
        metrics.counter("kernel.confirmed"),
        metrics.counter("kernel.dispatched"),
        metrics.counter("kernel.denials"),
        metrics_path.display()
    );
    if trace_on {
        println!("load the trace at https://ui.perfetto.dev (or chrome://tracing)");
    }
}

#[cfg(not(feature = "observe"))]
fn main() {
    println!(
        "the `observe` feature is disabled; rebuild with default features \
         (cargo run --example observe_run) to record a trace"
    );
}
