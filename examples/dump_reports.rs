//! Dumps the full analysis-report corpus (13 programs x raw/kernel) as one
//! JSON file per report, for before/after bit-identity comparison.

use jskernel::analyze::corpus::{program_names, run_program, CorpusMode};
use jskernel::core::policy::deterministic_policy;

fn main() {
    let dir = std::env::args().nth(1).expect("usage: dump_reports <dir>");
    std::fs::create_dir_all(&dir).unwrap();
    let kernel = CorpusMode::Kernel(deterministic_policy());
    for name in program_names() {
        for (label, mode) in [("raw", &CorpusMode::Raw), ("kernel", &kernel)] {
            let json = run_program(&name, mode, 7).to_json();
            std::fs::write(format!("{dir}/{name}-{label}.json"), json).unwrap();
        }
    }
    println!("wrote 26 reports to {dir}");
}
