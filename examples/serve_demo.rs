//! The wire front door end to end: the corpus served over the loopback
//! transport (deterministic — the verdict stream is written to
//! `SERVE_REPORT.json`), then the same server behind a real TCP socket
//! with a live `/metrics` scrape and a graceful drain.
//!
//! ```sh
//! cargo run --example serve_demo
//! ```
//!
//! `JSK_JOBS` sets the pool's worker threads; it changes wall-clock
//! time only — `SERVE_REPORT.json` is byte-identical at any setting.
//! The protocol itself is specified in `docs/PROTOCOL.md`.

use jskernel::serve::protocol::Response;
use jskernel::serve::{
    Client, LoopbackTransport, Server, ServerConfig, Submission, TcpServer, TcpTransport,
};
use jskernel::sim::knob::env_knob;
use jskernel::workloads::schedule::corpus_schedules;

fn submissions() -> Vec<Submission> {
    corpus_schedules()
        .into_iter()
        .enumerate()
        .map(|(i, s)| Submission {
            site: s.name.clone(),
            seed: 1_000_003 + i as u64,
            policy: "kernel".into(),
            schedule: s,
            deadline_ms: 0,
        })
        .collect()
}

fn main() {
    let jobs = env_knob("JSK_JOBS", 2);
    println!("jsk-serve demo — the 13-program corpus through the wire front door");

    // 1. Loopback: deterministic, in-process, what CI diffs against
    //    direct ShardPool submission.
    let server = Server::new(ServerConfig::new(4, jobs));
    let transport = LoopbackTransport::new(server);
    let mut client = Client::connect(&transport).expect("loopback connects");
    let subs = submissions();
    for sub in &subs {
        let resp = client.submit(sub).expect("submit");
        assert!(matches!(resp, Response::Queued { .. }), "{resp:?}");
    }
    let results = client.flush().expect("flush");
    println!("\n== loopback flush ({} submissions) ==", subs.len());
    let mut lines = Vec::new();
    for resp in &results {
        let line = serde_json::to_string(resp).expect("response serializes");
        match resp {
            Response::Verdict {
                site,
                shard,
                defended,
                completed_at_ms,
                ..
            } => println!(
                "   {site} @ shard {shard}: {} (done at {completed_at_ms} virtual ms)",
                match defended {
                    Some(true) => "defended",
                    Some(false) => "VULNERABLE",
                    None => "no verdict",
                }
            ),
            Response::FlushOk { served, .. } => println!("   flush_ok: served={served}"),
            other => println!("   {other:?}"),
        }
        lines.push(line);
    }
    client.bye().expect("clean close");

    // The report is the verdict stream itself — one frame payload per
    // line, exactly what went over the wire. Byte-identical for any
    // JSK_JOBS.
    let report = lines.join("\n") + "\n";
    std::fs::write("SERVE_REPORT.json", &report).expect("write SERVE_REPORT.json");
    println!("   -> verdict stream written to SERVE_REPORT.json (deterministic)");

    // 2. The same server class behind a real socket: ephemeral port,
    //    thread-per-connection, graceful drain. Wall-clock lives here,
    //    so this half only prints.
    println!("\n== TCP ==");
    let server = Server::new(ServerConfig::new(4, jobs));
    let tcp = TcpServer::bind(server, "127.0.0.1:0").expect("bind ephemeral port");
    println!("   listening on {}", tcp.local_addr());
    let transport = TcpTransport::new(tcp.local_addr()).expect("transport");
    let mut client = Client::connect(&transport).expect("tcp connect + hello");
    // CVE-2017-7843 is the cheapest corpus program — enough to light the
    // metrics up over a real socket.
    let sub = subs.into_iter().nth(1).expect("corpus has 13 programs");
    client.submit(&sub).expect("submit");
    let results = client.flush().expect("flush");
    println!(
        "   served {} over TCP: {}",
        sub.site,
        serde_json::to_string(&results[0]).expect("verdict serializes")
    );
    let page = client.metrics_page().expect("metrics");
    println!("   /metrics excerpt:");
    for line in page.lines().filter(|l| l.starts_with("serve.")).take(6) {
        println!("      {line}");
    }
    client.bye().expect("clean close");
    let final_page = tcp.shutdown();
    println!(
        "   drained; final page carries {} lines (the flush of record)",
        final_page.lines().count()
    );
}
