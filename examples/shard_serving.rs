//! A small sharded fleet walked through its failure modes: normal
//! serving, a crash with supervised restart, restart-budget exhaustion
//! and quarantine, a severed heartbeat ring, and admission-control load
//! shedding — with per-shard metrics at the end.
//!
//! ```sh
//! cargo run --example shard_serving
//! ```

use jskernel::shard::{corpus_job, ServeConfig, ServeReport, ShardPool, SiteOutcome};
use jskernel::sim::fault::FaultPlan;

/// Cheap corpus programs (three exploits simulate minutes of virtual
/// time; `cargo bench -p jsk-bench --bench shards` serves the full set).
const FAST: [usize; 8] = [1, 2, 4, 5, 6, 8, 9, 10];

fn fleet() -> Vec<jskernel::shard::SiteJob> {
    FAST.iter().map(|&k| corpus_job(k, 3)).collect()
}

fn show(title: &str, report: &ServeReport) {
    let (served, shed, quarantined, restarts) = report.totals();
    println!("\n== {title} ==");
    println!("   served={served} shed={shed} quarantined={quarantined} restarts={restarts}");
    for shard in &report.shards {
        let tag = if shard.is_quarantined {
            " [QUARANTINED]"
        } else {
            ""
        };
        println!(
            "   shard {}{tag}: served={} virtual_ms={} restarts={} hb sent={} dropped={}",
            shard.shard,
            shard.served,
            shard.virtual_ms,
            shard.restarts,
            shard.heartbeats_sent,
            shard.heartbeats_dropped
        );
        for site in &shard.sites {
            let verdict = match &site.outcome {
                SiteOutcome::Served { defended, .. } => match defended {
                    Some(true) => "defended".to_owned(),
                    Some(false) => "VULNERABLE".to_owned(),
                    None => "no verdict".to_owned(),
                },
                SiteOutcome::Shed => "shed (admission control)".to_owned(),
                SiteOutcome::Quarantined => "written off (quarantine)".to_owned(),
                SiteOutcome::Cancelled => "cancelled (drain)".to_owned(),
            };
            println!(
                "      {} attempts={} done@{}ms: {verdict}",
                site.site, site.attempts, site.completed_at_ms
            );
        }
    }
}

fn main() {
    println!("Sharded multi-site kernel serving — two shards, the cheap corpus subset");

    // 1. Fault-free fleet: every site served, every exploit defended.
    let clean = ShardPool::new(ServeConfig::new(2, 2)).serve(fleet());
    show("fault-free", &clean);

    // 2. A crash mid-serve: the supervisor restarts the shard with
    //    backoff; the interrupted attempt is discarded wholly and rerun,
    //    so verdicts match the fault-free run exactly.
    let crash_plan = FaultPlan::new(7).with_shard_crash(0, 1);
    let crashed = ShardPool::new(ServeConfig::new(2, 2).with_fault(crash_plan)).serve(fleet());
    show("crash on shard 0 + supervised restart", &crashed);
    assert_eq!(clean.shards[0].outcomes(), crashed.shards[0].outcomes());
    println!("   -> verdicts identical to the fault-free run (crash cost virtual time only)");

    // 3. Crashes past the restart budget: the shard is quarantined and
    //    its remaining queue written off; the sibling shard is untouched.
    let storm = FaultPlan::new(7)
        .with_shard_crash(0, 1)
        .with_shard_crash(0, 2)
        .with_shard_crash(0, 3);
    let quarantined =
        ShardPool::new(ServeConfig::new(2, 2).with_fault(storm).with_restarts(2, 1)).serve(fleet());
    show("crash storm on shard 0 -> quarantine", &quarantined);
    assert_eq!(clean.shards[1], quarantined.shards[1]);

    // 4. A directional partition severs shard 0's heartbeat ring; service
    //    continues (the owner always serves its own queue).
    let cut = FaultPlan::new(7).with_partition(0, 1, 0, u64::MAX);
    let partitioned = ShardPool::new(ServeConfig::new(2, 2).with_fault(cut)).serve(fleet());
    show(
        "partition 0 -> 1 (heartbeats dropped, service intact)",
        &partitioned,
    );
    assert_eq!(clean.shards[0].outcomes(), partitioned.shards[0].outcomes());

    // 5. Admission control: a bounded queue sheds the overflow instead of
    //    wedging the shard.
    let bounded = ShardPool::new(ServeConfig::new(2, 2).with_admission_capacity(2)).serve(fleet());
    show("admission capacity 2 per shard", &bounded);

    // 6. Per-shard metrics, label-set by shard id, merged fleet-wide.
    println!("\n== fleet metrics (shard-labelled counters, fault-free run) ==");
    let mut names: Vec<_> = clean.fleet_metrics.counters.keys().collect();
    names.sort();
    for name in names.iter().take(8) {
        println!("   {name} = {}", clean.fleet_metrics.counters[*name]);
    }
    println!(
        "   ... {} counters total; kernel.registered across shards = {}",
        clean.fleet_metrics.counters.len(),
        clean
            .fleet_metrics
            .counter_across_labels("kernel.registered")
    );
}
