//! Writing a custom security policy (paper §II-B3): policies are JSON
//! documents; an expert models a vulnerability's triggering conditions as
//! rules and installs them into the kernel.
//!
//! This example authors a policy that blocks *all* worker network activity
//! on this page (stricter than the paper's CVE-2013-1714 policy), round-
//! trips it through JSON, installs it, and shows the enforcement.
//!
//! ```sh
//! cargo run --example custom_policy
//! ```

use jskernel::browser::task::{cb, worker_script};
use jskernel::browser::{Browser, BrowserConfig, JsValue};
use jskernel::browser_profile::BrowserProfile;
use jskernel::core::policy::{ApiSelector, Condition, PolicyAction, PolicyRule, PolicySpec};
use jskernel::{JsKernel, KernelConfig};

fn main() {
    // 1. Author the policy as data (what the extension ships as JSON).
    let policy = PolicySpec {
        name: "policy_no-worker-network".into(),
        description: "this page's workers do background math only; any \
                      network call from a worker is hostile"
            .into(),
        scheduling: None,
        rules: vec![
            PolicyRule {
                id: "no-worker-xhr".into(),
                on: ApiSelector::XhrSend,
                when: Condition {
                    from_worker: Some(true),
                    ..Condition::default()
                },
                action: PolicyAction::Deny {
                    reason: "worker network disabled by site policy".into(),
                },
            },
            PolicyRule {
                id: "no-worker-fetch".into(),
                on: ApiSelector::Fetch,
                when: Condition {
                    from_worker: Some(true),
                    ..Condition::default()
                },
                action: PolicyAction::Deny {
                    reason: "worker network disabled by site policy".into(),
                },
            },
        ],
    };

    // 2. The JSON wire format (what §II-B calls "represented in JSON").
    let json = policy.to_json();
    println!("--- policy JSON ---\n{json}\n");
    let parsed = PolicySpec::from_json(&json).expect("round-trips");
    assert_eq!(parsed, policy);

    // 3. Install it on top of the full kernel and run a page.
    let cfg = KernelConfig::full().with_policy(parsed);
    let mut browser = Browser::new(
        BrowserConfig::new(BrowserProfile::chrome(), 7),
        Box::new(JsKernel::new(cfg)),
    );
    browser.boot(|scope| {
        let _w = scope.create_worker(
            "worker.js",
            worker_script(|scope| {
                // Allowed: compute and report.
                scope.busy_loop(10_000);
                scope.post_message(JsValue::from("sum=42"));
                // Denied by the custom policy: same-origin fetch from a
                // worker (the stock kernel would have allowed this).
                scope.fetch(
                    "https://attacker.example/exfil",
                    None,
                    cb(|scope, v| {
                        scope.record("fetch_ok", v.get("ok").cloned().unwrap_or_default());
                    }),
                );
            }),
        );
    });
    browser.run_until_idle();

    println!("--- enforcement ---");
    println!(
        "worker fetch result: {:?}",
        browser.record_value("fetch_ok")
    );
    let trace = browser.trace();
    let denied: Vec<String> = trace
        .facts()
        .filter_map(|(_, f)| match f {
            jskernel::browser::trace::Fact::Denied { what, reason } => Some(format!(
                "denied {}: {}",
                trace.resolve(*what),
                trace.resolve(*reason)
            )),
            _ => None,
        })
        .collect();
    for d in &denied {
        println!("{d}");
    }
    assert!(!denied.is_empty(), "the custom policy must have fired");
}
