//! The trace analyzer, end to end: run the CVE corpus and the Listing 1
//! attack raw and under the kernel, and print what the happens-before race
//! detector and the attack-pattern scanner find in each trace.
//!
//! ```sh
//! cargo run --example analyze_trace
//! ```
//!
//! With `gate`, runs as the CI regression gate: analyzes the whole corpus
//! under `policies/policy_deterministic.json`, writes the full JSON race
//! report to `ANALYZE_REPORT.json`, and exits nonzero if any program races
//! under the kernel.
//!
//! ```sh
//! cargo run --release --example analyze_trace -- gate
//! ```

use jskernel::analyze::corpus::{program_names, run_program, CorpusMode};
use jskernel::core::policy::PolicySpec;
use std::process::ExitCode;

const SEED: u64 = 7;

fn deterministic_policy() -> PolicySpec {
    let json = include_str!("../policies/policy_deterministic.json");
    PolicySpec::from_json(json).expect("committed policy parses")
}

fn gate() -> ExitCode {
    let kernel = CorpusMode::Kernel(deterministic_policy());
    let mut racy = Vec::new();
    let mut entries = Vec::new();
    for name in program_names() {
        let report = run_program(&name, &kernel, SEED);
        println!("{name:<16} {}", report.summary());
        if !report.is_race_free() {
            racy.push(name.clone());
        }
        entries.push((name, report));
    }
    let body = entries
        .iter()
        .map(|(name, report)| {
            format!(
                "  {{\n    \"program\": {},\n    \"report\": {}\n  }}",
                serde_json::to_string(name).expect("name serializes"),
                report.to_json().replace('\n', "\n    ")
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    std::fs::write("ANALYZE_REPORT.json", format!("[\n{body}\n]\n")).expect("report file writable");
    println!("\nwrote ANALYZE_REPORT.json");
    if racy.is_empty() {
        println!("gate PASS: corpus is race-free under the deterministic policy");
        ExitCode::SUCCESS
    } else {
        println!("gate FAIL: races under the kernel in {racy:?}");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    if std::env::args().nth(1).as_deref() == Some("gate") {
        return gate();
    }

    let kernel = CorpusMode::Kernel(deterministic_policy());
    println!("Trace analysis over the CVE corpus + Listing 1 (seed {SEED})\n");
    println!(
        "{:<16} {:>6} {:>8} {:>6} {:>9}   first finding",
        "program", "nodes", "accesses", "races", "patterns"
    );
    for name in program_names() {
        for (label, mode) in [("raw", &CorpusMode::Raw), ("kernel", &kernel)] {
            let report = run_program(&name, mode, SEED);
            let first = report
                .races
                .first()
                .map(|r| {
                    format!(
                        "race on {:?}: {} vs {}",
                        r.target, r.first.what, r.second.what
                    )
                })
                .or_else(|| {
                    report
                        .patterns
                        .first()
                        .map(|p| format!("{:?} ({})", p.kind, p.cve_family().join(", ")))
                })
                .unwrap_or_else(|| "clean".to_owned());
            println!(
                "{:<16} {:>6} {:>8} {:>6} {:>9}   {first}",
                format!("{name}/{label}"),
                report.nodes,
                report.accesses,
                report.races.len(),
                report.patterns.len(),
            );
        }
    }
    println!(
        "\nRaw scheduling leaves every program with at least one race or \
         attack signature; under the kernel's deterministic dispatcher the \
         chain/comm edges order every contended pair — zero races. Patterns \
         may persist under the kernel: they flag *attempted* shapes, which \
         the policies defeat without muting the trace."
    );
    ExitCode::SUCCESS
}
