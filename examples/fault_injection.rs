//! The CVE-2018-5092 exploit under injected faults: messages lost in
//! transit, event confirmations dropped, workers crashing mid-attack, the
//! network erroring and timing out. JSKernel must keep defending — and the
//! simulation must keep terminating — under every plan; the kernel's
//! watchdog and orphan reaping absorb the lost confirmations that would
//! otherwise livelock the dispatcher.
//!
//! ```sh
//! cargo run --example fault_injection
//! ```

use jskernel::attacks::cve_exploits::Exploit2018_5092;
use jskernel::attacks::harness::run_cve_attack_with_faults;
use jskernel::sim::fault::FaultPlan;
use jskernel::DefenseKind;

fn main() {
    println!("CVE-2018-5092 under fault injection — JSKernel column only\n");
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("no faults", FaultPlan::new(0x5092)),
        (
            "30% message loss",
            FaultPlan::new(0x5092).with_message_loss(0.3),
        ),
        (
            "msg dup + reorder",
            FaultPlan::new(0x5092)
                .with_message_duplication(0.2)
                .with_message_reorder(0.2, 15),
        ),
        (
            "20% confirms dropped",
            FaultPlan::new(0x5092).with_confirm_drop(0.2),
        ),
        (
            "worker 0 crashes at 30ms",
            FaultPlan::new(0x5092).with_worker_crash(0, 30),
        ),
        (
            "net timeouts + retries",
            FaultPlan::new(0x5092)
                .with_net_timeout(0.5, 40)
                .with_fetch_retries(2, 10),
        ),
        (
            "everything at once",
            FaultPlan::new(0x5092)
                .with_message_loss(0.15)
                .with_message_duplication(0.1)
                .with_confirm_drop(0.15)
                .with_net_error(0.2)
                .with_worker_crash(1, 60),
        ),
    ];
    println!("{:<26}{:<12}witness", "fault plan", "triggered");
    for (label, plan) in plans {
        let result =
            run_cve_attack_with_faults(&Exploit2018_5092, DefenseKind::JsKernel, 0x5092, plan);
        println!(
            "{:<26}{:<12}{}",
            label,
            if result.triggered { "YES" } else { "no" },
            result.witness.as_deref().unwrap_or("-")
        );
        assert!(
            !result.triggered,
            "JSKernel must defend CVE-2018-5092 under '{label}'"
        );
    }
    println!(
        "\nEvery run terminated and the kernel held the line: a dropped \
         confirmation parks its event as pending, the watchdog expires it \
         once it blocks confirmed work past the hold, a crashed worker's \
         orphaned events are reaped, and failed fetches retry with backoff \
         and finally error out — no livelock, no lost defense."
    );
}
