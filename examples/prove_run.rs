//! Runs the bounded policy prover over the full designated matrix and
//! writes `PROVE_REPORT.json` — one row per (policy, attack-pattern)
//! pair with the verdict, depth, states explored, and (for refutations)
//! the minimal counterexample plus a concrete corpus realization.
//!
//! Knob: `JSK_PROVE_DEPTH` (default 6) — the schedule-length bound.
//! The report is a pure function of the committed policies, the attack
//! models, and the depth; `JSK_JOBS` never changes its bytes.
//!
//! Exits nonzero on any refuted row — a designated policy that fails to
//! defeat its pattern within the bound — which is how the CI prove-smoke
//! job gates.

use jsk_analyze::prove::{prove_all, prove_depth, Verdict};

fn main() {
    let depth = prove_depth();
    eprintln!("prove: depth={depth}");
    let report = prove_all(depth);

    std::fs::write("PROVE_REPORT.json", report.to_json() + "\n").expect("write PROVE_REPORT.json");

    println!("{}", report.summary());
    for row in &report.rows {
        match row.verdict {
            Verdict::Proved => println!(
                "  proved  {} defeats {} ({}) for all schedules <= {} [{} states]",
                row.policy, row.pattern, row.cve, row.depth, row.states_explored
            ),
            Verdict::Refuted => {
                println!(
                    "  REFUTED {} vs {} ({}): firing schedule {:?}",
                    row.policy, row.pattern, row.cve, row.counterexample
                );
            }
        }
    }
    if report.refuted > 0 {
        eprintln!("{} refuted row(s) — failing", report.refuted);
        std::process::exit(1);
    }
}
