//! Seeded synthetic website profiles.
//!
//! The paper's macro evaluation runs real pages (Alexa Top 500, Raptor
//! tp6); we have no internet, so a [`SiteProfile`] is the closest synthetic
//! equivalent: a reproducible bundle of resources (scripts/images with
//! sizes), DOM structure, post-load JavaScript task bursts, and optional
//! workers — generated from a hash of the site name, so "site #17" is the
//! same page in every run and under every defense.
//!
//! Four named profiles (amazon / facebook / google / youtube) are
//! calibrated against Table III's Chrome column; the per-engine
//! `site_task_scale` then yields the Firefox column, and the burst
//! signatures drive the Loopscan rows of Table II.

use jsk_browser::browser::Browser;
use jsk_browser::net::ResourceSpec;
use jsk_browser::scope::JsScope;
use jsk_browser::task::cb;
use jsk_browser::value::JsValue;
use jsk_sim::rng::SimRng;
use jsk_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// One post-load JavaScript burst.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteTask {
    /// Delay after boot, in milliseconds.
    pub delay_ms: f64,
    /// CPU cost of the burst (before the engine's `site_task_scale`).
    pub cost: SimDuration,
}

/// A reproducible synthetic website.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteProfile {
    /// Site name (doubles as the RNG seed).
    pub name: String,
    /// Resources the page loads: `(url, size_bytes)`.
    pub resources: Vec<(String, u64)>,
    /// Static DOM elements: `(tag, text)`.
    pub elements: Vec<(String, String)>,
    /// Post-load JavaScript bursts.
    pub tasks: Vec<SiteTask>,
    /// Number of web workers the page spawns.
    pub workers: usize,
    /// Whether the page injects non-deterministic ad content (the residual
    /// DOM differences of §V-B2).
    pub dynamic_ads: bool,
}

fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0x517c_c1b7_2722_0a95;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x5de6_cd7a_8968_37c1).rotate_left(17);
    }
    h
}

impl SiteProfile {
    /// Generates the profile for an Alexa-style ranked site. Lower ranks
    /// are heavier pages; roughly one site in ten carries dynamic ads.
    #[must_use]
    pub fn generate(rank: usize) -> SiteProfile {
        let name = format!("site-{rank:03}.example");
        let mut rng = SimRng::new(hash_name(&name));
        let weight = 1.0 + 3.0 / (1.0 + rank as f64 / 40.0);
        let n_res = 2 + rng.index(6);
        let resources = (0..n_res)
            .map(|i| {
                let size = (rng.range_u64(40_000, 200_000) as f64 * weight) as u64;
                (format!("https://{name}/asset{i}.js"), size)
            })
            .collect();
        let n_el = 5 + rng.index(30);
        let elements = (0..n_el)
            .map(|i| {
                let tag = ["div", "span", "p", "a", "img", "section"][rng.index(6)];
                (tag.to_owned(), format!("content-{i}"))
            })
            .collect();
        let n_tasks = 3 + rng.index(6);
        let tasks = (0..n_tasks)
            .map(|_| SiteTask {
                delay_ms: rng.unit() * 120.0,
                cost: SimDuration::from_nanos(
                    (rng.range_u64(800_000, 9_000_000) as f64 * weight) as u64,
                ),
            })
            .collect();
        SiteProfile {
            name,
            resources,
            elements,
            tasks,
            workers: usize::from(rng.chance(0.25)),
            dynamic_ads: rng.chance(0.10),
        }
    }

    /// The Raptor tp6-1 / Loopscan named profiles, calibrated against the
    /// Chrome columns of Table II and Table III.
    #[must_use]
    pub fn named(name: &str) -> SiteProfile {
        // (hero target ms, signature burst ms, resources, elements, workers)
        let (hero_ms, max_burst_ms, n_res, n_el, workers): (f64, f64, usize, usize, usize) =
            match name {
                "amazon" => (103.0, 3.6, 7, 40, 0),
                "facebook" => (172.0, 3.9, 8, 55, 1),
                "google" => (45.0, 4.5, 3, 12, 0),
                "youtube" => (292.0, 8.6, 9, 48, 1),
                other => return SiteProfile::generate(hash_name(other) as usize % 500),
            };
        let mut rng = SimRng::new(hash_name(name));
        let resources = (0..n_res)
            .map(|i| {
                (
                    format!("https://{name}.example/asset{i}.js"),
                    rng.range_u64(8_000, 90_000),
                )
            })
            .collect();
        let elements = (0..n_el)
            .map(|i| ("div".to_owned(), format!("{name}-el-{i}")))
            .collect();
        // Background tasks stay well below the signature burst so the burst
        // dominates event-loop gaps (the Loopscan fingerprint); they are
        // spaced out to the hero target so the hero lands on schedule.
        let small = (max_burst_ms * 0.42).min(2.5);
        let n_tasks = 16usize;
        let spacing = hero_ms * 0.94 / n_tasks as f64;
        let mut tasks: Vec<SiteTask> = (1..n_tasks)
            .map(|i| SiteTask {
                delay_ms: spacing * i as f64,
                cost: SimDuration::from_millis_f64(small),
            })
            .collect();
        // The signature burst lands mid-load; the final small task at the
        // hero target closes the page out.
        tasks.push(SiteTask {
            delay_ms: hero_ms * 0.55,
            cost: SimDuration::from_millis_f64(max_burst_ms),
        });
        tasks.push(SiteTask {
            delay_ms: hero_ms * 0.94,
            cost: SimDuration::from_millis_f64(small),
        });
        SiteProfile {
            name: name.to_owned(),
            resources,
            elements,
            tasks,
            workers,
            dynamic_ads: false,
        }
    }
}

/// Result of one site load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadResult {
    /// When the `onload` equivalent fired (all resources settled), ms.
    pub onload_ms: f64,
    /// When the hero element appeared (after post-load tasks), ms.
    pub hero_ms: f64,
}

/// Registers the profile's resources with the browser's network.
pub fn register_site(browser: &mut Browser, profile: &SiteProfile) {
    for (url, size) in &profile.resources {
        browser.register_resource(url.clone(), ResourceSpec::of_size(*size));
    }
}

/// Boots the site in browsing context `context` and returns after the run
/// goes idle. The load writes `"<name>/onload"` and `"<name>/hero"` records
/// (virtual ms, measured by the harness clock, not the page's).
pub fn load_site_in_context(browser: &mut Browser, profile: &SiteProfile, context: u32) {
    register_site(browser, profile);
    let p = profile.clone();
    let scale = browser.profile().site_task_scale;
    browser.boot_in_context(context, move |scope| {
        build_page(scope, &p, scale);
    });
    browser.run_until_idle();
}

/// Boots the site in the default context.
pub fn load_site(browser: &mut Browser, profile: &SiteProfile) {
    load_site_in_context(browser, profile, 0);
}

/// Reads the `LoadResult` records a [`load_site`] run produced.
#[must_use]
pub fn load_result(browser: &Browser, profile: &SiteProfile) -> Option<LoadResult> {
    let onload = browser
        .record_value(&format!("{}/onload", profile.name))?
        .as_f64()?;
    let hero = browser
        .record_value(&format!("{}/hero", profile.name))?
        .as_f64()?;
    Some(LoadResult {
        onload_ms: onload,
        hero_ms: hero,
    })
}

/// Builds the page body inside an existing scope: DOM, workers, resource
/// loads, and post-load bursts. Exposed so attacks (Loopscan) can run a
/// victim page inside a specific browsing context.
pub fn build_page(scope: &mut JsScope<'_>, profile: &SiteProfile, scale: f64) {
    let name = profile.name.clone();
    // Static DOM.
    let root = scope.document_root();
    for (tag, text) in &profile.elements {
        let el = scope.create_element(tag.clone());
        scope.set_text(el, text.clone());
        scope.append_child(root, el);
    }
    // Dynamic ad content differs per visit (the ad network's choice): the
    // campaign id derives from sub-millisecond load timing, which varies
    // with every visit's physical jitter regardless of the defense.
    if profile.dynamic_ads {
        scope.set_timeout(
            12.0,
            cb(|scope, _| {
                let ad = scope.create_element("iframe");
                let micros = (scope.browser_now_ms() * 1_000.0) as u64;
                let nonce = micros % 7;
                scope.set_attribute(ad, "data-ad", format!("campaign-{nonce}"));
                let root = scope.document_root();
                scope.append_child(root, ad);
            }),
        );
    }
    // Workers.
    for w in 0..profile.workers {
        let _ = w;
        let worker = scope.create_worker(
            format!("https://{name}/worker.js"),
            jsk_browser::task::worker_script(|scope| {
                scope.set_onmessage(cb(|scope, v| {
                    scope.post_message(v);
                }));
            }),
        );
        scope.post_message_to_worker(worker, JsValue::from(1.0));
    }

    // Resources; onload when the last settles.
    let total = profile.resources.len();
    let left = Rc::new(RefCell::new(total));
    for (url, _) in &profile.resources {
        let left = left.clone();
        let name = name.clone();
        scope.load_script(
            url.clone(),
            cb(move |scope, _| {
                let mut l = left.borrow_mut();
                *l -= 1;
                if *l == 0 {
                    let t = scope.browser_now_ms();
                    scope.record(format!("{name}/onload"), JsValue::from(t));
                }
            }),
        );
    }
    if total == 0 {
        let t = scope.browser_now_ms();
        scope.record(format!("{name}/onload"), JsValue::from(t));
    }

    // Post-load bursts; the hero element lands with the last one.
    let n_tasks = profile.tasks.len();
    let done = Rc::new(RefCell::new(0usize));
    for task in &profile.tasks {
        let cost = task.cost.mul_f64(scale);
        let done = done.clone();
        let name = name.clone();
        scope.set_timeout(
            task.delay_ms * scale,
            cb(move |scope, _| {
                scope.compute(cost);
                let mut d = done.borrow_mut();
                *d += 1;
                if *d == n_tasks {
                    let hero = scope.create_element("main");
                    scope.set_attribute(hero, "id", "hero");
                    let root = scope.document_root();
                    scope.append_child(root, hero);
                    let t = scope.browser_now_ms();
                    scope.record(format!("{name}/hero"), JsValue::from(t));
                }
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_browser::browser::BrowserConfig;
    use jsk_browser::mediator::LegacyMediator;
    use jsk_browser::profile::BrowserProfile;

    #[test]
    fn generated_profiles_are_reproducible_and_ranked() {
        let a1 = SiteProfile::generate(17);
        let a2 = SiteProfile::generate(17);
        assert_eq!(a1, a2);
        let light = SiteProfile::generate(480);
        let heavy = SiteProfile::generate(1);
        let total = |p: &SiteProfile| p.resources.iter().map(|r| r.1).sum::<u64>();
        // Not guaranteed per-pair, but rank-1 weight is 4x rank-480's.
        assert!(total(&heavy) > total(&light) / 4);
    }

    #[test]
    fn roughly_a_tenth_of_sites_have_dynamic_ads() {
        let ads = (0..500)
            .filter(|&r| SiteProfile::generate(r).dynamic_ads)
            .count();
        assert!((25..=80).contains(&ads), "{ads}/500 sites with ads");
    }

    #[test]
    fn named_profiles_match_calibration_ordering() {
        // Hero schedules follow Table III's ordering…
        let span = |n: &str| {
            SiteProfile::named(n)
                .tasks
                .iter()
                .map(|t| t.delay_ms)
                .fold(0.0f64, f64::max)
        };
        assert!(span("google") < span("amazon"));
        assert!(span("amazon") < span("facebook"));
        assert!(span("facebook") < span("youtube"));
        // …and the Loopscan signature bursts follow Table II's.
        let max_burst = |n: &str| {
            SiteProfile::named(n)
                .tasks
                .iter()
                .map(|t| t.cost.as_millis_f64())
                .fold(0.0f64, f64::max)
        };
        assert!(max_burst("youtube") > max_burst("google"));
        // Background tasks stay below the signature burst.
        for site in ["google", "youtube", "amazon", "facebook"] {
            let p = SiteProfile::named(site);
            let burst = max_burst(site);
            let second = p
                .tasks
                .iter()
                .map(|t| t.cost.as_millis_f64())
                .filter(|&c| c < burst)
                .fold(0.0f64, f64::max);
            assert!(second <= burst * 0.5, "{site}: {second} vs burst {burst}");
        }
    }

    #[test]
    fn load_site_records_onload_and_hero() {
        let mut b = Browser::new(
            BrowserConfig::new(BrowserProfile::chrome(), 5),
            Box::new(LegacyMediator),
        );
        let profile = SiteProfile::named("google");
        load_site(&mut b, &profile);
        let r = load_result(&b, &profile).expect("records written");
        assert!(r.onload_ms > 0.0);
        assert!(r.hero_ms > 30.0, "hero after tasks: {}", r.hero_ms);
        // The hero element is in the DOM.
        assert!(b.dom().serialize().contains("id=\"hero\""));
    }

    #[test]
    fn hero_scales_with_engine_task_scale() {
        let hero = |profile: BrowserProfile| {
            let mut b = Browser::new(BrowserConfig::new(profile, 6), Box::new(LegacyMediator));
            let p = SiteProfile::named("youtube");
            load_site(&mut b, &p);
            load_result(&b, &p).unwrap().hero_ms
        };
        let chrome = hero(BrowserProfile::chrome());
        let firefox = hero(BrowserProfile::firefox());
        assert!(
            firefox > chrome * 3.0,
            "chrome {chrome} vs firefox {firefox}"
        );
    }
}
