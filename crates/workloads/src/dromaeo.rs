//! A Dromaeo-like JavaScript micro-benchmark suite (§V-A1).
//!
//! Dromaeo mixes pure-computation tests (math, strings, regexes) with
//! DOM-heavy tests. Interposition-based defenses pay per *interposed call*,
//! so pure-compute tests show ~0 % overhead while the DOM-attribute test —
//! thousands of attribute gets/sets and little else — is the worst case
//! (the paper measures 21.15 % for JSKernel; suite mean 1.99 %, median
//! 0.30 %).
//!
//! Durations are measured by the harness (`Browser::thread_busy_until`),
//! not by in-page clocks, so the numbers are meaningful under
//! clock-degrading defenses too.

use jsk_browser::browser::Browser;
use jsk_browser::ids::MAIN_THREAD;
use jsk_browser::scope::JsScope;
use jsk_browser::task::cb;
use jsk_browser::value::JsValue;
use jsk_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// One Dromaeo-like test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DromaeoTest {
    /// Cordic trigonometry (pure compute).
    MathCordic,
    /// Prime sieve (pure compute).
    MathPrimes,
    /// String concatenation (pure compute).
    StringConcat,
    /// Regex matching (pure compute).
    RegexMatch,
    /// Array sorting (pure compute).
    ArraySort,
    /// Base64 encode/decode (pure compute).
    Base64,
    /// JSON round-trips (pure compute).
    JsonParse,
    /// Attribute get/set storm — the interposition worst case.
    DomAttr,
    /// Element creation + append.
    DomModify,
    /// Tree traversal with occasional attribute reads.
    DomTraverse,
    /// Query-like scans over attributes.
    DomQuery,
    /// Timer scheduling churn.
    EventTimers,
    /// Clock-read churn.
    TimeNow,
    /// Mixed page update (DOM + compute).
    PageUpdate,
}

impl DromaeoTest {
    /// The full suite in display order.
    #[must_use]
    pub fn suite() -> [DromaeoTest; 14] {
        [
            DromaeoTest::MathCordic,
            DromaeoTest::MathPrimes,
            DromaeoTest::StringConcat,
            DromaeoTest::RegexMatch,
            DromaeoTest::ArraySort,
            DromaeoTest::Base64,
            DromaeoTest::JsonParse,
            DromaeoTest::DomAttr,
            DromaeoTest::DomModify,
            DromaeoTest::DomTraverse,
            DromaeoTest::DomQuery,
            DromaeoTest::EventTimers,
            DromaeoTest::TimeNow,
            DromaeoTest::PageUpdate,
        ]
    }

    /// Test name as Dromaeo prints it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DromaeoTest::MathCordic => "math-cordic",
            DromaeoTest::MathPrimes => "math-primes",
            DromaeoTest::StringConcat => "string-concat",
            DromaeoTest::RegexMatch => "regex-match",
            DromaeoTest::ArraySort => "array-sort",
            DromaeoTest::Base64 => "string-base64",
            DromaeoTest::JsonParse => "json-parse",
            DromaeoTest::DomAttr => "dom-attr",
            DromaeoTest::DomModify => "dom-modify",
            DromaeoTest::DomTraverse => "dom-traverse",
            DromaeoTest::DomQuery => "dom-query",
            DromaeoTest::EventTimers => "event-timers",
            DromaeoTest::TimeNow => "time-now",
            DromaeoTest::PageUpdate => "page-update",
        }
    }

    /// Runs the test body against a scope.
    pub fn run(self, scope: &mut JsScope<'_>) {
        match self {
            DromaeoTest::MathCordic => scope.busy_loop(600_000),
            DromaeoTest::MathPrimes => scope.busy_loop(800_000),
            DromaeoTest::StringConcat => {
                scope.busy_loop(300_000);
                scope.compute(SimDuration::from_micros(900));
            }
            DromaeoTest::RegexMatch => scope.compute(SimDuration::from_millis(11)),
            DromaeoTest::ArraySort => scope.compute(SimDuration::from_millis(9)),
            DromaeoTest::Base64 => scope.compute(SimDuration::from_millis(7)),
            DromaeoTest::JsonParse => scope.compute(SimDuration::from_millis(8)),
            DromaeoTest::DomAttr => {
                let el = scope.create_element("div");
                for i in 0..12_000 {
                    scope.set_attribute(el, "data-k", format!("{i}"));
                    let _ = scope.get_attribute(el, "data-k");
                }
            }
            DromaeoTest::DomModify => {
                let root = scope.document_root();
                for _ in 0..1_500 {
                    let el = scope.create_element("span");
                    scope.append_child(root, el);
                }
            }
            DromaeoTest::DomTraverse => {
                let root = scope.document_root();
                let el = scope.create_element("ul");
                scope.append_child(root, el);
                for _ in 0..2_000 {
                    let _ = scope.get_attribute(el, "class");
                    scope.compute(SimDuration::from_nanos(2_500));
                }
            }
            DromaeoTest::DomQuery => {
                let el = scope.create_element("table");
                for _ in 0..3_000 {
                    let _ = scope.get_attribute(el, "id");
                    scope.compute(SimDuration::from_nanos(1_200));
                }
            }
            DromaeoTest::EventTimers => {
                for _ in 0..300 {
                    let id = scope.set_timeout(1_000.0, cb(|_, _| {}));
                    scope.clear_timer(id);
                }
                scope.compute(SimDuration::from_millis(2));
            }
            DromaeoTest::TimeNow => {
                // Clock reads interleaved with the work they time, like real
                // animation/benchmark code.
                for _ in 0..8_000 {
                    let _ = scope.performance_now();
                    scope.compute(SimDuration::from_nanos(400));
                }
            }
            DromaeoTest::PageUpdate => {
                let root = scope.document_root();
                for i in 0..400 {
                    let el = scope.create_element("li");
                    scope.set_attribute(el, "idx", format!("{i}"));
                    scope.append_child(root, el);
                    scope.compute(SimDuration::from_micros(20));
                }
            }
        }
    }
}

/// One test's measured duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DromaeoResult {
    /// Test name.
    pub test: String,
    /// Duration in milliseconds (harness-measured CPU time).
    pub ms: f64,
}

/// Runs the whole suite in `browser`, one test per task, and returns the
/// per-test durations.
pub fn run_suite(browser: &mut Browser) -> Vec<DromaeoResult> {
    let mut results = Vec::new();
    for test in DromaeoTest::suite() {
        let before = browser.thread_busy_until(MAIN_THREAD);
        browser.boot(move |scope| {
            test.run(scope);
            scope.record(format!("done/{}", test.name()), JsValue::from(true));
        });
        browser.run_until_idle();
        let after = browser.thread_busy_until(MAIN_THREAD);
        results.push(DromaeoResult {
            test: test.name().to_owned(),
            ms: after.saturating_duration_since(before).as_millis_f64(),
        });
    }
    results
}

/// Per-test percentage overhead of `defended` relative to `baseline`.
///
/// # Panics
///
/// Panics if the two suites are not aligned test-for-test.
#[must_use]
pub fn overhead_percent(
    baseline: &[DromaeoResult],
    defended: &[DromaeoResult],
) -> Vec<(String, f64)> {
    baseline
        .iter()
        .zip(defended)
        .map(|(b, d)| {
            assert_eq!(b.test, d.test, "suites must align");
            let pct = if b.ms > 0.0 {
                (d.ms - b.ms) / b.ms * 100.0
            } else {
                0.0
            };
            (b.test.clone(), pct)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_browser::browser::BrowserConfig;
    use jsk_browser::mediator::LegacyMediator;
    use jsk_browser::profile::BrowserProfile;
    use jsk_sim::stats::percentile;

    fn run_with(mediator: Box<dyn jsk_browser::mediator::Mediator>) -> Vec<DromaeoResult> {
        let mut b = Browser::new(BrowserConfig::new(BrowserProfile::chrome(), 99), mediator);
        run_suite(&mut b)
    }

    #[test]
    fn suite_runs_and_every_test_takes_time() {
        let results = run_with(Box::new(LegacyMediator));
        assert_eq!(results.len(), 14);
        for r in &results {
            assert!(r.ms > 0.5, "{} took {} ms", r.test, r.ms);
        }
    }

    #[test]
    fn legacy_rerun_is_reproducible() {
        let a = run_with(Box::new(LegacyMediator));
        let b = run_with(Box::new(LegacyMediator));
        for (x, y) in a.iter().zip(&b) {
            assert!((x.ms - y.ms).abs() < 1e-9, "{}", x.test);
        }
    }

    #[test]
    fn overhead_percent_aligns_and_computes() {
        let base = vec![DromaeoResult {
            test: "t".into(),
            ms: 100.0,
        }];
        let def = vec![DromaeoResult {
            test: "t".into(),
            ms: 121.0,
        }];
        let o = overhead_percent(&base, &def);
        assert!((o[0].1 - 21.0).abs() < 1e-9);
    }

    #[test]
    fn median_is_computable_over_suite() {
        let results = run_with(Box::new(LegacyMediator));
        let times: Vec<f64> = results.iter().map(|r| r.ms).collect();
        assert!(percentile(&times, 50.0) > 0.0);
    }
}
