//! Declarative event schedules: a serializable program over the browser's
//! concurrency API, small enough to mutate mechanically.
//!
//! A [`Schedule`] is a list of timestamped [`ScheduleOp`]s plus the
//! resources and document mode the run needs. The vocabulary covers the
//! triggering sequences of every Table I corpus program — worker lifecycle,
//! message handlers, transfers, fetches, navigation/close, IndexedDB — plus
//! the two attack-family probes (Loophole self-post floods and Hacky Racers
//! ILP counter reads), so the fuzzer can reach each known bug class by
//! recombining ops rather than by writing Rust.
//!
//! Running a schedule is deterministic: the same schedule, mediator, and
//! seed always produce the same trace. [`seed_schedules`] ships one
//! schedule per corpus program (thirteen) plus one per attack family, each
//! mirroring the hand-written exploit closely enough that the raw scanner
//! flags the same signature.

use jsk_browser::browser::{Browser, BrowserConfig};
use jsk_browser::ids::{BufferId, WorkerId};
use jsk_browser::mediator::Mediator;
use jsk_browser::net::ResourceSpec;
use jsk_browser::profile::BrowserProfile;
use jsk_browser::scope::JsScope;
use jsk_browser::task::{cb, worker_script, WorkerScript};
use jsk_browser::value::JsValue;
use jsk_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// A network resource the schedule's fetches / imports resolve against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceDecl {
    /// Absolute URL the browser's resource table is keyed by.
    pub url: String,
    /// Body size; ignored when `missing`.
    pub size_bytes: u64,
    /// Whether loads of this resource fail (404-style).
    pub missing: bool,
}

/// The top-level body a scheduled worker runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WorkerKind {
    /// No top-level code.
    Idle,
    /// Posts one `"hello"` message at startup (CVE-2014-1719's trigger).
    Echo,
    /// `setInterval(() => postMessage(1), interval_ms)` — the Listing 1
    /// ticker and the CVE-2014-3194 flood.
    Ticker {
        /// Interval between posts.
        interval_ms: u32,
    },
    /// Posts `burst` messages per tick (CVE-2013-6646's queue-filler).
    Flood {
        /// Interval between bursts.
        interval_ms: u32,
        /// Messages per burst.
        burst: u32,
    },
    /// `setInterval(() => fetch(url, {signal}), interval_ms)` — the
    /// CVE-2018-5092 Listing 2 loop.
    FetchLoop {
        /// Fetched URL.
        url: String,
        /// Interval between fetches.
        interval_ms: u32,
    },
    /// `importScripts(url)` with an `onerror` that records the message
    /// (CVE-2015-7215).
    ImportMissing {
        /// Imported (missing, cross-origin) URL.
        url: String,
    },
    /// A cross-origin `XMLHttpRequest` from worker context
    /// (CVE-2013-1714 / CVE-2011-1190).
    CrossOriginXhr {
        /// Request URL.
        url: String,
    },
    /// Creates a buffer and transfers it to the owner (CVE-2014-1488).
    TransferOut {
        /// Buffer size in bytes.
        bytes: u32,
    },
    /// `setTimeout(() => close(), after_ms)` — self-close inside the
    /// CVE-2013-5602 teardown window.
    SelfClose {
        /// Delay before `self.close()`.
        after_ms: u32,
    },
}

/// One timestamped operation on the main document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ScheduleOp {
    /// `new Worker(src)` running `kind`; `sandboxed` wraps the creation in
    /// a sandboxed frame (CVE-2011-1190's origin-inheritance setup).
    CreateWorker {
        /// Worker script URL (matters when it names a missing resource —
        /// CVE-2014-1487).
        src: String,
        /// Worker body.
        kind: WorkerKind,
        /// Create from inside a sandboxed frame.
        sandboxed: bool,
    },
    /// Terminates the most recently created worker.
    TerminateWorker,
    /// `worker.onmessage` that counts deliveries (feeds [`ScheduleOp::SvgFilterProbe`]).
    ArmCountingHandler,
    /// `worker.onmessage` that terminates the sender mid-dispatch
    /// (CVE-2014-1719).
    ArmTerminateOnMessage,
    /// `worker.onmessage` that terminates the sender, then touches the
    /// buffer it transferred (CVE-2014-1488).
    ArmReadTransferOnMessage,
    /// `worker.onerror` that records the error message (CVE-2014-1487).
    ArmErrorLeakHandler,
    /// Re-assigns `worker.onmessage` `count` times, `step_ms` apart,
    /// spraying the closing window (CVE-2013-5602).
    SprayHandlers {
        /// Number of assignment attempts.
        count: u32,
        /// Gap between attempts.
        step_ms: u32,
    },
    /// A plain main-thread `fetch(url)` whose completion records a marker
    /// (CVE-2010-4576's stale callback).
    Fetch {
        /// Fetched URL.
        url: String,
    },
    /// `location = …` — navigate the main document away.
    Navigate,
    /// `window.close()`.
    CloseDocument,
    /// `indexedDB.open(name, {durable: true})` (CVE-2017-7843 when the
    /// schedule runs in private mode).
    IdbOpenPersist {
        /// Database name.
        name: String,
    },
    /// Blocks the main thread for `ms` of compute (CVE-2013-6646's
    /// queue-builder).
    Compute {
        /// Busy time in milliseconds.
        ms: u32,
    },
    /// `count` self-posted tasks, `interval_ms` apart: the Loophole
    /// shared-event-loop contention monitor.
    SelfPostFlood {
        /// Number of self-posts.
        count: u32,
        /// Gap between posts.
        interval_ms: u32,
    },
    /// `count` ILP racing-counter reads, `interval_ms` apart: the Hacky
    /// Racers stealthy ticker.
    IlpProbe {
        /// Number of counter reads.
        count: u32,
        /// Gap between reads.
        interval_ms: u32,
        /// Parallel increment chains per read.
        chains: u32,
    },
    /// Brackets a secret-dependent SVG filter between animation frames and
    /// records the ticker count observed across it (Listing 1's measure
    /// step; needs a prior [`ScheduleOp::ArmCountingHandler`]).
    SvgFilterProbe {
        /// Filtered pixel count (the secret-dependent work).
        pixels: u64,
    },
}

/// One event: `op` applied at `at_ms` on the main thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleEvent {
    /// Virtual milliseconds after boot.
    pub at_ms: u32,
    /// What happens.
    pub op: ScheduleOp,
}

/// A complete, serializable browser run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Corpus name ("CVE-2018-5092", "listing-1", "attack-loophole", …).
    pub name: String,
    /// Run the document in private-browsing mode.
    pub private_mode: bool,
    /// Virtual run length after boot.
    pub run_ms: u32,
    /// Resources registered before boot.
    pub resources: Vec<ResourceDecl>,
    /// The event list. Order matters for events sharing an `at_ms`.
    pub events: Vec<ScheduleEvent>,
}

impl Schedule {
    /// Serializes to the on-disk corpus-entry JSON shape.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("schedule is serializable")
    }

    /// Parses a corpus-entry JSON body.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error when `body` is not a schedule.
    pub fn from_json(body: &str) -> Result<Schedule, serde_json::Error> {
        serde_json::from_str(body)
    }
}

/// Mutable cross-callback state for one schedule run.
#[derive(Default)]
struct RunState {
    workers: Vec<WorkerId>,
    msg_count: u64,
}

impl RunState {
    fn last_worker(&self) -> Option<WorkerId> {
        self.workers.last().copied()
    }
}

fn script_for(kind: &WorkerKind) -> WorkerScript {
    match kind.clone() {
        WorkerKind::Idle => worker_script(|_| {}),
        WorkerKind::Echo => worker_script(|scope| {
            scope.post_message(JsValue::from("hello"));
        }),
        WorkerKind::Ticker { interval_ms } => worker_script(move |scope| {
            scope.set_interval(
                f64::from(interval_ms.max(1)),
                cb(|scope, _| {
                    scope.post_message(JsValue::from(1.0));
                }),
            );
        }),
        WorkerKind::Flood { interval_ms, burst } => worker_script(move |scope| {
            scope.set_interval(
                f64::from(interval_ms.max(1)),
                cb(move |scope, _| {
                    for i in 0..burst.max(1) {
                        scope.post_message(JsValue::from(f64::from(i)));
                    }
                }),
            );
        }),
        WorkerKind::FetchLoop { url, interval_ms } => worker_script(move |scope| {
            let url = url.clone();
            scope.set_interval(
                f64::from(interval_ms.max(1)),
                cb(move |scope, _| {
                    let sig = scope.new_abort_controller();
                    scope.fetch(url.clone(), Some(sig), cb(|_, _| {}));
                }),
            );
        }),
        WorkerKind::ImportMissing { url } => worker_script(move |scope| {
            scope.set_onerror(cb(|scope, msg| {
                scope.record("leak", msg);
            }));
            let _ = scope.import_scripts(url.clone());
        }),
        WorkerKind::CrossOriginXhr { url } => worker_script(move |scope| {
            scope.xhr_send(
                url.clone(),
                cb(|scope, v| {
                    scope.record("xhr_ok", v.get("ok").cloned().unwrap_or_default());
                }),
            );
        }),
        WorkerKind::TransferOut { bytes } => worker_script(move |scope| {
            let buf = scope.create_buffer(bytes.max(1) as usize);
            scope.post_message_transfer(JsValue::from(buf.index()), vec![buf]);
        }),
        WorkerKind::SelfClose { after_ms } => worker_script(move |scope| {
            scope.set_timeout(f64::from(after_ms), cb(|scope, _| scope.close()));
        }),
    }
}

/// Applies one op at its scheduled instant. Ops referencing "the worker"
/// use the most recently created one and degrade to no-ops when a mutation
/// removed the creation — fuzzed schedules must never panic the runner.
fn apply(op: &ScheduleOp, scope: &mut JsScope<'_>, st: &Rc<RefCell<RunState>>) {
    match op {
        ScheduleOp::CreateWorker {
            src,
            kind,
            sandboxed,
        } => {
            let script = script_for(kind);
            let src = src.clone();
            let w = if *sandboxed {
                let mut made = None;
                scope.run_sandboxed(|scope| {
                    made = Some(scope.create_worker(src, script));
                });
                made.expect("sandboxed closure runs synchronously")
            } else {
                scope.create_worker(src, script)
            };
            st.borrow_mut().workers.push(w);
        }
        ScheduleOp::TerminateWorker => {
            if let Some(w) = st.borrow().last_worker() {
                scope.terminate_worker(w);
            }
        }
        ScheduleOp::ArmCountingHandler => {
            if let Some(w) = st.borrow().last_worker() {
                let st = st.clone();
                scope.set_worker_onmessage(
                    w,
                    cb(move |_, _| {
                        st.borrow_mut().msg_count += 1;
                    }),
                );
            }
        }
        ScheduleOp::ArmTerminateOnMessage => {
            if let Some(w) = st.borrow().last_worker() {
                scope.set_worker_onmessage(
                    w,
                    cb(move |scope, _| {
                        scope.terminate_worker(w);
                    }),
                );
            }
        }
        ScheduleOp::ArmReadTransferOnMessage => {
            if let Some(w) = st.borrow().last_worker() {
                scope.set_worker_onmessage(
                    w,
                    cb(move |scope, v| {
                        let buf = BufferId::new(v.as_f64().unwrap_or_default() as u64);
                        scope.terminate_worker(w);
                        let ok = scope.read_buffer(buf);
                        scope.record("buffer_alive", JsValue::from(ok));
                    }),
                );
            }
        }
        ScheduleOp::ArmErrorLeakHandler => {
            if let Some(w) = st.borrow().last_worker() {
                scope.set_worker_onerror(
                    w,
                    cb(|scope, msg| {
                        scope.record("leak", msg);
                    }),
                );
            }
        }
        ScheduleOp::SprayHandlers { count, step_ms } => {
            if let Some(w) = st.borrow().last_worker() {
                let step = (*step_ms).max(1);
                for i in 0..*count {
                    scope.set_timeout(
                        f64::from(i * step),
                        cb(move |scope, _| {
                            if scope.worker_alive(w) {
                                scope.set_worker_onmessage(w, cb(|_, _| {}));
                            }
                        }),
                    );
                }
            }
        }
        ScheduleOp::Fetch { url } => {
            scope.fetch(
                url.clone(),
                None,
                cb(|scope, _| {
                    scope.record("stale_callback_ran", JsValue::from(true));
                }),
            );
        }
        ScheduleOp::Navigate => scope.navigate(),
        ScheduleOp::CloseDocument => scope.close(),
        ScheduleOp::IdbOpenPersist { name } => {
            let ok = scope.idb_open(name.clone(), true);
            scope.record("opened", JsValue::from(ok));
        }
        ScheduleOp::Compute { ms } => {
            scope.compute(SimDuration::from_millis(u64::from(*ms)));
        }
        ScheduleOp::SelfPostFlood { count, interval_ms } => {
            let step = (*interval_ms).max(1);
            for i in 0..*count {
                scope.set_timeout(
                    f64::from(i * step),
                    cb(|scope, _| {
                        scope.post_task(cb(|_, _| {}));
                    }),
                );
            }
        }
        ScheduleOp::IlpProbe {
            count,
            interval_ms,
            chains,
        } => {
            let chains = *chains;
            let step = (*interval_ms).max(1);
            for i in 0..*count {
                scope.set_timeout(
                    f64::from(i * step),
                    cb(move |scope, _| {
                        let sample = scope.ilp_counter_read(chains);
                        scope.record("ilp_sample", JsValue::from(sample));
                    }),
                );
            }
        }
        ScheduleOp::SvgFilterProbe { pixels } => {
            let px = *pixels;
            let st = st.clone();
            scope.request_animation_frame(cb(move |scope, _| {
                let before = st.borrow().msg_count;
                scope.apply_svg_filter(px);
                let st = st.clone();
                scope.request_animation_frame(cb(move |scope, _| {
                    let ticks = st.borrow().msg_count - before;
                    scope.record("ticks", JsValue::from(ticks as f64));
                }));
            }));
        }
    }
}

/// Runs `schedule` inside an existing browser: registers its resources,
/// boots the event list, and advances `run_ms` of virtual time.
pub fn run_schedule_in(browser: &mut Browser, schedule: &Schedule) {
    for r in &schedule.resources {
        let spec = if r.missing {
            ResourceSpec::missing()
        } else {
            ResourceSpec::of_size(r.size_bytes)
        };
        browser.register_resource(&r.url, spec);
    }
    let events = schedule.events.clone();
    let st = Rc::new(RefCell::new(RunState::default()));
    browser.boot(move |scope| {
        for ev in &events {
            if ev.at_ms == 0 {
                apply(&ev.op, scope, &st);
            } else {
                let st = st.clone();
                let op = ev.op.clone();
                scope.set_timeout(
                    f64::from(ev.at_ms),
                    cb(move |scope, _| apply(&op, scope, &st)),
                );
            }
        }
    });
    browser.run_for(SimDuration::from_millis(u64::from(schedule.run_ms.max(1))));
}

/// Builds a browser for `schedule` under `mediator` and runs it to the end
/// of its window. The returned browser holds the trace.
#[must_use]
pub fn run_schedule(schedule: &Schedule, mediator: Box<dyn Mediator>, seed: u64) -> Browser {
    run_schedule_with(
        schedule,
        mediator,
        BrowserConfig::new(BrowserProfile::chrome(), seed),
    )
}

/// Like [`run_schedule`], but over a caller-built [`BrowserConfig`] — the
/// hook a serving layer needs to wire shard placement, fault plans, and an
/// observer into a schedule run. The schedule still owns its document
/// mode: `cfg.private_mode` is overwritten from the schedule so the same
/// wire submission can never run in the wrong mode.
#[must_use]
pub fn run_schedule_with(
    schedule: &Schedule,
    mediator: Box<dyn Mediator>,
    mut cfg: BrowserConfig,
) -> Browser {
    cfg.private_mode = schedule.private_mode;
    let mut browser = Browser::new(cfg, mediator);
    run_schedule_in(&mut browser, schedule);
    browser
}

fn ev(at_ms: u32, op: ScheduleOp) -> ScheduleEvent {
    ScheduleEvent { at_ms, op }
}

fn plain(name: &str, run_ms: u32, events: Vec<ScheduleEvent>) -> Schedule {
    Schedule {
        name: name.to_owned(),
        private_mode: false,
        run_ms,
        resources: Vec::new(),
        events,
    }
}

/// The seed corpus: one schedule per Table I program (thirteen, in corpus
/// order) plus one per attack family. Each mirrors the hand-written
/// exploit's triggering sequence.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn seed_schedules() -> Vec<Schedule> {
    let mut out = Vec::new();

    let mut s = plain(
        "CVE-2018-5092",
        300,
        vec![
            ev(
                0,
                ScheduleOp::CreateWorker {
                    src: "worker.js".into(),
                    kind: WorkerKind::FetchLoop {
                        url: "https://attacker.example/fetchedfile0.html".into(),
                        interval_ms: 32,
                    },
                    sandboxed: false,
                },
            ),
            ev(60, ScheduleOp::CloseDocument),
        ],
    );
    s.resources.push(ResourceDecl {
        url: "https://attacker.example/fetchedfile0.html".into(),
        size_bytes: 6 << 20,
        missing: false,
    });
    out.push(s);

    let mut s = plain(
        "CVE-2017-7843",
        50,
        vec![ev(
            0,
            ScheduleOp::IdbOpenPersist {
                name: "tracker".into(),
            },
        )],
    );
    s.private_mode = true;
    out.push(s);

    let mut s = plain(
        "CVE-2015-7215",
        100,
        vec![ev(
            0,
            ScheduleOp::CreateWorker {
                src: "worker.js".into(),
                kind: WorkerKind::ImportMissing {
                    url: "https://victim.example/config.js".into(),
                },
                sandboxed: false,
            },
        )],
    );
    s.resources.push(ResourceDecl {
        url: "https://victim.example/config.js".into(),
        size_bytes: 0,
        missing: true,
    });
    out.push(s);

    out.push(plain(
        "CVE-2014-3194",
        200,
        vec![
            ev(
                0,
                ScheduleOp::CreateWorker {
                    src: "worker.js".into(),
                    kind: WorkerKind::Ticker { interval_ms: 1 },
                    sandboxed: false,
                },
            ),
            ev(0, ScheduleOp::ArmCountingHandler),
            ev(40, ScheduleOp::Navigate),
        ],
    ));

    out.push(plain(
        "CVE-2014-1719",
        100,
        vec![
            ev(
                0,
                ScheduleOp::CreateWorker {
                    src: "worker.js".into(),
                    kind: WorkerKind::Echo,
                    sandboxed: false,
                },
            ),
            ev(0, ScheduleOp::ArmTerminateOnMessage),
        ],
    ));

    out.push(plain(
        "CVE-2014-1488",
        100,
        vec![
            ev(
                0,
                ScheduleOp::CreateWorker {
                    src: "worker.js".into(),
                    kind: WorkerKind::TransferOut { bytes: 1 << 20 },
                    sandboxed: false,
                },
            ),
            ev(0, ScheduleOp::ArmReadTransferOnMessage),
        ],
    ));

    let mut s = plain(
        "CVE-2014-1487",
        100,
        vec![
            ev(
                0,
                ScheduleOp::CreateWorker {
                    src: "https://victim.example/w.js".into(),
                    kind: WorkerKind::Idle,
                    sandboxed: false,
                },
            ),
            ev(0, ScheduleOp::ArmErrorLeakHandler),
        ],
    );
    s.resources.push(ResourceDecl {
        url: "https://victim.example/w.js".into(),
        size_bytes: 0,
        missing: true,
    });
    out.push(s);

    out.push(plain(
        "CVE-2013-6646",
        200,
        vec![
            ev(
                0,
                ScheduleOp::CreateWorker {
                    src: "worker.js".into(),
                    kind: WorkerKind::Flood {
                        interval_ms: 1,
                        burst: 4,
                    },
                    sandboxed: false,
                },
            ),
            ev(0, ScheduleOp::ArmCountingHandler),
            ev(30, ScheduleOp::Compute { ms: 25 }),
            ev(40, ScheduleOp::CloseDocument),
        ],
    ));

    out.push(plain(
        "CVE-2013-5602",
        200,
        vec![
            ev(
                0,
                ScheduleOp::CreateWorker {
                    src: "worker.js".into(),
                    kind: WorkerKind::SelfClose { after_ms: 10 },
                    sandboxed: false,
                },
            ),
            ev(
                6,
                ScheduleOp::SprayHandlers {
                    count: 30,
                    step_ms: 2,
                },
            ),
        ],
    ));

    out.push(plain(
        "CVE-2013-1714",
        100,
        vec![ev(
            0,
            ScheduleOp::CreateWorker {
                src: "worker.js".into(),
                kind: WorkerKind::CrossOriginXhr {
                    url: "https://victim.example/api/session".into(),
                },
                sandboxed: false,
            },
        )],
    ));

    out.push(plain(
        "CVE-2011-1190",
        100,
        vec![ev(
            0,
            ScheduleOp::CreateWorker {
                src: "worker.js".into(),
                kind: WorkerKind::CrossOriginXhr {
                    url: "https://attacker.example/private".into(),
                },
                sandboxed: true,
            },
        )],
    ));

    // The 4 MB fetch takes ~3.5 s of virtual time at the ADSL profile; the
    // window must cover the transfer or the stale completion never lands.
    let mut s = plain(
        "CVE-2010-4576",
        5000,
        vec![
            ev(
                0,
                ScheduleOp::Fetch {
                    url: "https://attacker.example/slow.bin".into(),
                },
            ),
            ev(30, ScheduleOp::Navigate),
        ],
    );
    s.resources.push(ResourceDecl {
        url: "https://attacker.example/slow.bin".into(),
        size_bytes: 4 << 20,
        missing: false,
    });
    out.push(s);

    out.push(plain(
        "listing-1",
        400,
        vec![
            ev(
                0,
                ScheduleOp::CreateWorker {
                    src: "worker.js".into(),
                    kind: WorkerKind::Ticker { interval_ms: 1 },
                    sandboxed: false,
                },
            ),
            ev(0, ScheduleOp::ArmCountingHandler),
            ev(
                60,
                ScheduleOp::SvgFilterProbe {
                    pixels: 2048 * 2048,
                },
            ),
        ],
    ));

    out.push(plain(
        "attack-loophole",
        200,
        vec![ev(
            0,
            ScheduleOp::SelfPostFlood {
                count: 40,
                interval_ms: 1,
            },
        )],
    ));

    out.push(plain(
        "attack-hacky-racers",
        200,
        vec![ev(
            0,
            ScheduleOp::IlpProbe {
                count: 30,
                interval_ms: 2,
                chains: 8,
            },
        )],
    ));

    out
}

/// How many of [`seed_schedules`]'s entries are Table I corpus programs
/// (the rest are attack-family probes).
pub const CORPUS_SCHEDULES: usize = 13;

/// The thirteen corpus schedules alone — the twelve CVE programs plus
/// Listing 1, in [`seed_schedules`] order — the slice a serving corpus or
/// a wire smoke test submits.
#[must_use]
pub fn corpus_schedules() -> Vec<Schedule> {
    let mut all = seed_schedules();
    all.truncate(CORPUS_SCHEDULES);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_browser::mediator::LegacyMediator;

    #[test]
    fn seed_corpus_covers_every_program_and_both_families() {
        let seeds = seed_schedules();
        assert_eq!(seeds.len(), 15);
        let names: Vec<&str> = seeds.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"CVE-2018-5092"));
        assert!(names.contains(&"listing-1"));
        assert!(names.contains(&"attack-loophole"));
        assert!(names.contains(&"attack-hacky-racers"));
    }

    #[test]
    fn corpus_schedules_are_the_thirteen_table1_programs() {
        let corpus = corpus_schedules();
        assert_eq!(corpus.len(), CORPUS_SCHEDULES);
        assert!(corpus.iter().all(|s| !s.name.starts_with("attack-")));
        assert_eq!(corpus.last().unwrap().name, "listing-1");
    }

    #[test]
    fn schedules_round_trip_through_json() {
        for s in seed_schedules() {
            let json = s.to_json();
            let back = Schedule::from_json(&json).expect("parses back");
            assert_eq!(back, s, "{} must round-trip", s.name);
        }
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        for s in seed_schedules() {
            let a = run_schedule(&s, Box::new(LegacyMediator), 7);
            let b = run_schedule(&s, Box::new(LegacyMediator), 7);
            assert_eq!(
                a.trace().entries().len(),
                b.trace().entries().len(),
                "{}",
                s.name
            );
            assert_eq!(a.trace(), b.trace(), "{} must replay identically", s.name);
        }
    }

    #[test]
    fn ops_referencing_a_missing_worker_are_tolerated() {
        // A mutated schedule may drop the CreateWorker: every worker-directed
        // op must degrade to a no-op instead of panicking.
        let s = plain(
            "orphan-ops",
            50,
            vec![
                ev(0, ScheduleOp::TerminateWorker),
                ev(0, ScheduleOp::ArmCountingHandler),
                ev(0, ScheduleOp::ArmTerminateOnMessage),
                ev(0, ScheduleOp::ArmReadTransferOnMessage),
                ev(0, ScheduleOp::ArmErrorLeakHandler),
                ev(
                    0,
                    ScheduleOp::SprayHandlers {
                        count: 3,
                        step_ms: 1,
                    },
                ),
            ],
        );
        let b = run_schedule(&s, Box::new(LegacyMediator), 1);
        let has_worker = b.trace().entries().iter().any(|e| {
            matches!(
                e.item,
                jsk_browser::trace::TraceItem::Api(
                    jsk_browser::trace::ApiCall::CreateWorker { .. }
                )
            )
        });
        assert!(!has_worker, "no worker should exist in an orphan-op run");
    }
}
