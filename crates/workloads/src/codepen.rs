//! The API-specific compatibility test (§V-B1).
//!
//! The paper samples 20 CodePen applications, five per searched API, runs
//! each under Firefox / Fuzzyfox / DeterFox / JSKernel, and counts apps
//! with *observable differences* (wrong FPS, stalled animations, broken
//! output). Result: Fuzzyfox 13/20 differ, DeterFox 7/20, JSKernel 4/20 —
//! and JSKernel's differences are all time-related (`performance.now`-paced
//! animations), never functional breakage.
//!
//! Our stand-ins are 20 small apps, five per API family, each reporting a
//! *behaviour metric* (frame rate, animation progress, tick counts, worker
//! round-trips). An app shows an observable difference under a defense when
//! its metric deviates from the undefended run by more than the tolerance,
//! or when it fails to produce output at all.

use jsk_browser::browser::Browser;
use jsk_browser::scope::JsScope;
use jsk_browser::task::{cb, worker_script};
use jsk_browser::value::JsValue;
use jsk_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// The API family an app exercises (the paper's search terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApiFamily {
    /// `performance.now`-paced animation/timing apps.
    PerformanceNow,
    /// `setTimeout`/`setInterval`-driven apps.
    Timers,
    /// `requestAnimationFrame` render loops.
    AnimationFrame,
    /// Web-worker compute apps.
    Workers,
}

impl ApiFamily {
    /// All four families, five apps each.
    pub const ALL: [ApiFamily; 4] = [
        ApiFamily::PerformanceNow,
        ApiFamily::Timers,
        ApiFamily::AnimationFrame,
        ApiFamily::Workers,
    ];

    /// The family's display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ApiFamily::PerformanceNow => "performance.now",
            ApiFamily::Timers => "timers",
            ApiFamily::AnimationFrame => "requestAnimationFrame",
            ApiFamily::Workers => "workers",
        }
    }
}

/// One synthetic CodePen-style app.
#[derive(Debug, Clone, Copy)]
pub struct App {
    /// The API it exercises.
    pub family: ApiFamily,
    /// Index within the family (0..5), varying the app's parameters.
    pub index: usize,
}

impl App {
    /// The twenty apps of the test set.
    #[must_use]
    pub fn test_set() -> Vec<App> {
        let mut apps = Vec::with_capacity(20);
        for family in ApiFamily::ALL {
            for index in 0..5 {
                apps.push(App { family, index });
            }
        }
        apps
    }

    /// A short identifier.
    #[must_use]
    pub fn id(&self) -> String {
        format!("{}-{}", self.family.name(), self.index)
    }

    /// Runs the app and returns its behaviour metric (`None` when the app
    /// produced no output — a hard breakage).
    pub fn run(&self, browser: &mut Browser) -> Option<f64> {
        let app = *self;
        browser.boot(move |scope| app.body(scope));
        browser.run_for(SimDuration::from_millis(700));
        browser.record_value("metric").and_then(JsValue::as_f64)
    }

    fn body(self, scope: &mut JsScope<'_>) {
        match self.family {
            // performance.now apps come in two shapes. Indices 0–2 are
            // *adaptive*: each frame measures its own compute budget with
            // performance.now and adjusts a quality level — precisely the
            // "fine-grained time-related operations" whose behaviour the
            // paper saw change under JSKernel (a kernel clock reports ~zero
            // in-task time, so the app keeps raising quality). Indices 3–4
            // pace an animation by elapsed time, which every clock
            // discipline preserves on average.
            ApiFamily::PerformanceNow if self.index < 3 => {
                let frames = 10 + self.index as u32;
                let budget_ms = 4.0 + self.index as f64;
                let quality = Rc::new(RefCell::new(10.0f64));
                fn frame(
                    scope: &mut JsScope<'_>,
                    left: u32,
                    budget_ms: f64,
                    quality: Rc<RefCell<f64>>,
                ) {
                    scope.request_animation_frame(cb(move |scope, _| {
                        let t0 = scope.performance_now();
                        scope.compute(SimDuration::from_millis_f64(budget_ms + 2.0));
                        let t1 = scope.performance_now();
                        if t1 - t0 > budget_ms {
                            *quality.borrow_mut() -= 1.0;
                        } else {
                            *quality.borrow_mut() += 1.0;
                        }
                        if left > 0 {
                            frame(scope, left - 1, budget_ms, quality.clone());
                        } else {
                            scope.record("metric", JsValue::from(*quality.borrow()));
                        }
                    }));
                }
                frame(scope, frames, budget_ms, quality);
            }
            ApiFamily::PerformanceNow => {
                let frames = 12 + self.index as u32;
                let pos = Rc::new(RefCell::new(0.0f64));
                let last = Rc::new(RefCell::new(None::<f64>));
                fn frame(
                    scope: &mut JsScope<'_>,
                    left: u32,
                    pos: Rc<RefCell<f64>>,
                    last: Rc<RefCell<Option<f64>>>,
                ) {
                    scope.request_animation_frame(cb(move |scope, _| {
                        let now = scope.performance_now();
                        if let Some(prev) = *last.borrow() {
                            // pixels = 0.1 px/ms of *observed* time
                            *pos.borrow_mut() += (now - prev) * 0.1;
                        }
                        *last.borrow_mut() = Some(now);
                        if left > 0 {
                            frame(scope, left - 1, pos.clone(), last.clone());
                        } else {
                            scope.record("metric", JsValue::from(*pos.borrow()));
                        }
                    }));
                }
                frame(scope, frames, pos, last);
            }
            // A timer-driven app: counts interval firings in a window.
            ApiFamily::Timers => {
                let period = 8.0 + self.index as f64 * 4.0;
                let count = Rc::new(RefCell::new(0.0f64));
                let c = count.clone();
                scope.set_interval(
                    period,
                    cb(move |_, _| {
                        *c.borrow_mut() += 1.0;
                    }),
                );
                scope.set_timeout(
                    400.0,
                    cb(move |scope, _| {
                        scope.record("metric", JsValue::from(*count.borrow()));
                    }),
                );
            }
            // A rAF render loop: the metric is frames rendered in a window
            // (the app's FPS).
            ApiFamily::AnimationFrame => {
                let frames = Rc::new(RefCell::new(0.0f64));
                fn render(scope: &mut JsScope<'_>, frames: Rc<RefCell<f64>>) {
                    scope.request_animation_frame(cb(move |scope, _| {
                        *frames.borrow_mut() += 1.0;
                        render(scope, frames.clone());
                    }));
                }
                render(scope, frames.clone());
                scope.set_timeout(
                    400.0,
                    cb(move |scope, _| {
                        scope.record("metric", JsValue::from(*frames.borrow()));
                    }),
                );
            }
            // A worker compute app: ship N jobs to a worker, metric = sum of
            // results (functional, not timing — must be identical under
            // every defense).
            ApiFamily::Workers => {
                let jobs = 3 + self.index as u32;
                let w = scope.create_worker(
                    "compute.js",
                    worker_script(|scope| {
                        scope.set_onmessage(cb(|scope, v| {
                            let n = v.as_f64().unwrap_or_default();
                            scope.post_message(JsValue::from(n * n));
                        }));
                    }),
                );
                let sum = Rc::new(RefCell::new(0.0f64));
                let got = Rc::new(RefCell::new(0u32));
                let s2 = sum;
                scope.set_worker_onmessage(
                    w,
                    cb(move |scope, v| {
                        *s2.borrow_mut() += v.as_f64().unwrap_or_default();
                        *got.borrow_mut() += 1;
                        if *got.borrow() == jobs {
                            scope.record("metric", JsValue::from(*s2.borrow()));
                        }
                    }),
                );
                for i in 1..=jobs {
                    scope.post_message_to_worker(w, JsValue::from(f64::from(i)));
                }
            }
        }
    }
}

/// One app's comparison against the undefended baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppComparison {
    /// App id.
    pub app: String,
    /// Baseline metric (undefended).
    pub baseline: Option<f64>,
    /// Defended metric.
    pub defended: Option<f64>,
    /// Whether the difference is observable.
    pub observable_difference: bool,
}

/// Relative tolerance below which a metric difference is not "observable".
pub const TOLERANCE: f64 = 0.10;

/// Runs the 20-app test set under `defended` and compares against
/// `baseline` (both constructors receive the seed).
pub fn run_comparison(
    mut baseline: impl FnMut(u64) -> Browser,
    mut defended: impl FnMut(u64) -> Browser,
) -> Vec<AppComparison> {
    App::test_set()
        .into_iter()
        .enumerate()
        .map(|(i, app)| {
            let seed = 0xC0DE + i as u64;
            let base = app.run(&mut baseline(seed));
            let def = app.run(&mut defended(seed));
            let observable = match (base, def) {
                (Some(b), Some(d)) => {
                    let scale = b.abs().max(1e-9);
                    (d - b).abs() / scale > TOLERANCE
                }
                (None, None) => false,
                _ => true, // one side produced nothing: hard breakage
            };
            AppComparison {
                app: app.id(),
                baseline: base,
                defended: def,
                observable_difference: observable,
            }
        })
        .collect()
}

/// Counts observable differences.
#[must_use]
pub fn observable_count(rows: &[AppComparison]) -> usize {
    rows.iter().filter(|r| r.observable_difference).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_browser::browser::BrowserConfig;
    use jsk_browser::mediator::LegacyMediator;
    use jsk_browser::profile::BrowserProfile;

    fn legacy(seed: u64) -> Browser {
        Browser::new(
            BrowserConfig::new(BrowserProfile::firefox(), seed),
            Box::new(LegacyMediator),
        )
    }

    #[test]
    fn twenty_apps_five_per_family() {
        let apps = App::test_set();
        assert_eq!(apps.len(), 20);
        for family in ApiFamily::ALL {
            assert_eq!(apps.iter().filter(|a| a.family == family).count(), 5);
        }
    }

    #[test]
    fn every_app_produces_a_metric_on_legacy() {
        for app in App::test_set() {
            let m = app.run(&mut legacy(1));
            assert!(m.is_some(), "{} produced no output", app.id());
        }
    }

    #[test]
    fn legacy_vs_legacy_shows_no_observable_differences() {
        let rows = run_comparison(legacy, legacy);
        assert_eq!(observable_count(&rows), 0, "{rows:#?}");
    }
}
