//! The worker-creation benchmark (§V-A1).
//!
//! "We created 16 workers and measured the time to create these workers
//! with 5 repeat experiments — the average overhead is 0.9% with and
//! without JSKERNEL extension."
//!
//! Each worker handshakes back to the main thread on startup; the measured
//! time is from boot until the last handshake (harness clock).

use jsk_browser::browser::Browser;
use jsk_browser::task::{cb, worker_script};
use jsk_browser::value::JsValue;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// Result of one worker-benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerBenchResult {
    /// Workers created.
    pub workers: usize,
    /// Time until the last worker's handshake, in ms.
    pub total_ms: f64,
}

/// Creates `n` workers in `browser` and measures time-to-all-ready.
pub fn run(browser: &mut Browser, n: usize) -> WorkerBenchResult {
    browser.boot(move |scope| {
        let pending = Rc::new(RefCell::new(n));
        for _ in 0..n {
            let w = scope.create_worker(
                "worker.js",
                worker_script(|scope| {
                    scope.post_message(JsValue::from("ready"));
                }),
            );
            let pending = pending.clone();
            scope.set_worker_onmessage(
                w,
                cb(move |scope, _| {
                    let mut p = pending.borrow_mut();
                    *p -= 1;
                    if *p == 0 {
                        let t = scope.browser_now_ms();
                        scope.record("workers_ready_ms", JsValue::from(t));
                    }
                }),
            );
        }
    });
    browser.run_until_idle();
    let total_ms = browser
        .record_value("workers_ready_ms")
        .and_then(JsValue::as_f64)
        .expect("all workers handshake");
    WorkerBenchResult {
        workers: n,
        total_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_browser::browser::BrowserConfig;
    use jsk_browser::mediator::LegacyMediator;
    use jsk_browser::profile::BrowserProfile;

    #[test]
    fn sixteen_workers_all_start() {
        let mut b = Browser::new(
            BrowserConfig::new(BrowserProfile::chrome(), 3),
            Box::new(LegacyMediator),
        );
        let r = run(&mut b, 16);
        assert_eq!(r.workers, 16);
        assert!(r.total_ms > 0.5);
        assert_eq!(b.live_worker_count(), 16);
    }

    #[test]
    fn more_workers_take_longer() {
        let time_for = |n| {
            let mut b = Browser::new(
                BrowserConfig::new(BrowserProfile::chrome(), 4),
                Box::new(LegacyMediator),
            );
            run(&mut b, n).total_ms
        };
        assert!(time_for(16) >= time_for(2));
    }
}
