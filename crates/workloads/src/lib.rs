//! # jsk-workloads — evaluation workloads
//!
//! Synthetic, seeded stand-ins for the paper's evaluation workloads:
//! Alexa-like site profiles ([`site`]), the Raptor tp6 loading test
//! ([`raptor`]), a Dromaeo-like micro benchmark suite ([`dromaeo`]), the
//! 16-worker creation benchmark ([`workerbench`]), and the DOM-similarity
//! compatibility methodology ([`compat`]); plus the serializable event
//! [`schedule`]s the fuzzer mutates.

pub mod codepen;
pub mod compat;
pub mod dromaeo;
pub mod raptor;
pub mod schedule;
pub mod site;
pub mod workerbench;

pub use site::{load_result, load_site, load_site_in_context, LoadResult, SiteProfile};
