//! The compatibility methodology of §V-B2.
//!
//! "We visit each website twice, one with JSKERNEL and the other without…
//! output the document object tree… and compare these two strings using
//! cosine similarity: if the similarity is larger than 99% we consider that
//! these two visits render the same results."
//!
//! The residual mismatches in the paper were all dynamic content (ads); our
//! seeded site profiles carry a `dynamic_ads` flag reproducing that tail.

use crate::site::{load_site, SiteProfile};
use jsk_browser::browser::{Browser, BrowserConfig};
use jsk_browser::dom::dom_similarity;
use jsk_browser::mediator::Mediator;
use serde::{Deserialize, Serialize};

/// The paper's similarity threshold.
pub const SIMILARITY_THRESHOLD: f64 = 0.99;

/// One site's compatibility comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompatRow {
    /// Site name.
    pub site: String,
    /// Cosine similarity of the defended vs. undefended DOM.
    pub defended_similarity: f64,
    /// Cosine similarity of two *undefended* visits (the paper's control:
    /// dynamic content differs even without the defense).
    pub control_similarity: f64,
    /// Whether the profile injects dynamic ads.
    pub dynamic_ads: bool,
}

impl CompatRow {
    /// Whether the defended visit renders the same result.
    #[must_use]
    pub fn is_same(&self) -> bool {
        self.defended_similarity >= SIMILARITY_THRESHOLD
    }
}

/// Visits `profile` under two mediators (and once more under the baseline
/// as the control) and compares DOM term vectors.
pub fn compare_site(
    profile: &SiteProfile,
    cfg: impl Fn(u64) -> BrowserConfig,
    baseline: impl Fn() -> Box<dyn Mediator>,
    defended: impl Fn() -> Box<dyn Mediator>,
) -> CompatRow {
    compare_site_observed(profile, cfg, baseline, defended, &mut |_| {})
}

/// Like [`compare_site`], but calls `observe` on each of the three visit
/// browsers (two undefended, one defended) after its load completes, so
/// callers can harvest kernel statistics for throughput accounting.
pub fn compare_site_observed(
    profile: &SiteProfile,
    cfg: impl Fn(u64) -> BrowserConfig,
    baseline: impl Fn() -> Box<dyn Mediator>,
    defended: impl Fn() -> Box<dyn Mediator>,
    observe: &mut dyn FnMut(&Browser),
) -> CompatRow {
    let mut visit = |seed: u64, m: Box<dyn Mediator>| {
        let mut b = Browser::new(cfg(seed), m);
        load_site(&mut b, profile);
        observe(&b);
        b
    };
    // Two visits with different seeds model two real visits (dynamic
    // content may differ); the defended visit uses a third seed.
    let legacy_a = visit(11, baseline());
    let legacy_b = visit(22, baseline());
    let kernel = visit(33, defended());
    CompatRow {
        site: profile.name.clone(),
        defended_similarity: dom_similarity(legacy_a.dom(), kernel.dom()),
        control_similarity: dom_similarity(legacy_a.dom(), legacy_b.dom()),
        dynamic_ads: profile.dynamic_ads,
    }
}

/// Summary over a site population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompatSummary {
    /// Sites compared.
    pub total: usize,
    /// Sites whose defended similarity clears the 99 % bar.
    pub same: usize,
    /// Rows below the bar.
    pub mismatches: Vec<CompatRow>,
}

impl CompatSummary {
    /// Fraction of sites rendering the same.
    #[must_use]
    pub fn same_fraction(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.same as f64 / self.total as f64
    }
}

/// Runs the §V-B2 check over the top `n` generated sites.
pub fn run_check(
    n: usize,
    cfg: impl Fn(u64) -> BrowserConfig,
    baseline: impl Fn() -> Box<dyn Mediator>,
    defended: impl Fn() -> Box<dyn Mediator>,
) -> CompatSummary {
    let mut same = 0;
    let mut mismatches = Vec::new();
    for rank in 0..n {
        let profile = SiteProfile::generate(rank);
        let row = compare_site(&profile, &cfg, &baseline, &defended);
        if row.is_same() {
            same += 1;
        } else {
            mismatches.push(row);
        }
    }
    CompatSummary {
        total: n,
        same,
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_browser::mediator::LegacyMediator;
    use jsk_browser::profile::BrowserProfile;

    fn cfg(seed: u64) -> BrowserConfig {
        BrowserConfig::new(BrowserProfile::chrome(), seed)
    }

    #[test]
    fn identical_mediators_give_high_similarity_without_ads() {
        let profile = SiteProfile::named("google");
        let row = compare_site(
            &profile,
            cfg,
            || Box::new(LegacyMediator),
            || Box::new(LegacyMediator),
        );
        assert!(row.defended_similarity > 0.999, "{row:?}");
        assert!(row.is_same());
    }

    #[test]
    fn summary_counts_add_up() {
        let summary = run_check(
            8,
            cfg,
            || Box::new(LegacyMediator),
            || Box::new(LegacyMediator),
        );
        assert_eq!(summary.total, 8);
        assert_eq!(summary.same + summary.mismatches.len(), 8);
        assert!(summary.same_fraction() > 0.5);
    }
}
