//! The Raptor tp6-1 loading test (§V-A3, Table III).
//!
//! Raptor measures page loading with a *hero element*: some modern sites
//! keep loading after `onload` via JavaScript, and the hero element's
//! appearance captures that. Each subtest is loaded repeatedly and the
//! first result is skipped ("due to the involvement of opening a tab" — in
//! our model, the first visit pays the cold HTTP cache).

use crate::site::{load_result, load_site, SiteProfile};
use jsk_browser::browser::{Browser, BrowserConfig};
use jsk_browser::mediator::Mediator;
use jsk_sim::stats::Summary;
use serde::{Deserialize, Serialize};

/// The tp6-1 subtests.
pub const TP6_SITES: [&str; 4] = ["amazon", "facebook", "google", "youtube"];

/// Mean ± std of one subtest's hero times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaptorRow {
    /// Site name.
    pub site: String,
    /// Mean hero time in ms.
    pub mean_ms: f64,
    /// Standard deviation in ms.
    pub std_ms: f64,
}

/// Runs one subtest `repeats` times (skipping the first) under the given
/// defense constructor and returns the hero-time summary.
pub fn run_subtest(
    site: &str,
    repeats: usize,
    make_browser: impl FnMut(u64) -> Browser,
) -> RaptorRow {
    run_subtest_observed(site, repeats, make_browser, &mut |_| {})
}

/// Like [`run_subtest`], but calls `observe` on every loaded browser so
/// callers can harvest per-run kernel statistics (the first, skipped load
/// is observed too — its work is still simulated work).
pub fn run_subtest_observed(
    site: &str,
    repeats: usize,
    mut make_browser: impl FnMut(u64) -> Browser,
    observe: &mut dyn FnMut(&Browser),
) -> RaptorRow {
    let profile = SiteProfile::named(site);
    let mut times = Vec::new();
    for i in 0..repeats {
        let mut browser = make_browser(1_000 + i as u64);
        load_site(&mut browser, &profile);
        observe(&browser);
        let hero = load_result(&browser, &profile)
            .expect("site load records hero time")
            .hero_ms;
        if i > 0 {
            times.push(hero);
        }
    }
    let s = Summary::of(&times);
    RaptorRow {
        site: site.to_owned(),
        mean_ms: s.mean,
        std_ms: s.std,
    }
}

/// Runs the whole tp6-1 suite with a defense.
pub fn run_tp6(
    repeats: usize,
    cfg: impl Fn(u64) -> BrowserConfig,
    mediator: impl Fn() -> Box<dyn Mediator>,
) -> Vec<RaptorRow> {
    TP6_SITES
        .iter()
        .map(|site| run_subtest(site, repeats, |seed| Browser::new(cfg(seed), mediator())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_browser::mediator::LegacyMediator;
    use jsk_browser::profile::BrowserProfile;

    fn chrome_row(site: &str) -> RaptorRow {
        run_subtest(site, 6, |seed| {
            Browser::new(
                BrowserConfig::new(BrowserProfile::chrome(), seed),
                Box::new(LegacyMediator),
            )
        })
    }

    #[test]
    fn chrome_means_track_table3_ordering() {
        let google = chrome_row("google");
        let amazon = chrome_row("amazon");
        let youtube = chrome_row("youtube");
        assert!(google.mean_ms < amazon.mean_ms);
        assert!(amazon.mean_ms < youtube.mean_ms);
        // Table III Chrome: google 48.3, amazon 107.2, youtube 298.9 —
        // require the right decade, not the exact value.
        assert!((30.0..90.0).contains(&google.mean_ms), "{}", google.mean_ms);
        assert!(
            (70.0..180.0).contains(&amazon.mean_ms),
            "{}",
            amazon.mean_ms
        );
        assert!(
            (200.0..450.0).contains(&youtube.mean_ms),
            "{}",
            youtube.mean_ms
        );
    }

    #[test]
    fn firefox_is_several_times_slower() {
        let chrome = chrome_row("google");
        let firefox = run_subtest("google", 6, |seed| {
            Browser::new(
                BrowserConfig::new(BrowserProfile::firefox(), seed),
                Box::new(LegacyMediator),
            )
        });
        assert!(
            firefox.mean_ms > chrome.mean_ms * 3.0,
            "chrome {} vs firefox {}",
            chrome.mean_ms,
            firefox.mean_ms
        );
    }

    #[test]
    fn std_is_finite_and_small_relative_to_mean() {
        let row = chrome_row("amazon");
        assert!(row.std_ms >= 0.0);
        assert!(row.std_ms < row.mean_ms);
    }
}
