//! # jsk-analyze — static/trace analysis for JSKernel
//!
//! Three passes over the artifacts the rest of the workspace produces:
//!
//! 1. **Happens-before race detector** ([`hb`]): builds the HB graph from a
//!    recorded [`Trace`](jsk_browser::trace::Trace) — fork edges from task
//!    provenance plus the kernel's announced dispatch-chain and
//!    kernel-comm edges — and reports every conflicting access pair the
//!    graph leaves unordered, with both access stacks and a minimal
//!    reordering witness.
//! 2. **Attack-pattern scanner** ([`scanner`]): state machines over the
//!    API/fact stream flagging *potential* web-concurrency attack
//!    signatures (implicit-clock tickers, use-after-termination windows,
//!    error-leak orderings, …), each mapped to its CVE family.
//! 3. **Policy linter** ([`lint`]): static checks over
//!    [`PolicySpec`](jsk_core::policy::PolicySpec)s — shadowed rules,
//!    conditions the kernel can never satisfy, no-op allows, per-CVE
//!    policies that cannot order their racy pair, and defer rules that
//!    livelock without the watchdog.
//! 4. **Predictive race detection** ([`mod@predict`]): re-runs the detector
//!    over a soundly *weakened* order — dropping the kernel dispatcher's
//!    `DispatchChain` edges, which are scheduler choices rather than
//!    semantic dependencies — to report pairs reorderable in some
//!    feasible schedule, each with a raw-replay witness schedule.
//! 5. **Bounded policy prover** ([`prove`]): exhaustively enumerates op
//!    interleavings of a policy × attack-pattern product machine up to a
//!    depth bound, proving "policy defeats pattern for all schedules
//!    ≤ N" or emitting a minimal counterexample schedule.
//!
//! [`report::analyze`] combines the first two into one JSON-stable
//! [`report::AnalysisReport`]; [`corpus`] runs the twelve CVE programs and
//! the Listing 1 attack through it in raw and kernel modes.

pub mod corpus;
pub mod hb;
pub mod lint;
pub mod predict;
pub mod prove;
pub mod report;
pub mod scanner;

pub use corpus::{program_names, run_program, run_program_trace, CorpusMode};
pub use hb::{detect_races, AccessSite, HbGraph, RaceFinding, ReorderWitness};
pub use lint::{lint_policy, lint_policy_set, LintKind, LintLevel, PolicyLint};
pub use predict::{
    confirmed_witnesses, predict, predict_corpus, predict_schedule, PredictReport, PredictedRace,
};
pub use prove::{prove_all, prove_depth, prove_policy, ProofRow, ProveReport, Verdict};
pub use report::{analyze, AnalysisReport};
pub use scanner::{scan, PatternFinding, PatternKind};
