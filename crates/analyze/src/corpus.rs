//! The analysis corpus: the twelve CVE exploit programs plus the Listing 1
//! implicit-clock attack, each runnable in two modes:
//!
//! * **raw** — the undefended browser (legacy mediator). The analyzer must
//!   flag every program here: at least one race or attack signature.
//! * **kernel** — a [`JsKernel`] running a given policy (typically
//!   `policies/policy_deterministic.json`). The serialized dispatcher's
//!   chain and comm edges order everything the programs contend on, so the
//!   race detector must come back empty.

use crate::report::{analyze, AnalysisReport};
use jsk_attacks::cve_exploits::all_exploits;
use jsk_browser::browser::{Browser, BrowserConfig};
use jsk_browser::mediator::{LegacyMediator, Mediator};
use jsk_browser::profile::BrowserProfile;
use jsk_browser::task::{cb, worker_script};
use jsk_browser::trace::Trace;
use jsk_browser::value::JsValue;
use jsk_core::policy::PolicySpec;
use jsk_core::{JsKernel, KernelConfig};
use jsk_sim::time::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;

/// The Listing 1 program's corpus name.
pub const LISTING1: &str = "listing-1";

/// How a corpus program is scheduled and mediated.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusMode {
    /// Undefended: legacy mediator, raw scheduling.
    Raw,
    /// A kernel running exactly this policy.
    Kernel(PolicySpec),
}

/// All corpus program names: the twelve CVE ids (Table I order) plus
/// [`LISTING1`].
#[must_use]
pub fn program_names() -> Vec<String> {
    all_exploits()
        .iter()
        .map(|e| e.cve().id().to_owned())
        .chain(std::iter::once(LISTING1.to_owned()))
        .collect()
}

/// The kernel configuration hosting one policy: the policy's scheduling
/// component (when present) drives the deterministic dispatcher; without
/// one the kernel only enforces the policy's API rules.
#[must_use]
pub fn kernel_config_for(spec: &PolicySpec) -> KernelConfig {
    let mut cfg = KernelConfig::timing_only();
    match spec.scheduling {
        Some(prediction) => {
            cfg.prediction = prediction;
            cfg.deterministic = true;
        }
        None => cfg.deterministic = false,
    }
    cfg.policies = vec![spec.clone()];
    cfg
}

fn mediator_for(mode: &CorpusMode) -> Box<dyn Mediator> {
    match mode {
        CorpusMode::Raw => Box::new(LegacyMediator),
        CorpusMode::Kernel(spec) => Box::new(JsKernel::new(kernel_config_for(spec))),
    }
}

/// Runs one corpus program and returns its trace.
///
/// # Panics
///
/// Panics when `name` is not one of [`program_names`].
#[must_use]
pub fn run_program_trace(name: &str, mode: &CorpusMode, seed: u64) -> Trace {
    if name == LISTING1 {
        return listing1_trace(mode, seed);
    }
    let exploit = all_exploits()
        .into_iter()
        .find(|e| e.cve().id() == name)
        .unwrap_or_else(|| panic!("unknown corpus program `{name}`"));
    let mut cfg = BrowserConfig::new(BrowserProfile::chrome(), seed);
    exploit.configure(&mut cfg);
    let mut browser = Browser::new(cfg, mediator_for(mode));
    exploit.run(&mut browser);
    browser.trace().clone()
}

/// Runs one corpus program through the full analyzer.
///
/// # Panics
///
/// Panics when `name` is not one of [`program_names`].
#[must_use]
pub fn run_program(name: &str, mode: &CorpusMode, seed: u64) -> AnalysisReport {
    analyze(&run_program_trace(name, mode, seed))
}

/// The Listing 1 attack (worker `postMessage` ticker bracketing a
/// secret-dependent SVG filter), same shape as
/// `examples/implicit_clock_attack.rs`.
fn listing1_trace(mode: &CorpusMode, seed: u64) -> Trace {
    let secret_px = 2048 * 2048;
    let mut browser = Browser::new(
        BrowserConfig::new(BrowserProfile::chrome(), seed),
        mediator_for(mode),
    );
    browser.boot(move |scope| {
        let worker = scope.create_worker(
            "worker.js",
            worker_script(|scope| {
                scope.set_interval(
                    1.0,
                    cb(|scope, _| {
                        scope.post_message(JsValue::from(1.0));
                    }),
                );
            }),
        );
        let count = Rc::new(RefCell::new(0u64));
        let counter = count.clone();
        scope.set_worker_onmessage(
            worker,
            cb(move |_, _| {
                *counter.borrow_mut() += 1;
            }),
        );
        scope.set_timeout(
            60.0,
            cb(move |scope, _| {
                let count = count.clone();
                scope.request_animation_frame(cb(move |scope, _| {
                    let before = *count.borrow();
                    scope.apply_svg_filter(secret_px);
                    let count = count.clone();
                    scope.request_animation_frame(cb(move |scope, _| {
                        let ticks = *count.borrow() - before;
                        scope.record("ticks", JsValue::from(ticks as f64));
                    }));
                }));
            }),
        );
    });
    browser.run_for(SimDuration::from_millis(400));
    browser.trace().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::PatternKind;

    #[test]
    fn corpus_has_thirteen_programs() {
        let names = program_names();
        assert_eq!(names.len(), 13);
        assert!(names.contains(&"CVE-2018-5092".to_owned()));
        assert_eq!(names.last().map(String::as_str), Some(LISTING1));
    }

    #[test]
    fn listing1_raw_run_shows_the_ticker() {
        let report = run_program(LISTING1, &CorpusMode::Raw, 1);
        assert!(report
            .patterns
            .iter()
            .any(|p| p.kind == PatternKind::ImplicitClockTicker));
    }

    #[test]
    #[should_panic(expected = "unknown corpus program")]
    fn unknown_program_panics() {
        let _ = run_program_trace("CVE-0000-0000", &CorpusMode::Raw, 1);
    }
}
