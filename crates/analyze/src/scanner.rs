//! The concurrency-attack pattern scanner.
//!
//! Where the race detector proves a *pair of accesses* can be reordered,
//! this pass recognises *attack shapes*: state machines over the API/fact
//! stream that flag potential web-concurrency attack signatures and map
//! each to the CVE family it belongs to. A signature firing does not mean
//! the attack succeeded — an intercepted `DeliverAbort` to a dead owner is
//! flagged even when a policy then denies it; the point is that the program
//! *attempted* the shape, which is what an auditor wants surfaced.

use jsk_browser::ids::BufferId;
use jsk_browser::trace::{ApiCall, Fact, Trace, TraceItem};
use jsk_sim::time::SimTime;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// The recognised attack signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum PatternKind {
    /// A tight cross-thread `postMessage` stream usable as an implicit
    /// clock (Listing 1's ticker; §II-A1).
    ImplicitClockTicker,
    /// `worker.terminate()` while the owner is mid-dispatch of that
    /// worker's message.
    MidDispatchTermination,
    /// An access window onto a transferred buffer whose backing store was
    /// freed by teardown.
    FreedTransferWindow,
    /// An abort signal aimed at a request whose owner thread already died.
    AbortAfterOwnerDeath,
    /// An `onmessage` assignment landing on a worker in its closing state.
    ClosingWorkerAssignment,
    /// An error message carrying cross-origin information toward user code.
    ErrorLeak,
    /// A network completion running against a navigated-away document
    /// generation.
    StaleDocCompletion,
    /// A `postMessage` aimed at a thread whose document has been freed.
    FreedDocDelivery,
    /// A document close racing still-queued worker-message callbacks.
    CallbackAfterCloseWindow,
    /// A cross-origin request leaving a worker (SOP bypass).
    WorkerSopBypass,
    /// A sandboxed context creating a worker that can inherit the parent
    /// origin.
    SandboxOriginInheritance,
    /// A durable IndexedDB open during a private-mode session.
    PrivateModePersistence,
    /// A tight **self**-post stream monitoring the shared event loop
    /// (Loophole, Vila & Köpf: flood your own context and timestamp the
    /// turnaround to fingerprint co-scheduled victims).
    SharedLoopContention,
    /// A dense stream of instruction-level-parallelism racing-counter reads
    /// (Hacky Racers, Xiao & Ainsworth: a stealthy timer that no clock API
    /// coarsening touches).
    IlpStealthyTicker,
}

impl PatternKind {
    /// The CVE family (or attack class) this signature maps to.
    #[must_use]
    pub fn cve_family(self) -> &'static [&'static str] {
        match self {
            PatternKind::ImplicitClockTicker => &["timing-channel (Listing 1)"],
            PatternKind::MidDispatchTermination => &["CVE-2014-1719"],
            PatternKind::FreedTransferWindow => &["CVE-2014-1488"],
            PatternKind::AbortAfterOwnerDeath => &["CVE-2018-5092"],
            PatternKind::ClosingWorkerAssignment => &["CVE-2013-5602"],
            PatternKind::ErrorLeak => &["CVE-2014-1487", "CVE-2015-7215"],
            PatternKind::StaleDocCompletion => &["CVE-2010-4576"],
            PatternKind::FreedDocDelivery => &["CVE-2014-3194"],
            PatternKind::CallbackAfterCloseWindow => &["CVE-2013-6646"],
            PatternKind::WorkerSopBypass => &["CVE-2013-1714"],
            PatternKind::SandboxOriginInheritance => &["CVE-2011-1190"],
            PatternKind::PrivateModePersistence => &["CVE-2017-7843"],
            PatternKind::SharedLoopContention => &["attack-loophole (Vila & K\u{f6}pf)"],
            PatternKind::IlpStealthyTicker => &["attack-hacky-racers (Xiao & Ainsworth)"],
        }
    }
}

/// One flagged signature.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PatternFinding {
    /// The signature.
    pub kind: PatternKind,
    /// When the deciding record was observed.
    pub at: SimTime,
    /// Human-readable evidence.
    pub detail: String,
}

impl PatternFinding {
    /// The CVE family of the signature.
    #[must_use]
    pub fn cve_family(&self) -> &'static [&'static str] {
        self.kind.cve_family()
    }
}

/// Scanner dedup key: `(evidence stream, id word, id word)`.
type SigKey = (u8, u64, u64);
/// Evidence shared by the API and fact streams (dedups across both).
const SIG_SHARED: u8 = 0;
/// API-side evidence.
const SIG_API: u8 = 1;
/// Fact-side evidence.
const SIG_FACT: u8 = 2;

/// A ticker channel needs this many sends to count as a clock
/// (`JSK_SCAN_TICKER_SENDS` overrides).
const TICKER_MIN_SENDS: usize = 20;
/// … with a median inter-send gap at or below this many milliseconds,
/// i.e. 50 Hz+ by default (`JSK_SCAN_TICKER_MS` overrides).
const TICKER_MAX_MEDIAN_MS: usize = 20;

/// The effective ticker send threshold: `JSK_SCAN_TICKER_SENDS`, default
/// `TICKER_MIN_SENDS` (20). Invalid values warn on stderr and fall back.
#[must_use]
pub fn ticker_min_sends() -> usize {
    jsk_sim::knob::env_knob("JSK_SCAN_TICKER_SENDS", TICKER_MIN_SENDS)
}

/// The effective maximum median inter-send gap in milliseconds:
/// `JSK_SCAN_TICKER_MS`, default `TICKER_MAX_MEDIAN_MS` (20 ms). Invalid values
/// warn on stderr and fall back.
#[must_use]
pub fn ticker_max_median_gap() -> SimTime {
    SimTime::from_millis(jsk_sim::knob::env_knob("JSK_SCAN_TICKER_MS", TICKER_MAX_MEDIAN_MS) as u64)
}

/// Scans a trace for attack signatures. Output is deterministic: sorted by
/// `(time, kind, detail)`, one finding per distinct piece of evidence.
#[must_use]
pub fn scan(trace: &Trace) -> Vec<PatternFinding> {
    let mut out: Vec<PatternFinding> = Vec::new();
    // Dedup key: (tag, id, id). The tag separates a kind's API-side and
    // fact-side evidence streams where they were distinct keys before
    // (0 = shared across both, 1 = API, 2 = fact); the two words carry the
    // record's ids — entity indexes and interned-string symbols. Ids and
    // symbols are injective to their display strings, so the partition is
    // exactly the one the old formatted-string keys produced, without
    // allocating a key per record.
    let mut seen: BTreeSet<(PatternKind, SigKey)> = BTreeSet::new();
    let mut freed_buffers: BTreeSet<BufferId> = BTreeSet::new();
    // (from, to) -> send instants, for the ticker pass.
    let mut channels: BTreeMap<(u64, u64), Vec<SimTime>> = BTreeMap::new();
    // thread -> ILP racing-counter read instants, for the stealthy-ticker pass.
    let mut ilp_reads: BTreeMap<u64, Vec<SimTime>> = BTreeMap::new();

    let push = |out: &mut Vec<PatternFinding>,
                seen: &mut BTreeSet<(PatternKind, SigKey)>,
                kind: PatternKind,
                at: SimTime,
                key: SigKey,
                detail: String| {
        if seen.insert((kind, key)) {
            out.push(PatternFinding { kind, at, detail });
        }
    };

    for entry in trace.entries() {
        let at = entry.time;
        match &entry.item {
            TraceItem::Api(call) => match call {
                ApiCall::PostMessage {
                    from,
                    to,
                    to_doc_freed,
                    ..
                } => {
                    channels
                        .entry((from.index(), to.index()))
                        .or_default()
                        .push(at);
                    if *to_doc_freed {
                        push(
                            &mut out,
                            &mut seen,
                            PatternKind::FreedDocDelivery,
                            at,
                            (SIG_API, from.index(), to.index()),
                            format!("postMessage from {from} to {to} whose document is freed"),
                        );
                    }
                }
                ApiCall::TerminateWorker {
                    worker,
                    during_dispatch: true,
                    ..
                } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::MidDispatchTermination,
                    at,
                    (SIG_SHARED, worker.index(), 0),
                    format!("terminate({worker}) while its message is mid-dispatch"),
                ),
                ApiCall::BufferAccess { buffer, freed, .. }
                    if (*freed || freed_buffers.contains(buffer)) =>
                {
                    push(
                        &mut out,
                        &mut seen,
                        PatternKind::FreedTransferWindow,
                        at,
                        (SIG_SHARED, buffer.index(), 0),
                        format!("access to {buffer} after its backing store was freed"),
                    );
                }
                ApiCall::DeliverAbort {
                    req,
                    owner_alive: false,
                    ..
                } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::AbortAfterOwnerDeath,
                    at,
                    (SIG_SHARED, req.index(), 0),
                    format!("abort delivery to {req} whose owner thread is dead"),
                ),
                ApiCall::SetOnMessage {
                    worker: Some(worker),
                    worker_closing: true,
                    ..
                } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::ClosingWorkerAssignment,
                    at,
                    (SIG_SHARED, worker.index(), 0),
                    format!("onmessage assigned to closing {worker}"),
                ),
                ApiCall::ErrorEvent {
                    thread,
                    message,
                    leaks_cross_origin: true,
                } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::ErrorLeak,
                    at,
                    (SIG_API, thread.index(), u64::from(message.raw())),
                    format!(
                        "error event on {thread} embeds cross-origin data: {:?}",
                        trace.resolve(*message)
                    ),
                ),
                ApiCall::CloseDocument {
                    thread,
                    pending_worker_messages,
                } if *pending_worker_messages > 0 => push(
                    &mut out,
                    &mut seen,
                    PatternKind::CallbackAfterCloseWindow,
                    at,
                    (SIG_API, thread.index(), 0),
                    format!(
                        "document close on {thread} with {pending_worker_messages} \
                         worker messages still queued"
                    ),
                ),
                ApiCall::XhrSend {
                    thread,
                    from_worker: true,
                    url,
                    cross_origin: true,
                } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::WorkerSopBypass,
                    at,
                    (SIG_API, thread.index(), u64::from(url.raw())),
                    format!(
                        "cross-origin XHR from worker {thread} to {:?}",
                        trace.resolve(*url)
                    ),
                ),
                ApiCall::CreateWorker {
                    worker,
                    sandboxed: true,
                    ..
                } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::SandboxOriginInheritance,
                    at,
                    (SIG_API, worker.index(), 0),
                    format!("{worker} created from a sandboxed context"),
                ),
                ApiCall::IdbOpen {
                    thread,
                    private_mode: true,
                    persist: true,
                } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::PrivateModePersistence,
                    at,
                    (SIG_API, thread.index(), 0),
                    format!("durable indexedDB.open on {thread} during private mode"),
                ),
                ApiCall::IlpCounterRead { thread, .. } => {
                    ilp_reads.entry(thread.index()).or_default().push(at);
                }
                _ => {}
            },
            TraceItem::Fact(fact) => match fact {
                Fact::TransferFreed { buffer } => {
                    freed_buffers.insert(*buffer);
                }
                Fact::FreedBufferAccess { buffer, thread } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::FreedTransferWindow,
                    at,
                    (SIG_SHARED, buffer.index(), 0),
                    format!("{thread} touched freed {buffer}"),
                ),
                Fact::NullDerefOnAssign { worker } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::ClosingWorkerAssignment,
                    at,
                    (SIG_SHARED, worker.index(), 0),
                    format!("null-pointer setter on closing {worker}"),
                ),
                Fact::ErrorMessageDelivered {
                    thread,
                    message,
                    leaked_cross_origin: true,
                    ..
                } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::ErrorLeak,
                    at,
                    (SIG_FACT, thread.index(), u64::from(message.raw())),
                    format!(
                        "cross-origin error text delivered on {thread}: {:?}",
                        trace.resolve(*message)
                    ),
                ),
                Fact::StaleDocCallback { thread } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::StaleDocCompletion,
                    at,
                    (SIG_SHARED, thread.index(), 0),
                    format!("network completion ran against a stale document on {thread}"),
                ),
                Fact::MessageToFreedDoc { from, to } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::FreedDocDelivery,
                    at,
                    (SIG_FACT, from.index(), to.index()),
                    format!("message from {from} delivered into freed document on {to}"),
                ),
                Fact::CallbackAfterClose { thread } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::CallbackAfterCloseWindow,
                    at,
                    (SIG_FACT, thread.index(), 0),
                    format!("worker-message callback ran on {thread} after document close"),
                ),
                Fact::CrossOriginWorkerRequest { thread, url } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::WorkerSopBypass,
                    at,
                    (SIG_FACT, thread.index(), u64::from(url.raw())),
                    format!(
                        "cross-origin request left worker {thread} for {:?}",
                        trace.resolve(*url)
                    ),
                ),
                Fact::WorkerStarted {
                    worker,
                    sandboxed_parent: true,
                    inherited_origin: true,
                    ..
                } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::SandboxOriginInheritance,
                    at,
                    (SIG_FACT, worker.index(), 0),
                    format!("{worker} inherited its sandboxed parent's origin"),
                ),
                Fact::IdbPersistedInPrivateMode { thread } => push(
                    &mut out,
                    &mut seen,
                    PatternKind::PrivateModePersistence,
                    at,
                    (SIG_FACT, thread.index(), 0),
                    format!("IndexedDB data persisted during private mode on {thread}"),
                ),
                _ => {}
            },
            _ => {}
        }
    }

    for ((from, to), sends) in &channels {
        let Some((count, median)) = dense_stream(sends) else {
            continue;
        };
        if from == to {
            // A context flooding *itself* is not a cross-thread clock; it is
            // the Loophole event-loop monitor, which leaks what else shares
            // the loop rather than how long the victim's tasks take.
            out.push(PatternFinding {
                kind: PatternKind::SharedLoopContention,
                at: sends[0],
                detail: format!(
                    "thread {from} floods its own event loop with {count} \
                     self-posts (median gap {median} ns) — a shared-loop \
                     contention monitor",
                ),
            });
        } else {
            out.push(PatternFinding {
                kind: PatternKind::ImplicitClockTicker,
                at: sends[0],
                detail: format!(
                    "thread {from} streams {count} posts to thread {to} \
                     (median gap {median} ns) — usable as an implicit clock",
                ),
            });
        }
    }

    for (thread, reads) in &ilp_reads {
        let Some((count, median)) = dense_stream(reads) else {
            continue;
        };
        out.push(PatternFinding {
            kind: PatternKind::IlpStealthyTicker,
            at: reads[0],
            detail: format!(
                "thread {thread} reads the ILP racing counter {count} times \
                 (median gap {median} ns) — a stealthy timer immune to \
                 clock coarsening",
            ),
        });
    }

    out.sort_by(|x, y| (x.at, x.kind, &x.detail).cmp(&(y.at, y.kind, &y.detail)));
    out
}

/// Whether an instant stream is dense enough to serve as a clock:
/// [`ticker_min_sends`] events with a median gap at or below
/// [`ticker_max_median_gap`]. Returns `(count, median gap in ns)`.
fn dense_stream(instants: &[SimTime]) -> Option<(usize, u64)> {
    if instants.len() < ticker_min_sends() {
        return None;
    }
    let mut gaps: Vec<u64> = instants
        .windows(2)
        .map(|w| w[1].as_nanos().saturating_sub(w[0].as_nanos()))
        .collect();
    gaps.sort_unstable();
    let median = gaps[gaps.len() / 2];
    (median <= ticker_max_median_gap().as_nanos()).then_some((instants.len(), median))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_browser::ids::ThreadId;

    #[test]
    fn steady_stream_is_a_ticker_slow_stream_is_not() {
        let mut fast = Trace::new();
        let mut slow = Trace::new();
        for i in 0..40u64 {
            let call = ApiCall::PostMessage {
                from: ThreadId::new(1),
                to: ThreadId::new(0),
                transfer_count: 0,
                to_doc_freed: false,
            };
            fast.api(SimTime::from_millis(i), call);
            slow.api(SimTime::from_millis(i * 100), call);
        }
        let fast_hits = scan(&fast);
        assert_eq!(fast_hits.len(), 1);
        assert_eq!(fast_hits[0].kind, PatternKind::ImplicitClockTicker);
        assert!(scan(&slow).is_empty());
    }

    #[test]
    fn short_bursts_are_not_tickers() {
        let mut t = Trace::new();
        for i in 0..(TICKER_MIN_SENDS as u64 - 1) {
            t.api(
                SimTime::from_millis(i),
                ApiCall::PostMessage {
                    from: ThreadId::new(1),
                    to: ThreadId::new(0),
                    transfer_count: 0,
                    to_doc_freed: false,
                },
            );
        }
        assert!(scan(&t).is_empty());
    }

    #[test]
    fn freed_buffer_window_needs_the_free_first() {
        use jsk_browser::ids::BufferId;
        let buffer = BufferId::new(4);
        let mut t = Trace::new();
        t.api(
            SimTime::from_millis(1),
            ApiCall::BufferAccess {
                thread: ThreadId::new(0),
                buffer,
                freed: false,
            },
        );
        assert!(scan(&t).is_empty());
        t.fact(SimTime::from_millis(2), Fact::TransferFreed { buffer });
        t.api(
            SimTime::from_millis(3),
            ApiCall::BufferAccess {
                thread: ThreadId::new(0),
                buffer,
                freed: false,
            },
        );
        let hits = scan(&t);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].kind, PatternKind::FreedTransferWindow);
        assert_eq!(hits[0].cve_family(), &["CVE-2014-1488"]);
    }

    #[test]
    fn repeated_evidence_reports_once() {
        let mut t = Trace::new();
        for i in 0..5 {
            t.api(
                SimTime::from_millis(i),
                ApiCall::IdbOpen {
                    thread: ThreadId::new(0),
                    private_mode: true,
                    persist: true,
                },
            );
        }
        assert_eq!(scan(&t).len(), 1);
    }

    #[test]
    fn every_kind_names_a_family() {
        for kind in [
            PatternKind::ImplicitClockTicker,
            PatternKind::MidDispatchTermination,
            PatternKind::FreedTransferWindow,
            PatternKind::AbortAfterOwnerDeath,
            PatternKind::ClosingWorkerAssignment,
            PatternKind::ErrorLeak,
            PatternKind::StaleDocCompletion,
            PatternKind::FreedDocDelivery,
            PatternKind::CallbackAfterCloseWindow,
            PatternKind::WorkerSopBypass,
            PatternKind::SandboxOriginInheritance,
            PatternKind::PrivateModePersistence,
            PatternKind::SharedLoopContention,
            PatternKind::IlpStealthyTicker,
        ] {
            assert!(!kind.cve_family().is_empty());
        }
    }

    #[test]
    fn self_post_flood_is_contention_not_a_ticker() {
        let mut t = Trace::new();
        for i in 0..40u64 {
            t.api(
                SimTime::from_millis(i),
                ApiCall::PostMessage {
                    from: ThreadId::new(0),
                    to: ThreadId::new(0),
                    transfer_count: 0,
                    to_doc_freed: false,
                },
            );
        }
        let hits = scan(&t);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].kind, PatternKind::SharedLoopContention);
        assert!(hits[0].cve_family()[0].contains("loophole"));
    }

    #[test]
    fn dense_ilp_reads_are_a_stealthy_ticker_sparse_are_not() {
        let mut dense = Trace::new();
        let mut sparse = Trace::new();
        for i in 0..30u64 {
            let call = ApiCall::IlpCounterRead {
                thread: ThreadId::new(0),
                chains: 4,
            };
            dense.api(SimTime::from_millis(i * 2), call);
            sparse.api(SimTime::from_millis(i * 100), call);
        }
        let hits = scan(&dense);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].kind, PatternKind::IlpStealthyTicker);
        assert!(hits[0].cve_family()[0].contains("hacky-racers"));
        assert!(scan(&sparse).is_empty());
    }
}
