//! The bounded policy prover: exhaustive interleaving enumeration over a
//! policy × attack-pattern product machine.
//!
//! Where the corpus and the fuzzer *sample* schedules, the prover
//! enumerates them: for one [`PolicySpec`] and one
//! [`AttackModel`] it walks
//! every op interleaving up to a depth bound through the compiled policy
//! engine and either
//!
//! * **proves** "the policy defeats the pattern for all schedules ≤ N"
//!   (no reachable state fires the attack), or
//! * **refutes** it with a *minimal* counterexample — the shortest op
//!   sequence that fires — plus a concrete `jsk_workloads` schedule
//!   realizing the attack so the claim is replayable and fuzzable.
//!
//! The state space is the model's environment bit-vector, so BFS with a
//! visited set terminates long before the depth bound in practice; the
//! bound is what makes the claim precise ("≤ N", not "ever"). The default
//! depth, [`DEFAULT_PROVE_DEPTH`], is twice the largest model alphabet —
//! every op can appear, be blocked, and be retried within the window.
//!
//! Mediation semantics in the bounded window: `Deny` and `DropQuietly`
//! block the op outright; `DeferTermination` means the effect does *not*
//! happen within the window (the kernel's watchdog separately bounds the
//! deferral — see the linter's `DeferLivelock` check); `SanitizeError`,
//! `OpaqueOrigin` and `PolyfillWorker` let the op proceed defanged;
//! `CancelDocBound` proceeds but cancels doc-bound work
//! (`cancel_clears`). A scheduling policy additionally defuses `timing`
//! ops: they still run, but their arrival order is the predicted one, so
//! the implicit clock they would form has no resolution. The scanner's
//! ≥ 20-sends ticker threshold is a *detection* knob, not semantics: one
//! unquantized tick is modeled as a fire.

use jsk_browser::mediator::ApiOutcome;
use jsk_core::policy::automata::{attack_models, AttackModel, AttackOp};
use jsk_core::policy::{cve, deterministic_policy, families, PolicyEngine, PolicySpec};
use jsk_sim::knob::env_knob;
use jsk_workloads::schedule::{seed_schedules, Schedule};
use serde::Serialize;
use std::collections::{BTreeSet, VecDeque};

/// Default enumeration depth: twice the largest model alphabet (3 ops),
/// so every corpus op can occur, be mediated away, and recur within the
/// window. Override with `JSK_PROVE_DEPTH`.
pub const DEFAULT_PROVE_DEPTH: usize = 6;

/// Reads `JSK_PROVE_DEPTH` (default [`DEFAULT_PROVE_DEPTH`]); invalid
/// values warn on stderr and fall back.
#[must_use]
pub fn prove_depth() -> usize {
    env_knob("JSK_PROVE_DEPTH", DEFAULT_PROVE_DEPTH)
}

/// The prover's verdict on one policy × pattern cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum Verdict {
    /// No schedule of length ≤ depth fires the attack.
    Proved,
    /// A firing schedule exists; the row carries the minimal one.
    Refuted,
}

/// One row of the prove matrix.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProofRow {
    /// Policy under test.
    pub policy: String,
    /// Scanner pattern name of the attack model.
    pub pattern: String,
    /// CVE / attack-family label.
    pub cve: String,
    /// Proved or refuted.
    pub verdict: Verdict,
    /// Depth bound the verdict holds for.
    pub depth: usize,
    /// Distinct abstract states expanded by the search.
    pub states_explored: usize,
    /// Minimal firing op sequence (refuted rows only).
    pub counterexample: Option<Vec<String>>,
    /// A concrete corpus schedule realizing the counterexample, directly
    /// runnable by `run_schedule` and usable as a fuzz seed.
    pub schedule: Option<Schedule>,
}

/// The full prove matrix: every designated policy row at one depth.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProveReport {
    /// Depth bound shared by all rows.
    pub depth: usize,
    /// Rows with [`Verdict::Proved`].
    pub proved: usize,
    /// Rows with [`Verdict::Refuted`].
    pub refuted: usize,
    /// One row per (policy, pattern) pair, model order.
    pub rows: Vec<ProofRow>,
}

impl ProveReport {
    /// Deterministic pretty JSON (struct field order, model-ordered rows;
    /// nothing depends on `JSK_JOBS`).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serializable")
    }

    /// One-line summary for logs.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "depth {}: {} proved, {} refuted of {} rows",
            self.depth,
            self.proved,
            self.refuted,
            self.rows.len()
        )
    }
}

/// What happened when one op was tried in one environment.
enum StepResult {
    /// Preconditions unmet — not a transition.
    Inapplicable,
    /// Mediation blocked it (or postponed it past the window).
    Blocked,
    /// It ran; new environment, and whether the attack fired.
    Ran { next: u16, fired: bool },
}

fn step(
    engine: &PolicyEngine,
    scheduled: bool,
    model: &AttackModel,
    op: &AttackOp,
    e: u16,
) -> StepResult {
    if e & op.pre_set != op.pre_set || e & op.pre_clear != 0 {
        return StepResult::Inapplicable;
    }
    let outcome = match op.call {
        None => ApiOutcome::Allow,
        Some(sel) => engine.decide_compiled(sel, &model.facts_for(op, e)).0,
    };
    let mut defanged = false;
    let mut cancel = false;
    match outcome {
        ApiOutcome::Allow => {}
        ApiOutcome::Deny { .. } | ApiOutcome::DropQuietly | ApiOutcome::DeferTermination => {
            return StepResult::Blocked;
        }
        ApiOutcome::SanitizeError { .. }
        | ApiOutcome::OpaqueOrigin
        | ApiOutcome::PolyfillWorker => {
            defanged = true;
        }
        ApiOutcome::CancelDocBound => cancel = true,
    }
    if op.timing && scheduled {
        // Deterministic dispatch quantizes event-loop arrival times: the
        // op runs, but the timing observation it exists for is gone.
        defanged = true;
    }
    let fired = !defanged && op.fires.is_some_and(|mask| e & mask == mask);
    let mut next = (e | op.sets) & !op.clears;
    if cancel {
        next &= !op.cancel_clears;
    }
    StepResult::Ran { next, fired }
}

/// Proves or refutes one policy against one attack model by exhaustive
/// BFS over op schedules of length ≤ `depth`. BFS order makes a refuting
/// counterexample minimal; the visited set makes the search terminate on
/// the abstract state space rather than the schedule space.
#[must_use]
pub fn prove_policy(spec: &PolicySpec, model: &AttackModel, depth: usize) -> ProofRow {
    let engine = PolicyEngine::new(vec![spec.clone()]);
    let scheduled = spec.scheduling.is_some();
    let mut visited: BTreeSet<u16> = BTreeSet::new();
    let mut queue: VecDeque<(u16, Vec<String>)> = VecDeque::new();
    let mut states_explored = 0usize;
    let mut counterexample: Option<Vec<String>> = None;
    queue.push_back((model.init_env, Vec::new()));
    visited.insert(model.init_env);
    'search: while let Some((e, path)) = queue.pop_front() {
        states_explored += 1;
        if path.len() >= depth {
            continue;
        }
        for op in &model.ops {
            match step(&engine, scheduled, model, op, e) {
                StepResult::Inapplicable | StepResult::Blocked => {}
                StepResult::Ran { next, fired } => {
                    let mut ce = path.clone();
                    ce.push(op.name.to_owned());
                    if fired {
                        counterexample = Some(ce);
                        break 'search;
                    }
                    if visited.insert(next) {
                        queue.push_back((next, ce));
                    }
                }
            }
        }
    }
    let verdict = if counterexample.is_some() {
        Verdict::Refuted
    } else {
        Verdict::Proved
    };
    let schedule = counterexample
        .as_ref()
        .and_then(|_| realize(model, &spec.name));
    ProofRow {
        policy: spec.name.clone(),
        pattern: model.pattern.to_owned(),
        cve: model.cve.to_owned(),
        verdict,
        depth,
        states_explored,
        counterexample,
        schedule,
    }
}

/// The concrete corpus schedule that realizes a model's counterexample:
/// the seed program written for exactly this attack shape, renamed to
/// carry the provenance of the refutation.
fn realize(model: &AttackModel, policy: &str) -> Option<Schedule> {
    let seed_name = match model.pattern {
        "AbortAfterOwnerDeath" => "CVE-2018-5092",
        "PrivateModePersistence" => "CVE-2017-7843",
        "ErrorLeak" => "CVE-2015-7215",
        "FreedDocDelivery" => "CVE-2014-3194",
        "MidDispatchTermination" => "CVE-2014-1719",
        "FreedTransferWindow" => "CVE-2014-1488",
        "CallbackAfterCloseWindow" => "CVE-2013-6646",
        "ClosingWorkerAssignment" => "CVE-2013-5602",
        "WorkerSopBypass" => "CVE-2013-1714",
        "SandboxOriginInheritance" => "CVE-2011-1190",
        "StaleDocCompletion" => "CVE-2010-4576",
        "ImplicitClockTicker" => "listing-1",
        "SharedLoopContention" => "attack-loophole",
        "IlpStealthyTicker" => "attack-hacky-racers",
        _ => return None,
    };
    let mut s = seed_schedules().into_iter().find(|s| s.name == seed_name)?;
    s.name = format!("{seed_name}~prove:{policy}");
    Some(s)
}

/// The designated policy with the given name (Table-1 CVE policies, the
/// deterministic scheduling policy, or an attack-family policy).
#[must_use]
pub fn designated_policy(name: &str) -> Option<PolicySpec> {
    cve::all_cve_policies()
        .into_iter()
        .chain(std::iter::once(deterministic_policy()))
        .chain(families::all_family_policies())
        .find(|p| p.name == name)
}

/// Runs the whole prove matrix at one depth: every model × every policy
/// designated to defeat it, in model order. Pure and serial — the report
/// is byte-identical whatever `JSK_JOBS` is.
#[must_use]
pub fn prove_all(depth: usize) -> ProveReport {
    let mut rows = Vec::new();
    for model in attack_models() {
        for name in model.defeated_by {
            let spec = designated_policy(name)
                .unwrap_or_else(|| panic!("designated policy {name} must exist"));
            rows.push(prove_policy(&spec, &model, depth));
        }
    }
    let proved = rows.iter().filter(|r| r.verdict == Verdict::Proved).count();
    ProveReport {
        depth,
        proved,
        refuted: rows.len() - proved,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_core::policy::model_for;

    #[test]
    fn the_full_matrix_is_proved_at_default_depth() {
        let report = prove_all(DEFAULT_PROVE_DEPTH);
        assert_eq!(report.rows.len(), 15);
        assert_eq!(report.refuted, 0, "{}", report.summary());
        for row in &report.rows {
            assert_eq!(
                row.verdict,
                Verdict::Proved,
                "{} vs {}",
                row.policy,
                row.pattern
            );
            assert!(row.counterexample.is_none() && row.schedule.is_none());
            assert!(row.states_explored > 0);
        }
    }

    #[test]
    fn an_empty_policy_is_refuted_with_a_minimal_counterexample() {
        let empty = PolicySpec {
            name: "policy_empty".into(),
            description: "no rules at all".into(),
            scheduling: None,
            rules: Vec::new(),
        };
        let model = model_for("AbortAfterOwnerDeath").unwrap();
        let row = prove_policy(&empty, &model, DEFAULT_PROVE_DEPTH);
        assert_eq!(row.verdict, Verdict::Refuted);
        assert_eq!(
            row.counterexample.as_deref(),
            Some(
                &[
                    "worker-starts-fetch".to_owned(),
                    "terminate-worker".to_owned(),
                    "deliver-abort".to_owned(),
                ][..]
            ),
            "BFS must return the minimal firing sequence"
        );
        let schedule = row.schedule.expect("refutations carry a realization");
        assert_eq!(schedule.name, "CVE-2018-5092~prove:policy_empty");
        assert!(!schedule.events.is_empty());
    }

    #[test]
    fn scheduling_defuses_event_loop_clocks_but_not_ilp_counters() {
        let det = deterministic_policy();
        let ticker = model_for("ImplicitClockTicker").unwrap();
        assert_eq!(
            prove_policy(&det, &ticker, DEFAULT_PROVE_DEPTH).verdict,
            Verdict::Proved,
            "deterministic dispatch quantizes the event-loop clock"
        );
        let ilp = model_for("IlpStealthyTicker").unwrap();
        assert_eq!(
            prove_policy(&det, &ilp, DEFAULT_PROVE_DEPTH).verdict,
            Verdict::Refuted,
            "ILP counters never pass through the event loop: scheduling \
             alone cannot defuse them — exactly Hacky Racers' point"
        );
    }

    #[test]
    fn depth_zero_proves_everything_vacuously() {
        let empty = PolicySpec {
            name: "policy_empty".into(),
            description: String::new(),
            scheduling: None,
            rules: Vec::new(),
        };
        let model = model_for("WorkerSopBypass").unwrap();
        assert_eq!(prove_policy(&empty, &model, 0).verdict, Verdict::Proved);
        assert_eq!(prove_policy(&empty, &model, 1).verdict, Verdict::Refuted);
    }

    #[test]
    fn prove_depth_reads_the_knob_with_fallback() {
        std::env::set_var("JSK_PROVE_DEPTH", "9");
        assert_eq!(prove_depth(), 9);
        std::env::set_var("JSK_PROVE_DEPTH", "shallow");
        assert_eq!(prove_depth(), DEFAULT_PROVE_DEPTH);
        std::env::remove_var("JSK_PROVE_DEPTH");
        assert_eq!(prove_depth(), DEFAULT_PROVE_DEPTH);
    }

    #[test]
    fn report_json_is_stable_and_carries_the_matrix() {
        let a = prove_all(DEFAULT_PROVE_DEPTH).to_json();
        let b = prove_all(DEFAULT_PROVE_DEPTH).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"verdict\": \"proved\""));
        assert!(a.contains("policy_cve-2018-5092"));
    }
}
