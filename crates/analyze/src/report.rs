//! The combined analysis report: races + attack patterns, JSON-stable.

use crate::hb::{detect_races, HbGraph, RaceFinding};
use crate::scanner::{scan, PatternFinding};
use jsk_browser::trace::Trace;
use serde::Serialize;

/// Everything the analyzer found in one trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AnalysisReport {
    /// Task nodes in the happens-before graph.
    pub nodes: usize,
    /// Shared-state accesses examined.
    pub accesses: usize,
    /// Detected races (conflicting unordered access pairs).
    pub races: Vec<RaceFinding>,
    /// Flagged attack signatures.
    pub patterns: Vec<PatternFinding>,
}

impl AnalysisReport {
    /// Race-free. Patterns may still be present — they flag *attempted*
    /// shapes, which a correct kernel defeats without muting the trace.
    #[must_use]
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty()
    }

    /// Whether anything at all was flagged.
    #[must_use]
    pub fn has_findings(&self) -> bool {
        !self.races.is_empty() || !self.patterns.is_empty()
    }

    /// Deterministic pretty JSON (field order fixed by the struct, vectors
    /// pre-sorted by the analyses).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serializable")
    }

    /// One-line summary for logs.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} nodes, {} accesses: {} race(s), {} pattern(s)",
            self.nodes,
            self.accesses,
            self.races.len(),
            self.patterns.len()
        )
    }
}

/// Runs the full analysis over one trace: builds the happens-before graph,
/// detects races, and scans for attack signatures.
#[must_use]
pub fn analyze(trace: &Trace) -> AnalysisReport {
    let graph = HbGraph::from_trace(trace);
    AnalysisReport {
        nodes: graph.node_count(),
        accesses: trace.accesses().count(),
        races: detect_races(trace, &graph),
        patterns: scan(trace),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_clean_and_serializes() {
        let report = analyze(&Trace::new());
        assert!(report.is_race_free());
        assert!(!report.has_findings());
        assert_eq!(
            report.summary(),
            "0 nodes, 0 accesses: 0 race(s), 0 pattern(s)"
        );
        let json = report.to_json();
        assert!(json.contains("\"races\": []"));
    }
}
