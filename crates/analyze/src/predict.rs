//! Predictive race detection: soundly weakening the observed order.
//!
//! The happens-before detector certifies only the *observed* schedule: a
//! pair ordered in this trace might still race in another feasible one.
//! Under the kernel's deterministic dispatcher the gap is systematic —
//! the dispatcher announces a `DispatchChain` edge between every two
//! tasks it releases consecutively on a thread, so the kernel trace is
//! (by design) almost totally ordered and the observed-order detector
//! reports nothing.
//!
//! Those chain edges are *scheduler choices*, not semantic dependencies:
//! nothing in the program forced that order, the dispatcher just picked
//! it (and in a raw browser the OS scheduler picks differently). The
//! predictive pass therefore rebuilds the graph **without**
//! `DispatchChain` edges — keeping fork edges (task provenance: a task
//! cannot run before the task that registered it) and `KernelComm` edges
//! (real cross-thread message synchronization) — and reports every
//! conflicting pair only the dropped edges had ordered. Each prediction
//! is a claim: *some feasible schedule races this pair*. The claim ships
//! with its proof — a concrete witness schedule that, replayed through
//! `run_schedule` against the raw (legacy) browser, exhibits a race on
//! the same target, ready to be fed back to the fuzzer as a seed.
//!
//! Soundness of the weakening: dropping edges can only grow the set of
//! unordered pairs, and the two retained edge sources are exactly the
//! orderings every feasible schedule shares, so no prediction claims a
//! reordering that program semantics forbid. The raw replay closes the
//! remaining gap between "HB-reorderable" and "actually schedulable":
//! only predictions a real run confirms are marked `confirmed`.

use crate::hb::{detect_races, HbGraph, RaceFinding};
use crate::report::analyze;
use jsk_browser::mediator::LegacyMediator;
use jsk_browser::trace::{AccessTarget, EdgeKind, Trace};
use jsk_core::{JsKernel, KernelConfig};
use jsk_workloads::schedule::{run_schedule, seed_schedules, Schedule};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Browser seed for kernel runs and witness replays — the same seed the
/// fuzzer drives evaluations with, so predictions and fuzz coverage talk
/// about the same executions.
pub const PREDICT_SEED: u64 = 0xF0CC;

/// The race-target class (`Sab`, `DocDom`, …): the `Debug` variant name
/// without ids, stable across raw/kernel runs whose resource ids differ.
fn target_class(target: &AccessTarget) -> String {
    let debug = format!("{target:?}");
    debug
        .split(['{', '(', ' '])
        .next()
        .unwrap_or(&debug)
        .to_owned()
}

fn race_key(r: &RaceFinding) -> (String, String, String) {
    (
        format!("{:?}", r.target),
        r.first.what.clone(),
        r.second.what.clone(),
    )
}

/// The trace-level predictive pass: conflicting pairs unordered by the
/// weakened graph (no `DispatchChain` edges) that the full observed-order
/// graph had ordered. Sorted like [`detect_races`]; pure in the trace.
#[must_use]
pub fn predict(trace: &Trace) -> Vec<RaceFinding> {
    let observed = HbGraph::from_trace(trace);
    let weakened = HbGraph::from_trace_filtered(trace, |k| k != EdgeKind::DispatchChain);
    let seen: BTreeSet<_> = detect_races(trace, &observed)
        .iter()
        .map(race_key)
        .collect();
    detect_races(trace, &weakened)
        .into_iter()
        .filter(|r| !seen.contains(&race_key(r)))
        .collect()
}

/// One predicted race plus its evidence.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PredictedRace {
    /// The pair the weakened order leaves unordered.
    pub race: RaceFinding,
    /// A schedule whose raw replay should exhibit the race — corpus-entry
    /// JSON shape, runnable by `run_schedule`, usable as a fuzz seed.
    pub witness: Schedule,
    /// Whether the witness replay actually raced on the same target
    /// class. Unconfirmed predictions are HB-reorderable but no tried
    /// perturbation realized them.
    pub confirmed: bool,
}

/// The predictive report for one schedule run under the hardened kernel.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PredictReport {
    /// The analyzed schedule's name.
    pub schedule: String,
    /// Task nodes in the kernel trace.
    pub nodes: usize,
    /// Races the observed-order detector reports on the kernel trace
    /// (0 when the kernel holds — which is exactly why prediction is
    /// needed to see past the dispatcher's order).
    pub observed_races: usize,
    /// Predicted races with witnesses, detector order.
    pub predicted: Vec<PredictedRace>,
}

impl PredictReport {
    /// Deterministic pretty JSON (struct field order, detector-ordered
    /// findings; nothing depends on `JSK_JOBS`).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serializable")
    }
}

/// Witness candidates: the base schedule itself (the raw scheduler is
/// already free to pick either order), then small deterministic delay
/// perturbations nudging each event across teardown windows.
fn candidates(base: &Schedule) -> Vec<Schedule> {
    let mut out = vec![base.clone()];
    for i in 0..base.events.len() {
        for shift in [16i64, -16, 48] {
            let mut s = base.clone();
            let at = &mut s.events[i].at_ms;
            *at = at
                .saturating_add_signed(shift as i32)
                .min(s.run_ms.saturating_sub(1));
            out.push(s);
            if out.len() >= 10 {
                return out;
            }
        }
    }
    out
}

fn replay_races_on(schedule: &Schedule, class: &str) -> bool {
    let b = run_schedule(schedule, Box::new(LegacyMediator), PREDICT_SEED);
    analyze(b.trace())
        .races
        .iter()
        .any(|r| target_class(&r.target) == class)
}

/// Runs `schedule` under the hardened kernel, predicts races past the
/// dispatcher's order, and attaches a raw-replay witness to each.
/// Witness search is deterministic: candidates are tried in a fixed
/// order and the first confirming one wins; predictions sharing a target
/// class share the search.
#[must_use]
pub fn predict_schedule(schedule: &Schedule) -> PredictReport {
    let browser = run_schedule(
        schedule,
        Box::new(JsKernel::new(KernelConfig::hardened())),
        PREDICT_SEED,
    );
    let trace = browser.trace();
    let graph = HbGraph::from_trace(trace);
    let observed_races = detect_races(trace, &graph).len();
    let mut by_class: BTreeMap<String, (Schedule, bool)> = BTreeMap::new();
    let predicted = predict(trace)
        .into_iter()
        .map(|race| {
            let class = target_class(&race.target);
            let (witness, confirmed) = by_class
                .entry(class.clone())
                .or_insert_with(|| {
                    let mut cands = candidates(schedule);
                    for (k, cand) in cands.iter_mut().enumerate() {
                        cand.name = format!("{}~predict:{class}:w{k}", schedule.name);
                    }
                    cands
                        .iter()
                        .find(|c| replay_races_on(c, &class))
                        .map_or_else(|| (cands[0].clone(), false), |c| (c.clone(), true))
                })
                .clone();
            PredictedRace {
                race,
                witness,
                confirmed,
            }
        })
        .collect();
    PredictReport {
        schedule: schedule.name.clone(),
        nodes: graph.node_count(),
        observed_races,
        predicted,
    }
}

/// The predictive pass over the whole seed corpus, in corpus order. The
/// confirmed witnesses are the fuzzer's predictive seeds.
#[must_use]
pub fn predict_corpus() -> Vec<PredictReport> {
    seed_schedules().iter().map(predict_schedule).collect()
}

/// Every confirmed witness schedule from a set of predictive reports,
/// deduplicated by name, report order. These replay to raw races by
/// construction, making them first-class fuzz seeds.
#[must_use]
pub fn confirmed_witnesses(reports: &[PredictReport]) -> Vec<Schedule> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for report in reports {
        for p in &report.predicted {
            if p.confirmed && seen.insert(p.witness.name.clone()) {
                out.push(p.witness.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_browser::ids::ThreadId;
    use jsk_browser::trace::{AccessKind, AccessRecord, HbEdge, NodeRecord};
    use jsk_sim::time::SimTime;

    fn node(t: &mut Trace, id: u64, thread: u64, forked_from: Option<u64>, label: &str) {
        let label = t.intern(label);
        t.node(
            SimTime::from_millis(id),
            NodeRecord {
                node: id,
                thread: ThreadId::new(thread),
                forked_from,
                label,
            },
        );
    }

    fn write(t: &mut Trace, node: u64, thread: u64, idx: u64) {
        let what = t.intern(&format!("w{node}"));
        t.access(
            SimTime::from_millis(node),
            AccessRecord {
                node,
                thread: ThreadId::new(thread),
                target: AccessTarget::Sab {
                    sab: jsk_browser::ids::SabId::new(0),
                    idx,
                },
                kind: AccessKind::Write,
                what,
            },
        );
    }

    /// The canonical predictive situation: a conflicting sibling pair the
    /// dispatcher chained. Observed: ordered. Predicted: the race.
    #[test]
    fn chain_only_ordering_is_predicted_as_a_race() {
        let mut t = Trace::new();
        node(&mut t, 0, 0, None, "boot");
        node(&mut t, 1, 0, Some(0), "a");
        node(&mut t, 2, 0, Some(0), "b");
        write(&mut t, 1, 0, 3);
        write(&mut t, 2, 0, 3);
        t.edge(
            SimTime::from_millis(2),
            HbEdge {
                from: 1,
                to: 2,
                kind: EdgeKind::DispatchChain,
            },
        );
        let observed = detect_races(&t, &HbGraph::from_trace(&t));
        assert!(observed.is_empty(), "the chain hides the pair");
        let predicted = predict(&t);
        assert_eq!(predicted.len(), 1);
        assert_eq!((predicted[0].first.node, predicted[0].second.node), (1, 2));
    }

    /// KernelComm is real synchronization; dropping chains must not drop
    /// it.
    #[test]
    fn kernel_comm_ordering_is_not_predicted_away() {
        let mut t = Trace::new();
        node(&mut t, 0, 0, None, "boot");
        node(&mut t, 1, 0, Some(0), "sender");
        node(&mut t, 2, 1, Some(0), "receiver");
        write(&mut t, 1, 0, 5);
        write(&mut t, 2, 1, 5);
        t.edge(
            SimTime::from_millis(2),
            HbEdge {
                from: 1,
                to: 2,
                kind: EdgeKind::KernelComm,
            },
        );
        assert!(predict(&t).is_empty());
    }

    #[test]
    fn fork_ordered_pairs_are_never_predicted() {
        let mut t = Trace::new();
        node(&mut t, 0, 0, None, "boot");
        node(&mut t, 1, 0, Some(0), "child");
        write(&mut t, 0, 0, 0);
        write(&mut t, 1, 0, 0);
        assert!(predict(&t).is_empty(), "provenance is semantic order");
    }

    #[test]
    fn target_classes_strip_ids() {
        let sab = AccessTarget::Sab {
            sab: jsk_browser::ids::SabId::new(7),
            idx: 3,
        };
        assert_eq!(target_class(&sab), "Sab");
    }
}
