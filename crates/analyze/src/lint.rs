//! The policy linter.
//!
//! Static checks over [`PolicySpec`]s, catching rules that cannot do what
//! their author intended before the policy ever reaches a kernel:
//!
//! * **shadowed rules** — the engine takes the first matching non-allow
//!   rule, so a rule preceded by a more general one on the same selector is
//!   dead code;
//! * **unmatchable conditions** — a condition constraining a fact the
//!   kernel's classifier never populates for that selector can never fire
//!   (the rule references an event shape the kernel never emits);
//! * **no-op allows** — the engine skips `allow` rules entirely, so they
//!   have no effect in any position;
//! * **incomplete CVE coverage** — a `policy_cve-*` policy whose rules
//!   never intercept the racy pair of its CVE cannot totally order it;
//! * **defer livelock** — an *unconditional* `defer_termination` re-defers
//!   every teardown forever; without the kernel watchdog to write off the
//!   held obligations this livelocks the event queue.

use jsk_core::policy::spec::{ApiSelector, Condition, PolicyAction, PolicyRule, PolicySpec};
use jsk_sim::time::SimDuration;
use serde::Serialize;
use std::mem::discriminant;

/// Lint severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum LintLevel {
    /// Suspicious but possibly intentional (e.g. redundancy across
    /// independently deployable policies).
    Warning,
    /// The rule cannot work as written.
    Error,
}

/// What the linter found.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum LintKind {
    /// An earlier rule on the same selector matches a superset of this
    /// rule's condition and takes a *different* action — this rule is dead.
    ShadowedRule {
        /// The rule that always wins.
        winner: String,
    },
    /// As above but the earlier rule (in another policy) takes the same
    /// kind of action — benign redundancy between standalone policies.
    RedundantAcrossPolicies {
        /// The rule that always wins.
        winner: String,
    },
    /// The condition constrains a fact the classifier never populates for
    /// this selector, with a value the default can never take.
    UnmatchableCondition {
        /// The offending condition field.
        field: String,
    },
    /// The condition constrains an unpopulated fact with its default value
    /// — always true, so the constraint does nothing.
    VacuousCondition {
        /// The offending condition field.
        field: String,
    },
    /// `allow` rules are skipped by the engine; this rule has no effect.
    NoOpAllow,
    /// A per-CVE policy without a single interception rule on its CVE's
    /// racy pair.
    IncompleteCoverage {
        /// The CVE left uncovered.
        cve: String,
        /// The selectors that would cover it.
        expected: Vec<ApiSelector>,
    },
    /// An unconditional `defer_termination` defers every teardown again and
    /// again; only the watchdog can break the cycle.
    DeferLivelock,
    /// The policy claims coverage of an attack pattern, but the bounded
    /// prover found a schedule in which the pattern fires anyway.
    ProvedCounterexample {
        /// The pattern that fires.
        pattern: String,
        /// The minimal firing op sequence, prover depth bound included
        /// in the message.
        counterexample: Vec<String>,
    },
}

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PolicyLint {
    /// The policy the finding is in.
    pub policy: String,
    /// The rule, when the finding is rule-level.
    pub rule: Option<String>,
    /// Severity.
    pub level: LintLevel,
    /// What was found.
    pub kind: LintKind,
    /// Human-readable explanation.
    pub message: String,
}

/// All condition fields by name, for reflection-style iteration.
fn condition_fields(c: &Condition) -> [(&'static str, Option<bool>); 15] {
    [
        ("from_worker", c.from_worker),
        ("cross_origin", c.cross_origin),
        ("sandboxed", c.sandboxed),
        ("worker_closing", c.worker_closing),
        ("assigns_worker_handler", c.assigns_worker_handler),
        ("during_dispatch", c.during_dispatch),
        ("has_live_transfers", c.has_live_transfers),
        ("has_pending_fetches", c.has_pending_fetches),
        ("owner_alive", c.owner_alive),
        ("to_doc_freed", c.to_doc_freed),
        ("private_mode", c.private_mode),
        ("persist", c.persist),
        ("leaks_cross_origin", c.leaks_cross_origin),
        ("has_pending_worker_messages", c.has_pending_worker_messages),
        ("to_self", c.to_self),
    ]
}

/// The condition fields `jsk_core::policy::engine::classify` actually
/// populates per selector. Everything else keeps its default (`owner_alive`
/// is `true`, all other facts `false`).
fn populated_fields(sel: ApiSelector) -> &'static [&'static str] {
    match sel {
        ApiSelector::CreateWorker => &["sandboxed"],
        ApiSelector::TerminateWorker => &[
            "during_dispatch",
            "has_live_transfers",
            "has_pending_fetches",
        ],
        ApiSelector::PostMessage => &["from_worker", "to_doc_freed", "to_self"],
        ApiSelector::SetOnMessage => &["assigns_worker_handler", "worker_closing"],
        ApiSelector::Fetch => &["from_worker"],
        ApiSelector::DeliverAbort => &["owner_alive", "from_worker"],
        ApiSelector::XhrSend | ApiSelector::ImportScripts => &["from_worker", "cross_origin"],
        ApiSelector::ErrorEvent => &["leaks_cross_origin"],
        ApiSelector::IdbOpen => &["private_mode", "persist"],
        ApiSelector::Navigate | ApiSelector::BufferAccess | ApiSelector::IlpCounterRead => &[],
        ApiSelector::CloseDocument => &["has_pending_worker_messages"],
    }
}

/// The default a fact keeps when the classifier does not populate it.
fn default_fact(field: &str) -> bool {
    field == "owner_alive"
}

/// The selector(s) that intercept each CVE's racy pair — the calls a
/// per-CVE policy must order (or block) to close its race. Keyed by the
/// `NNNN-NNNN` tail of the policy name.
fn racy_pair_selectors(cve_tail: &str) -> Option<&'static [ApiSelector]> {
    Some(match cve_tail {
        "2018-5092" => &[ApiSelector::TerminateWorker, ApiSelector::DeliverAbort],
        "2017-7843" => &[ApiSelector::IdbOpen],
        "2015-7215" | "2014-1487" => &[ApiSelector::ErrorEvent],
        "2014-3194" => &[ApiSelector::PostMessage, ApiSelector::Navigate],
        "2014-1719" | "2014-1488" => &[ApiSelector::TerminateWorker],
        "2013-6646" => &[ApiSelector::CloseDocument, ApiSelector::PostMessage],
        "2013-5602" => &[ApiSelector::SetOnMessage],
        "2013-1714" => &[ApiSelector::XhrSend],
        "2011-1190" => &[ApiSelector::CreateWorker],
        "2010-4576" => &[ApiSelector::Navigate],
        _ => return None,
    })
}

/// The selector(s) a `policy_attack-*` family policy must intercept to
/// defeat its attack shape — the family analogue of
/// [`racy_pair_selectors`]. Keyed by the tail after `policy_attack-`.
fn family_selectors(family_tail: &str) -> Option<&'static [ApiSelector]> {
    Some(match family_tail {
        "loophole" => &[ApiSelector::PostMessage],
        "hacky-racers" => &[ApiSelector::IlpCounterRead],
        _ => return None,
    })
}

/// Whether any call matching `specific` also matches `general` — i.e.
/// `general`'s constraints are a subset of `specific`'s.
fn condition_implies(general: &Condition, specific: &Condition) -> bool {
    condition_fields(general)
        .iter()
        .zip(condition_fields(specific).iter())
        .all(|((_, g), (_, s))| g.is_none() || g == s)
}

fn is_unconditional_defer(rule: &PolicyRule) -> bool {
    rule.action == PolicyAction::DeferTermination && rule.when == Condition::default()
}

fn rule_lints(policy: &str, rule: &PolicyRule, out: &mut Vec<PolicyLint>) {
    let populated = populated_fields(rule.on);
    for (field, constraint) in condition_fields(&rule.when) {
        let Some(value) = constraint else { continue };
        if populated.contains(&field) {
            continue;
        }
        let (level, kind, message) = if value == default_fact(field) {
            (
                LintLevel::Warning,
                LintKind::VacuousCondition {
                    field: field.to_owned(),
                },
                format!(
                    "`{field}` is never populated for `{:?}` and defaults to \
                     {value}; the constraint is always true",
                    rule.on
                ),
            )
        } else {
            (
                LintLevel::Error,
                LintKind::UnmatchableCondition {
                    field: field.to_owned(),
                },
                format!(
                    "the kernel never emits `{:?}` events with `{field}` = \
                     {value}; this rule can never fire",
                    rule.on
                ),
            )
        };
        out.push(PolicyLint {
            policy: policy.to_owned(),
            rule: Some(rule.id.clone()),
            level,
            kind,
            message,
        });
    }
    if rule.action == PolicyAction::Allow {
        out.push(PolicyLint {
            policy: policy.to_owned(),
            rule: Some(rule.id.clone()),
            level: LintLevel::Warning,
            kind: LintKind::NoOpAllow,
            message: "the engine skips `allow` rules; this rule has no effect".to_owned(),
        });
    }
}

/// Shadowing between two rules in the flattened match order. `cross_policy`
/// softens same-action-kind duplicates to a warning: standalone per-CVE
/// policies intentionally repeat shared cleanup rules.
fn shadow_lint(
    policy: &str,
    earlier: &PolicyRule,
    later: &PolicyRule,
    cross_policy: bool,
) -> Option<PolicyLint> {
    if earlier.on != later.on
        || earlier.action == PolicyAction::Allow
        || later.action == PolicyAction::Allow
        || !condition_implies(&earlier.when, &later.when)
    {
        return None;
    }
    let same_action_kind = discriminant(&earlier.action) == discriminant(&later.action);
    let (level, kind) = if cross_policy && same_action_kind {
        (
            LintLevel::Warning,
            LintKind::RedundantAcrossPolicies {
                winner: earlier.id.clone(),
            },
        )
    } else {
        (
            LintLevel::Error,
            LintKind::ShadowedRule {
                winner: earlier.id.clone(),
            },
        )
    };
    Some(PolicyLint {
        policy: policy.to_owned(),
        rule: Some(later.id.clone()),
        level,
        kind,
        message: format!(
            "rule `{}` can never fire: `{}` matches first on every call it matches",
            later.id, earlier.id
        ),
    })
}

fn coverage_lint(spec: &PolicySpec, out: &mut Vec<PolicyLint>) {
    // Per-CVE policies must intercept their CVE's racy pair; attack-family
    // policies (`policy_attack-*`) must intercept their family's primitive.
    let (label, expected) = if let Some(tail) = spec.name.strip_prefix("policy_cve-") {
        let Some(expected) = racy_pair_selectors(tail) else {
            return;
        };
        (format!("CVE-{tail}"), expected)
    } else if let Some(tail) = spec.name.strip_prefix("policy_attack-") {
        let Some(expected) = family_selectors(tail) else {
            return;
        };
        (format!("attack-{tail}"), expected)
    } else {
        return;
    };
    let covered = spec
        .rules
        .iter()
        .any(|r| r.action != PolicyAction::Allow && expected.contains(&r.on));
    if !covered {
        out.push(PolicyLint {
            policy: spec.name.clone(),
            rule: None,
            level: LintLevel::Error,
            kind: LintKind::IncompleteCoverage {
                cve: label.clone(),
                expected: expected.to_vec(),
            },
            message: format!(
                "no rule intercepts the racy pair of {label} \
                 (expected a rule on one of {expected:?}); the policy \
                 cannot totally order it"
            ),
        });
    }
}

fn defer_lint(
    policy: &str,
    rule: &PolicyRule,
    watchdog_hold: Option<SimDuration>,
) -> Option<PolicyLint> {
    if !is_unconditional_defer(rule) {
        return None;
    }
    let watchdog_active = watchdog_hold.is_some_and(|h| h > SimDuration::ZERO);
    let (level, tail) = if watchdog_active {
        (
            LintLevel::Warning,
            "only the kernel watchdog breaks the cycle",
        )
    } else {
        (
            LintLevel::Error,
            "with no watchdog hold configured the event queue livelocks",
        )
    };
    Some(PolicyLint {
        policy: policy.to_owned(),
        rule: Some(rule.id.clone()),
        level,
        kind: LintKind::DeferLivelock,
        message: format!("unconditional defer_termination re-defers every teardown; {tail}"),
    })
}

/// Lints one policy in isolation. The defer-livelock check assumes no
/// watchdog context (worst case); use [`lint_policy_set`] to lint against a
/// kernel configuration.
#[must_use]
pub fn lint_policy(spec: &PolicySpec) -> Vec<PolicyLint> {
    let mut out = Vec::new();
    for (i, rule) in spec.rules.iter().enumerate() {
        rule_lints(&spec.name, rule, &mut out);
        for earlier in &spec.rules[..i] {
            if let Some(l) = shadow_lint(&spec.name, earlier, rule, false) {
                out.push(l);
            }
        }
        if let Some(l) = defer_lint(&spec.name, rule, None) {
            out.push(l);
        }
    }
    coverage_lint(spec, &mut out);
    prover_lint(spec, &mut out);
    out
}

/// The prover-backed check: a policy designated to defeat an attack
/// pattern must actually prove it defeated at the default depth. Static
/// coverage ([`LintKind::IncompleteCoverage`]) only checks that *some*
/// rule touches the racy pair; this check enumerates every schedule up
/// to the bound and errors when one slips through — "claims CVE
/// coverage, counterexample exists".
fn prover_lint(spec: &PolicySpec, out: &mut Vec<PolicyLint>) {
    use crate::prove::{prove_policy, Verdict, DEFAULT_PROVE_DEPTH};
    for model in jsk_core::policy::attack_models() {
        if !model.defeated_by.contains(&spec.name.as_str()) {
            continue;
        }
        let row = prove_policy(spec, &model, DEFAULT_PROVE_DEPTH);
        if row.verdict == Verdict::Refuted {
            let ce = row.counterexample.unwrap_or_default();
            out.push(PolicyLint {
                policy: spec.name.clone(),
                rule: None,
                level: LintLevel::Error,
                kind: LintKind::ProvedCounterexample {
                    pattern: model.pattern.to_owned(),
                    counterexample: ce.clone(),
                },
                message: format!(
                    "claims to defeat {} ({}) but the prover found a firing \
                     schedule within depth {}: [{}]",
                    model.pattern,
                    model.cve,
                    DEFAULT_PROVE_DEPTH,
                    ce.join(", ")
                ),
            });
        }
    }
}

/// Lints a policy set in its install (match) order, the way a kernel would
/// run it: per-policy lints, cross-policy shadowing, and the defer-livelock
/// check against the kernel's actual `watchdog_hold`.
#[must_use]
pub fn lint_policy_set(
    specs: &[PolicySpec],
    watchdog_hold: Option<SimDuration>,
) -> Vec<PolicyLint> {
    let mut out = Vec::new();
    for (pi, spec) in specs.iter().enumerate() {
        for (ri, rule) in spec.rules.iter().enumerate() {
            rule_lints(&spec.name, rule, &mut out);
            for earlier in &spec.rules[..ri] {
                if let Some(l) = shadow_lint(&spec.name, earlier, rule, false) {
                    out.push(l);
                }
            }
            for earlier_spec in &specs[..pi] {
                for earlier in &earlier_spec.rules {
                    if let Some(l) = shadow_lint(&spec.name, earlier, rule, true) {
                        out.push(l);
                    }
                }
            }
            if let Some(l) = defer_lint(&spec.name, rule, watchdog_hold) {
                out.push(l);
            }
        }
        coverage_lint(spec, &mut out);
        prover_lint(spec, &mut out);
    }
    out
}

/// The error-level findings of a lint run.
#[must_use]
pub fn errors(lints: &[PolicyLint]) -> Vec<&PolicyLint> {
    lints
        .iter()
        .filter(|l| l.level == LintLevel::Error)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(id: &str, on: ApiSelector, when: Condition, action: PolicyAction) -> PolicyRule {
        PolicyRule {
            id: id.into(),
            on,
            when,
            action,
        }
    }

    fn spec(name: &str, rules: Vec<PolicyRule>) -> PolicySpec {
        PolicySpec {
            name: name.into(),
            description: "test".into(),
            scheduling: None,
            rules,
        }
    }

    fn deny() -> PolicyAction {
        PolicyAction::Deny {
            reason: "test".into(),
        }
    }

    #[test]
    fn general_rule_shadows_specific_rule() {
        let s = spec(
            "p",
            vec![
                rule("broad", ApiSelector::XhrSend, Condition::default(), deny()),
                rule(
                    "narrow",
                    ApiSelector::XhrSend,
                    Condition {
                        cross_origin: Some(true),
                        ..Condition::default()
                    },
                    PolicyAction::DropQuietly,
                ),
            ],
        );
        let lints = lint_policy(&s);
        assert!(lints.iter().any(|l| matches!(
            &l.kind,
            LintKind::ShadowedRule { winner } if winner == "broad"
        )));
        // The reverse order is fine: specific first, general as fallback.
        let ok = spec(
            "p",
            vec![
                rule(
                    "narrow",
                    ApiSelector::XhrSend,
                    Condition {
                        cross_origin: Some(true),
                        ..Condition::default()
                    },
                    PolicyAction::DropQuietly,
                ),
                rule("broad", ApiSelector::XhrSend, Condition::default(), deny()),
            ],
        );
        assert!(lint_policy(&ok).is_empty());
    }

    #[test]
    fn unmatchable_condition_is_an_error_vacuous_a_warning() {
        let s = spec(
            "p",
            vec![
                // `cross_origin` is never populated for TerminateWorker and
                // defaults to false — requiring true can never match.
                rule(
                    "dead",
                    ApiSelector::TerminateWorker,
                    Condition {
                        cross_origin: Some(true),
                        ..Condition::default()
                    },
                    deny(),
                ),
                // Requiring the default is always-true noise.
                rule(
                    "noise",
                    ApiSelector::Navigate,
                    Condition {
                        owner_alive: Some(true),
                        ..Condition::default()
                    },
                    PolicyAction::CancelDocBound,
                ),
            ],
        );
        let lints = lint_policy(&s);
        let dead = lints.iter().find(|l| l.rule.as_deref() == Some("dead"));
        assert!(matches!(
            dead.map(|l| (&l.kind, l.level)),
            Some((LintKind::UnmatchableCondition { .. }, LintLevel::Error))
        ));
        let noise = lints.iter().find(|l| l.rule.as_deref() == Some("noise"));
        assert!(matches!(
            noise.map(|l| (&l.kind, l.level)),
            Some((LintKind::VacuousCondition { .. }, LintLevel::Warning))
        ));
    }

    #[test]
    fn allow_rules_are_flagged_as_noops() {
        let s = spec(
            "p",
            vec![rule(
                "let-through",
                ApiSelector::Fetch,
                Condition::default(),
                PolicyAction::Allow,
            )],
        );
        let lints = lint_policy(&s);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].kind, LintKind::NoOpAllow);
    }

    #[test]
    fn cve_policy_missing_its_racy_pair_is_incomplete() {
        // A "5092 policy" that only touches error events cannot order the
        // terminate/abort pair.
        let s = spec(
            "policy_cve-2018-5092",
            vec![rule(
                "wrong-target",
                ApiSelector::ErrorEvent,
                Condition {
                    leaks_cross_origin: Some(true),
                    ..Condition::default()
                },
                deny(),
            )],
        );
        let lints = lint_policy(&s);
        assert!(lints.iter().any(|l| matches!(
            &l.kind,
            LintKind::IncompleteCoverage { cve, .. } if cve == "CVE-2018-5092"
        )));
    }

    #[test]
    fn attack_family_policy_missing_its_primitive_is_incomplete() {
        // A "hacky-racers policy" that only touches postMessage cannot stop
        // the ILP counter.
        let s = spec(
            "policy_attack-hacky-racers",
            vec![rule(
                "wrong-target",
                ApiSelector::PostMessage,
                Condition {
                    to_self: Some(true),
                    ..Condition::default()
                },
                deny(),
            )],
        );
        let lints = lint_policy(&s);
        assert!(lints.iter().any(|l| matches!(
            &l.kind,
            LintKind::IncompleteCoverage { cve, expected }
                if cve == "attack-hacky-racers"
                    && expected.contains(&ApiSelector::IlpCounterRead)
        )));
        // The shipped family policies both pass clean.
        for p in jsk_core::policy::families::all_family_policies() {
            assert!(lint_policy(&p).is_empty(), "{} must lint clean", p.name);
        }
    }

    #[test]
    fn unconditional_defer_depends_on_the_watchdog() {
        let s = spec(
            "p",
            vec![rule(
                "defer-everything",
                ApiSelector::TerminateWorker,
                Condition::default(),
                PolicyAction::DeferTermination,
            )],
        );
        // Alone (no watchdog context): error.
        let alone = lint_policy(&s);
        assert!(alone
            .iter()
            .any(|l| l.kind == LintKind::DeferLivelock && l.level == LintLevel::Error));
        // Against a kernel with a live watchdog: downgraded to warning.
        let held = lint_policy_set(
            std::slice::from_ref(&s),
            Some(SimDuration::from_millis(2000)),
        );
        assert!(held
            .iter()
            .any(|l| l.kind == LintKind::DeferLivelock && l.level == LintLevel::Warning));
        // Zero hold disables the watchdog: error again.
        let zero = lint_policy_set(std::slice::from_ref(&s), Some(SimDuration::ZERO));
        assert!(zero
            .iter()
            .any(|l| l.kind == LintKind::DeferLivelock && l.level == LintLevel::Error));
        // A conditioned defer is fine.
        let cond = spec(
            "p",
            vec![rule(
                "defer-pending",
                ApiSelector::TerminateWorker,
                Condition {
                    has_pending_fetches: Some(true),
                    ..Condition::default()
                },
                PolicyAction::DeferTermination,
            )],
        );
        assert!(lint_policy(&cond).is_empty());
    }

    #[test]
    fn cross_policy_duplicate_with_same_action_kind_is_a_warning() {
        let a = spec(
            "a",
            vec![rule(
                "a/clean",
                ApiSelector::CloseDocument,
                Condition::default(),
                PolicyAction::CancelDocBound,
            )],
        );
        let b = spec(
            "b",
            vec![rule(
                "b/clean",
                ApiSelector::CloseDocument,
                Condition::default(),
                PolicyAction::CancelDocBound,
            )],
        );
        let lints = lint_policy_set(&[a.clone(), b], None);
        assert!(lints.iter().all(|l| l.level == LintLevel::Warning));
        assert!(lints.iter().any(|l| matches!(
            &l.kind,
            LintKind::RedundantAcrossPolicies { winner } if winner == "a/clean"
        )));
        // Different action kind: the later rule silently loses — error.
        let c = spec(
            "c",
            vec![rule(
                "c/deny",
                ApiSelector::CloseDocument,
                Condition::default(),
                deny(),
            )],
        );
        let lints = lint_policy_set(&[a, c], None);
        assert!(lints
            .iter()
            .any(|l| matches!(&l.kind, LintKind::ShadowedRule { .. })));
    }

    #[test]
    fn weakened_designated_policy_gets_a_proved_counterexample_error() {
        // A designated policy stripped of both ordering rules still claims
        // to defeat AbortAfterOwnerDeath; the prover-backed lint catches
        // the gap with a concrete firing schedule.
        let mut weak = jsk_core::policy::cve::cve_2018_5092();
        weak.rules
            .retain(|r| !r.id.contains("defer-termination") && !r.id.contains("suppress-abort"));
        let lints = lint_policy(&weak);
        let hit = lints
            .iter()
            .find(|l| matches!(&l.kind, LintKind::ProvedCounterexample { .. }))
            .expect("the prover lint must fire on the weakened policy");
        assert_eq!(hit.level, LintLevel::Error);
        match &hit.kind {
            LintKind::ProvedCounterexample {
                pattern,
                counterexample,
            } => {
                assert_eq!(pattern, "AbortAfterOwnerDeath");
                assert!(!counterexample.is_empty());
            }
            other => panic!("unexpected kind {other:?}"),
        }
        // The shipped policy proves clean: no such lint.
        let shipped = lint_policy(&jsk_core::policy::cve::cve_2018_5092());
        assert!(!shipped
            .iter()
            .any(|l| matches!(&l.kind, LintKind::ProvedCounterexample { .. })));
    }
}
