//! The happens-before graph and the race detector over it.
//!
//! The unit of concurrency is one dispatched task — a [`NodeRecord`] in the
//! trace, EventRacer-style. Node ids are assigned monotonically in dispatch
//! order, so every edge points from a lower id to a higher one and the trace
//! order is already a topological order: a single forward pass computing
//! ancestor bitsets decides reachability for the whole graph.
//!
//! Three edge sources feed the graph:
//!
//! * **fork** edges, implicit in [`NodeRecord::forked_from`] (timer arm →
//!   fire, `postMessage` send → deliver, fetch → completion, worker create
//!   → first run, terminate → teardown);
//! * **dispatch-chain** edges the kernel announces when its serialized
//!   dispatcher releases two tasks consecutively on one thread;
//! * **kernel-comm** edges carried by the kernel-space overlay
//!   (`jsk_core::comm`): the sender's task happens before the receiving
//!   thread's next dispatched task.
//!
//! Two accesses *conflict* when they touch the same [`AccessTarget`] and at
//! least one is a write; a conflicting pair unordered by the graph is a
//! **race**. Each reported race carries both access stacks (the fork
//! ancestry of each task) and a minimal reordering witness: the deepest
//! common fork ancestor plus the two independent chains below it — the two
//! schedules that disagree about the order of the pair.

use jsk_browser::ids::ThreadId;
use jsk_browser::trace::{
    AccessKind, AccessRecord, AccessTarget, EdgeKind, Interner, NodeRecord, Sym, Trace,
};
use serde::Serialize;
use std::collections::BTreeMap;

/// The happens-before graph of one trace.
#[derive(Debug)]
pub struct HbGraph {
    /// Node labels as symbols (`None` for ids the trace never recorded);
    /// resolved against `strings` only when a finding is materialized.
    labels: Vec<Option<Sym>>,
    /// The trace's string table, carried so the graph can resolve symbols
    /// without borrowing the trace.
    strings: Interner,
    threads: Vec<ThreadId>,
    parents: Vec<Option<u64>>,
    /// Per-node ancestor bitset, one word per 64 nodes.
    reach: Vec<Vec<u64>>,
}

impl HbGraph {
    /// Builds the graph from a trace: nodes and fork edges from the
    /// [`NodeRecord`]s, explicit edges from the kernel's
    /// [`HbEdge`](jsk_browser::trace::HbEdge) announcements.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> HbGraph {
        HbGraph::from_trace_filtered(trace, |_| true)
    }

    /// Like [`HbGraph::from_trace`], but keeps only the explicit edges whose
    /// [`EdgeKind`] passes `keep`. Fork edges (task provenance on the
    /// [`NodeRecord`]) always stay: a task cannot run before the task that
    /// registered it, whatever the scheduler does. The predictive pass uses
    /// this to drop `DispatchChain` edges — the serialized dispatcher's
    /// arbitrary ordering choice — and ask what the *semantic* order alone
    /// still rules out.
    #[must_use]
    pub fn from_trace_filtered(trace: &Trace, keep: impl Fn(EdgeKind) -> bool) -> HbGraph {
        let n = trace
            .nodes()
            .map(|(_, rec)| rec.node as usize + 1)
            .max()
            .unwrap_or(0);
        let mut labels = vec![None; n];
        let mut threads = vec![ThreadId::new(0); n];
        let mut parents = vec![None; n];
        let mut preds: Vec<Vec<u64>> = vec![Vec::new(); n];
        for (_, rec) in trace.nodes() {
            let NodeRecord {
                node,
                thread,
                forked_from,
                label,
            } = rec;
            let i = *node as usize;
            labels[i] = Some(*label);
            threads[i] = *thread;
            parents[i] = *forked_from;
            if let Some(p) = forked_from {
                if *p < *node {
                    preds[i].push(*p);
                }
            }
        }
        for (_, edge) in trace.edges() {
            // Node ids are a topological order; a backward or self edge can
            // only come from a corrupted trace, so it is dropped rather than
            // allowed to poison reachability.
            if keep(edge.kind) && edge.from < edge.to && (edge.to as usize) < n {
                preds[edge.to as usize].push(edge.from);
            }
        }
        let blocks = n.div_ceil(64);
        let mut reach: Vec<Vec<u64>> = Vec::with_capacity(n);
        for node_preds in &preds {
            let mut bits = vec![0u64; blocks];
            for &p in node_preds {
                let p = p as usize;
                for (b, word) in bits.iter_mut().enumerate() {
                    *word |= reach[p][b];
                }
                bits[p / 64] |= 1 << (p % 64);
            }
            reach.push(bits);
        }
        HbGraph {
            labels,
            strings: trace.strings().clone(),
            threads,
            parents,
            reach,
        }
    }

    /// Number of task nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Whether `a` happens before `b` (strictly).
    #[must_use]
    pub fn happens_before(&self, a: u64, b: u64) -> bool {
        let (a, b) = (a as usize, b as usize);
        a < self.labels.len()
            && b < self.labels.len()
            && (self.reach[b][a / 64] >> (a % 64)) & 1 == 1
    }

    /// Whether the pair is ordered either way (or is the same node).
    #[must_use]
    pub fn ordered(&self, a: u64, b: u64) -> bool {
        a == b || self.happens_before(a, b) || self.happens_before(b, a)
    }

    /// The node's label (empty for ids the trace never recorded).
    #[must_use]
    pub fn label(&self, node: u64) -> &str {
        self.labels
            .get(node as usize)
            .copied()
            .flatten()
            .map_or("", |sym| self.strings.resolve(sym))
    }

    /// The thread the node's task ran on.
    #[must_use]
    pub fn thread(&self, node: u64) -> Option<ThreadId> {
        self.threads.get(node as usize).copied()
    }

    /// The fork-ancestry chain root..=node.
    #[must_use]
    pub fn fork_chain(&self, node: u64) -> Vec<u64> {
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(&Some(p)) = self.parents.get(cur as usize) {
            // Defensive: a malformed parent pointer must not loop.
            if p >= cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// The deepest node that is a fork ancestor of both, if any.
    #[must_use]
    pub fn common_fork_ancestor(&self, a: u64, b: u64) -> Option<u64> {
        let ca = self.fork_chain(a);
        let cb = self.fork_chain(b);
        ca.iter()
            .zip(cb.iter())
            .take_while(|(x, y)| x == y)
            .map(|(x, _)| *x)
            .last()
    }

    fn site(&self, access: &AccessRecord) -> AccessSite {
        let stack = self
            .fork_chain(access.node)
            .into_iter()
            .map(|n| format!("{}#{}", self.label(n), n))
            .collect();
        AccessSite {
            node: access.node,
            thread: access.thread,
            kind: access.kind,
            what: self.strings.resolve(access.what).to_owned(),
            stack,
        }
    }

    fn witness(&self, a: u64, b: u64) -> ReorderWitness {
        let lca = self.common_fork_ancestor(a, b);
        let below = |node: u64| {
            let chain = self.fork_chain(node);
            match lca {
                Some(l) => chain.into_iter().skip_while(|&n| n != l).skip(1).collect(),
                None => chain,
            }
        };
        ReorderWitness {
            common_ancestor: lca,
            first_chain: below(a),
            second_chain: below(b),
        }
    }
}

/// One side of a racy pair: the access plus the fork ancestry ("stack") of
/// the task that performed it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AccessSite {
    /// The task node.
    pub node: u64,
    /// The thread it ran on.
    pub thread: ThreadId,
    /// Read or write.
    pub kind: AccessKind,
    /// Call-site label.
    pub what: String,
    /// Fork ancestry, root first, each entry `label#node`.
    pub stack: Vec<String>,
}

/// The minimal reordering witness of a race: the two tasks share the fork
/// ancestor `common_ancestor` and the chains below it are independent — no
/// happens-before edge connects them, so a scheduler is free to run either
/// chain first and the access order flips.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReorderWitness {
    /// Deepest common fork ancestor (`None` when the tasks share no root).
    pub common_ancestor: Option<u64>,
    /// Fork chain from below the common ancestor to the first access.
    pub first_chain: Vec<u64>,
    /// Fork chain from below the common ancestor to the second access.
    pub second_chain: Vec<u64>,
}

/// One detected race: a conflicting access pair unordered by
/// happens-before.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RaceFinding {
    /// The contended state.
    pub target: AccessTarget,
    /// The first access (lower node id).
    pub first: AccessSite,
    /// The second access.
    pub second: AccessSite,
    /// Why the pair can be reordered.
    pub witness: ReorderWitness,
    /// How many unordered pairs collapsed into this finding (pairs with the
    /// same target and the same two call-site labels are reported once).
    pub occurrences: usize,
}

/// Detects races: conflicting access pairs unordered by the graph. Findings
/// are deduplicated by `(target, first.what, second.what)` and sorted
/// deterministically.
#[must_use]
pub fn detect_races(trace: &Trace, graph: &HbGraph) -> Vec<RaceFinding> {
    let mut by_target: BTreeMap<AccessTarget, Vec<&AccessRecord>> = BTreeMap::new();
    for (_, access) in trace.accesses() {
        by_target.entry(access.target).or_default().push(access);
    }
    let mut out = Vec::new();
    for (target, accesses) in by_target {
        // Dedup on the raw symbol pair: within one trace distinct symbols
        // are distinct strings, so this is the same partition as the label
        // pair without cloning a string per candidate pair.
        let mut dedup: BTreeMap<(u32, u32), RaceFinding> = BTreeMap::new();
        for (i, a) in accesses.iter().enumerate() {
            for b in accesses.iter().skip(i + 1) {
                if a.kind == AccessKind::Read && b.kind == AccessKind::Read {
                    continue;
                }
                if a.node == b.node || graph.ordered(a.node, b.node) {
                    continue;
                }
                let (first, second) = if a.node <= b.node { (a, b) } else { (b, a) };
                let key = (first.what.raw(), second.what.raw());
                dedup
                    .entry(key)
                    .and_modify(|f| f.occurrences += 1)
                    .or_insert_with(|| RaceFinding {
                        target,
                        first: graph.site(first),
                        second: graph.site(second),
                        witness: graph.witness(first.node, second.node),
                        occurrences: 1,
                    });
            }
        }
        out.extend(dedup.into_values());
    }
    // The label pair breaks (target, node, node) ties: one node can host
    // accesses with different labels, and symbol order is interning order,
    // not lexicographic, so the tie-break must compare the resolved text.
    out.sort_by(|x, y| {
        (
            x.target,
            x.first.node,
            x.second.node,
            &x.first.what,
            &x.second.what,
        )
            .cmp(&(
                y.target,
                y.first.node,
                y.second.node,
                &y.first.what,
                &y.second.what,
            ))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_browser::trace::{EdgeKind, HbEdge};
    use jsk_sim::time::SimTime;

    fn node(t: &mut Trace, id: u64, thread: u64, forked_from: Option<u64>, label: &str) {
        let label = t.intern(label);
        t.node(
            SimTime::from_millis(id),
            NodeRecord {
                node: id,
                thread: ThreadId::new(thread),
                forked_from,
                label,
            },
        );
    }

    fn access(t: &mut Trace, node: u64, thread: u64, target: AccessTarget, kind: AccessKind) {
        let what = t.intern(&format!("w{node}"));
        t.access(
            SimTime::from_millis(node),
            AccessRecord {
                node,
                thread: ThreadId::new(thread),
                target,
                kind,
                what,
            },
        );
    }

    fn sab(idx: u64) -> AccessTarget {
        AccessTarget::Sab {
            sab: jsk_browser::ids::SabId::new(0),
            idx,
        }
    }

    /// boot → {a, b} siblings: a conflicting pair between them races.
    #[test]
    fn sibling_write_write_is_a_race() {
        let mut t = Trace::new();
        node(&mut t, 0, 0, None, "boot");
        node(&mut t, 1, 0, Some(0), "timer");
        node(&mut t, 2, 1, Some(0), "worker");
        access(&mut t, 1, 0, sab(3), AccessKind::Write);
        access(&mut t, 2, 1, sab(3), AccessKind::Write);
        let g = HbGraph::from_trace(&t);
        let races = detect_races(&t, &g);
        assert_eq!(races.len(), 1);
        let r = &races[0];
        assert_eq!((r.first.node, r.second.node), (1, 2));
        assert_eq!(r.witness.common_ancestor, Some(0));
        assert_eq!(r.witness.first_chain, vec![1]);
        assert_eq!(r.witness.second_chain, vec![2]);
        assert_eq!(r.first.stack, vec!["boot#0", "timer#1"]);
    }

    #[test]
    fn read_read_pairs_never_race() {
        let mut t = Trace::new();
        node(&mut t, 0, 0, None, "boot");
        node(&mut t, 1, 0, Some(0), "a");
        node(&mut t, 2, 1, Some(0), "b");
        access(&mut t, 1, 0, sab(0), AccessKind::Read);
        access(&mut t, 2, 1, sab(0), AccessKind::Read);
        let g = HbGraph::from_trace(&t);
        assert!(detect_races(&t, &g).is_empty());
    }

    #[test]
    fn fork_ancestry_orders_the_pair() {
        let mut t = Trace::new();
        node(&mut t, 0, 0, None, "boot");
        node(&mut t, 1, 0, Some(0), "child");
        access(&mut t, 0, 0, sab(0), AccessKind::Write);
        access(&mut t, 1, 0, sab(0), AccessKind::Write);
        let g = HbGraph::from_trace(&t);
        assert!(g.happens_before(0, 1));
        assert!(detect_races(&t, &g).is_empty());
    }

    /// A kernel DispatchChain edge removes the sibling race; the ordering is
    /// transitive through intermediate nodes.
    #[test]
    fn explicit_edges_order_transitively() {
        let mut t = Trace::new();
        node(&mut t, 0, 0, None, "boot");
        node(&mut t, 1, 0, Some(0), "a");
        node(&mut t, 2, 0, Some(0), "mid");
        node(&mut t, 3, 1, Some(0), "b");
        access(&mut t, 1, 0, sab(9), AccessKind::Write);
        access(&mut t, 3, 1, sab(9), AccessKind::Read);
        t.edge(
            SimTime::from_millis(2),
            HbEdge {
                from: 1,
                to: 2,
                kind: EdgeKind::DispatchChain,
            },
        );
        t.edge(
            SimTime::from_millis(3),
            HbEdge {
                from: 2,
                to: 3,
                kind: EdgeKind::KernelComm,
            },
        );
        let g = HbGraph::from_trace(&t);
        assert!(g.happens_before(1, 3));
        assert!(detect_races(&t, &g).is_empty());
    }

    #[test]
    fn identical_label_pairs_collapse_with_a_count() {
        let mut t = Trace::new();
        node(&mut t, 0, 0, None, "boot");
        node(&mut t, 1, 0, Some(0), "w");
        for i in 2..6 {
            node(&mut t, i, 1, Some(0), "r");
        }
        let store = t.intern("store");
        t.access(
            SimTime::ZERO,
            AccessRecord {
                node: 1,
                thread: ThreadId::new(0),
                target: sab(0),
                kind: AccessKind::Write,
                what: store,
            },
        );
        let load = t.intern("load");
        for i in 2..6 {
            t.access(
                SimTime::ZERO,
                AccessRecord {
                    node: i,
                    thread: ThreadId::new(1),
                    target: sab(0),
                    kind: AccessKind::Read,
                    what: load,
                },
            );
        }
        let g = HbGraph::from_trace(&t);
        let races = detect_races(&t, &g);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].occurrences, 4);
    }

    #[test]
    fn malformed_backward_edge_is_ignored() {
        let mut t = Trace::new();
        node(&mut t, 0, 0, None, "boot");
        node(&mut t, 1, 0, Some(0), "a");
        t.edge(
            SimTime::ZERO,
            HbEdge {
                from: 1,
                to: 0,
                kind: EdgeKind::KernelComm,
            },
        );
        let g = HbGraph::from_trace(&t);
        assert!(!g.happens_before(1, 0));
        assert!(g.happens_before(0, 1));
    }

    /// Node ids with holes: id 5 was never recorded, so `labels[5]` is
    /// `None`. The graph, the detector, and every accessor must treat the
    /// gap as an anonymous unordered node, not panic or mis-index.
    #[test]
    fn gap_node_ids_degrade_to_anonymous_nodes() {
        let mut t = Trace::new();
        node(&mut t, 0, 0, None, "boot");
        node(&mut t, 2, 0, Some(0), "a");
        node(&mut t, 7, 1, Some(0), "b");
        access(&mut t, 2, 0, sab(1), AccessKind::Write);
        access(&mut t, 7, 1, sab(1), AccessKind::Write);
        let g = HbGraph::from_trace(&t);
        assert_eq!(g.node_count(), 8, "sized by max id, gaps included");
        assert_eq!(g.label(5), "", "gap ids resolve to the empty label");
        assert!(
            !g.ordered(2, 5),
            "gap nodes are unordered w.r.t. everything"
        );
        let races = detect_races(&t, &g);
        assert_eq!(races.len(), 1);
        assert_eq!((races[0].first.node, races[0].second.node), (2, 7));
    }

    /// A forkless trace — every node a root — must analyze cleanly: the
    /// witness has no common ancestor and each chain is just the access
    /// node itself.
    #[test]
    fn forkless_root_only_trace_races_without_ancestry() {
        let mut t = Trace::new();
        node(&mut t, 0, 0, None, "main");
        node(&mut t, 1, 1, None, "worker");
        access(&mut t, 0, 0, sab(4), AccessKind::Write);
        access(&mut t, 1, 1, sab(4), AccessKind::Write);
        let g = HbGraph::from_trace(&t);
        assert_eq!(g.fork_chain(0), vec![0]);
        let races = detect_races(&t, &g);
        assert_eq!(races.len(), 1);
        let w = &races[0].witness;
        assert_eq!(w.common_ancestor, None);
        assert_eq!(w.first_chain, vec![0], "whole chain when there is no LCA");
        assert_eq!(w.second_chain, vec![1]);
        assert_eq!(races[0].first.stack, vec!["main#0"]);
    }

    /// Two disjoint fork trees: the racing pair shares no fork ancestor at
    /// all. The witness must degrade to `common_ancestor: None` with the
    /// full chains, not panic in the LCA walk.
    #[test]
    fn race_without_common_fork_ancestor_degrades_gracefully() {
        let mut t = Trace::new();
        node(&mut t, 0, 0, None, "page-a");
        node(&mut t, 1, 1, None, "page-b");
        node(&mut t, 2, 0, Some(0), "a-child");
        node(&mut t, 3, 1, Some(1), "b-child");
        access(&mut t, 2, 0, sab(8), AccessKind::Write);
        access(&mut t, 3, 1, sab(8), AccessKind::Read);
        let g = HbGraph::from_trace(&t);
        assert_eq!(g.common_fork_ancestor(2, 3), None);
        let races = detect_races(&t, &g);
        assert_eq!(races.len(), 1);
        let w = &races[0].witness;
        assert_eq!(w.common_ancestor, None);
        assert_eq!(w.first_chain, vec![0, 2]);
        assert_eq!(w.second_chain, vec![1, 3]);
    }

    /// Dropping dispatch-chain edges (the predictive weakening) re-exposes
    /// a pair that only the dispatcher's accidental order had hidden, while
    /// kernel-comm edges — real synchronization — still order.
    #[test]
    fn filtered_graph_drops_only_the_excluded_edge_kind() {
        let mut t = Trace::new();
        node(&mut t, 0, 0, None, "boot");
        node(&mut t, 1, 0, Some(0), "a");
        node(&mut t, 2, 1, Some(0), "b");
        access(&mut t, 1, 0, sab(2), AccessKind::Write);
        access(&mut t, 2, 1, sab(2), AccessKind::Write);
        t.edge(
            SimTime::from_millis(2),
            HbEdge {
                from: 1,
                to: 2,
                kind: EdgeKind::DispatchChain,
            },
        );
        let full = HbGraph::from_trace(&t);
        assert!(detect_races(&t, &full).is_empty(), "chain edge orders");
        let weak = HbGraph::from_trace_filtered(&t, |k| k != EdgeKind::DispatchChain);
        assert_eq!(detect_races(&t, &weak).len(), 1, "weakening re-exposes");
        let keep_all = HbGraph::from_trace_filtered(&t, |_| true);
        assert!(detect_races(&t, &keep_all).is_empty());
    }
}
