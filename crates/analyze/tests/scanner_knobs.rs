//! The scanner's ticker thresholds are environment knobs
//! (`JSK_SCAN_TICKER_SENDS` / `JSK_SCAN_TICKER_MS`). This lives in its
//! own test binary because it mutates the process environment, which the
//! crate's unit tests (which also call `scan`) must never observe.

use jsk_analyze::scanner::{scan, ticker_max_median_gap, ticker_min_sends, PatternKind};
use jsk_browser::ids::ThreadId;
use jsk_browser::trace::{ApiCall, Trace};
use jsk_sim::time::SimTime;

fn stream(sends: u64, gap_ms: u64) -> Trace {
    let mut t = Trace::new();
    for i in 0..sends {
        t.api(
            SimTime::from_millis(i * gap_ms),
            ApiCall::PostMessage {
                from: ThreadId::new(1),
                to: ThreadId::new(0),
                transfer_count: 0,
                to_doc_freed: false,
            },
        );
    }
    t
}

/// One test function: the phases share the process environment, so they
/// must run in a fixed order.
#[test]
fn ticker_thresholds_are_env_knobs_with_unchanged_defaults() {
    // Defaults: unchanged from the hardcoded values (≥20 sends, ≤20 ms).
    assert_eq!(ticker_min_sends(), 20);
    assert_eq!(ticker_max_median_gap(), SimTime::from_millis(20));
    assert_eq!(scan(&stream(19, 1)).len(), 0, "below default threshold");
    assert_eq!(scan(&stream(40, 1)).len(), 1, "above default threshold");

    // Lowering the send threshold makes the short burst a ticker.
    std::env::set_var("JSK_SCAN_TICKER_SENDS", "10");
    assert_eq!(ticker_min_sends(), 10);
    let hits = scan(&stream(19, 1));
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].kind, PatternKind::ImplicitClockTicker);

    // Raising it silences a stream the default would flag.
    std::env::set_var("JSK_SCAN_TICKER_SENDS", "100");
    assert_eq!(scan(&stream(40, 1)).len(), 0);

    // The gap knob: 100 ms gaps are no clock by default, but widening
    // the median bound to 200 ms accepts them.
    std::env::remove_var("JSK_SCAN_TICKER_SENDS");
    assert_eq!(scan(&stream(40, 100)).len(), 0);
    std::env::set_var("JSK_SCAN_TICKER_MS", "200");
    assert_eq!(ticker_max_median_gap(), SimTime::from_millis(200));
    assert_eq!(scan(&stream(40, 100)).len(), 1);

    // Invalid values warn on stderr (shared knob parser) and fall back to
    // the defaults instead of masquerading as configuration.
    std::env::set_var("JSK_SCAN_TICKER_SENDS", "a few");
    std::env::set_var("JSK_SCAN_TICKER_MS", "-5");
    assert_eq!(ticker_min_sends(), 20);
    assert_eq!(ticker_max_median_gap(), SimTime::from_millis(20));

    std::env::remove_var("JSK_SCAN_TICKER_SENDS");
    std::env::remove_var("JSK_SCAN_TICKER_MS");
}
