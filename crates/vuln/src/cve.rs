//! The twelve web-concurrency CVEs of Table I.
//!
//! Each [`Cve`] carries its published description and the trigger-condition
//! model this reproduction detects (synthesized from the NVD/Bugzilla
//! entries the paper cites; see DESIGN.md §4 for the per-CVE mapping).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A web-concurrency CVE evaluated in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Cve {
    /// Firefox: abort signal delivered to a fetch freed by a false worker
    /// termination (use-after-free).
    Cve2018_5092,
    /// Firefox: IndexedDB in private browsing persists across the session
    /// (fingerprinting).
    Cve2017_7843,
    /// Firefox: `importScripts()` error message discloses cross-origin
    /// information.
    Cve2015_7215,
    /// Chrome: message port used after its owning document was freed
    /// (use-after-free).
    Cve2014_3194,
    /// Chrome: worker terminated while its message is mid-dispatch
    /// (use-after-free).
    Cve2014_1719,
    /// Firefox: transferable ArrayBuffer freed with its source worker
    /// (use-after-free).
    Cve2014_1488,
    /// Firefox: worker-creation error message discloses cross-origin
    /// information.
    Cve2014_1487,
    /// Chrome: worker-message callback runs against a closed window's
    /// freed global (use-after-free).
    Cve2013_6646,
    /// Firefox: null dereference assigning `onmessage` on a closing worker.
    Cve2013_5602,
    /// Firefox: worker `XMLHttpRequest` bypasses the same-origin policy.
    Cve2013_1714,
    /// Chrome: worker created in a sandboxed frame inherits the parent
    /// origin (sandbox escape).
    Cve2011_1190,
    /// Chrome: completion callback touches a document navigated away
    /// (use-after-free).
    Cve2010_4576,
}

impl Cve {
    /// All twelve, in Table I's order.
    #[must_use]
    pub fn all() -> [Cve; 12] {
        [
            Cve::Cve2018_5092,
            Cve::Cve2017_7843,
            Cve::Cve2015_7215,
            Cve::Cve2014_3194,
            Cve::Cve2014_1719,
            Cve::Cve2014_1488,
            Cve::Cve2014_1487,
            Cve::Cve2013_6646,
            Cve::Cve2013_5602,
            Cve::Cve2013_1714,
            Cve::Cve2011_1190,
            Cve::Cve2010_4576,
        ]
    }

    /// The CVE identifier string.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Cve::Cve2018_5092 => "CVE-2018-5092",
            Cve::Cve2017_7843 => "CVE-2017-7843",
            Cve::Cve2015_7215 => "CVE-2015-7215",
            Cve::Cve2014_3194 => "CVE-2014-3194",
            Cve::Cve2014_1719 => "CVE-2014-1719",
            Cve::Cve2014_1488 => "CVE-2014-1488",
            Cve::Cve2014_1487 => "CVE-2014-1487",
            Cve::Cve2013_6646 => "CVE-2013-6646",
            Cve::Cve2013_5602 => "CVE-2013-5602",
            Cve::Cve2013_1714 => "CVE-2013-1714",
            Cve::Cve2011_1190 => "CVE-2011-1190",
            Cve::Cve2010_4576 => "CVE-2010-4576",
        }
    }

    /// The trigger-condition sequence this reproduction models.
    #[must_use]
    pub fn trigger_summary(self) -> &'static str {
        match self {
            Cve::Cve2018_5092 => {
                "fetch pending in worker → false worker termination → abort \
                 delivered to the freed request"
            }
            Cve::Cve2017_7843 => "durable indexedDB open persists in a private-mode session",
            Cve::Cve2015_7215 => {
                "cross-origin importScripts failure delivers an error message \
                 carrying target content"
            }
            Cve::Cve2014_3194 => "worker message delivered to a freed document",
            Cve::Cve2014_1719 => {
                "worker terminated while its message dispatch frame is live \
                 on the owner thread"
            }
            Cve::Cve2014_1488 => {
                "worker transfers an ArrayBuffer, terminates, and the \
                 still-owned buffer's backing store is accessed after the \
                 free"
            }
            Cve::Cve2014_1487 => {
                "cross-origin worker-creation failure delivers an error \
                 message carrying target content"
            }
            Cve::Cve2013_6646 => "queued worker message dispatches after the window closed",
            Cve::Cve2013_5602 => "onmessage assigned on a worker in its closing state",
            Cve::Cve2013_1714 => "cross-origin XMLHttpRequest issued from a worker thread",
            Cve::Cve2011_1190 => {
                "worker created by a sandboxed frame inherits the parent \
                 origin and issues an authorized request"
            }
            Cve::Cve2010_4576 => {
                "network completion callback runs against a navigated-away \
                 document generation"
            }
        }
    }
}

impl fmt::Display for Cve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_unique_ids() {
        let all = Cve::all();
        let ids: std::collections::HashSet<_> = all.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), 12);
        for c in all {
            assert!(c.id().starts_with("CVE-"));
            assert!(!c.trigger_summary().is_empty());
            assert_eq!(c.to_string(), c.id());
        }
    }
}
