//! # jsk-vuln — the vulnerability substrate
//!
//! Trigger-condition models for the twelve web-concurrency CVEs of the
//! paper's Table I ([`cve::Cve`]) and the exploit oracle ([`oracle::scan`])
//! that recognises their sequences in a browser trace.
//!
//! A CVE counts as *triggered* exactly when its documented sequence of
//! native-behaviour facts occurred — the oracle never consults the
//! installed defense, so a defense can only win by preventing the sequence.
//!
//! # Examples
//!
//! ```
//! use jsk_browser::ids::ThreadId;
//! use jsk_browser::trace::{Fact, Trace};
//! use jsk_sim::time::SimTime;
//! use jsk_vuln::{oracle, Cve};
//!
//! let mut trace = Trace::new();
//! let url = trace.intern("https://victim.example/api");
//! trace.fact(
//!     SimTime::from_millis(3),
//!     Fact::CrossOriginWorkerRequest {
//!         thread: ThreadId::new(1),
//!         url,
//!     },
//! );
//! let report = oracle::scan(&trace);
//! assert!(report.is_triggered(Cve::Cve2013_1714));
//! ```

pub mod cve;
pub mod oracle;

pub use cve::Cve;
pub use oracle::{scan, TriggerEvidence, VulnReport};
