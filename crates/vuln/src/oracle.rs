//! The exploit oracle: state machines over the browser trace.
//!
//! A CVE is **triggered** exactly when its documented sequence of trace
//! facts occurred. The oracle never consults the installed defense: a
//! defense succeeds only by making the sequence impossible.

use crate::cve::Cve;
use jsk_browser::trace::{ErrorSource, Fact, Trace};
use jsk_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Evidence that a CVE's trigger sequence occurred.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggerEvidence {
    /// When the final step of the sequence happened.
    pub at: SimTime,
    /// Human-readable witness of the sequence.
    pub witness: String,
}

/// The oracle's verdict for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VulnReport {
    triggered: BTreeMap<Cve, TriggerEvidence>,
}

impl VulnReport {
    /// Whether `cve` was triggered.
    #[must_use]
    pub fn is_triggered(&self, cve: Cve) -> bool {
        self.triggered.contains_key(&cve)
    }

    /// The evidence for `cve`, if triggered.
    #[must_use]
    pub fn evidence(&self, cve: Cve) -> Option<&TriggerEvidence> {
        self.triggered.get(&cve)
    }

    /// All triggered CVEs in id order.
    pub fn triggered(&self) -> impl Iterator<Item = (&Cve, &TriggerEvidence)> {
        self.triggered.iter()
    }

    /// Number of triggered CVEs.
    #[must_use]
    pub fn count(&self) -> usize {
        self.triggered.len()
    }
}

/// Scans a trace for all twelve trigger sequences.
#[must_use]
pub fn scan(trace: &Trace) -> VulnReport {
    let mut report = VulnReport::default();
    let mut add = |cve: Cve, at: SimTime, witness: String| {
        report
            .triggered
            .entry(cve)
            .or_insert(TriggerEvidence { at, witness });
    };

    // Sequencing state for the multi-step detectors.
    // CVE-2018-5092: fetch started (with signal) from a worker thread →
    // that worker really terminated while the fetch was pending → abort
    // delivered to the dead-owner request.
    let mut worker_threads = HashMap::new(); // thread → worker
    let mut pending_worker_fetches = HashMap::new(); // req → thread
    let mut settled = HashSet::new();
    let mut dead_threads = HashSet::new();
    // CVE-2014-1488: transfer freed → later access of that buffer.
    let mut freed_buffers = HashSet::new();
    // CVE-2011-1190: inherited-origin sandboxed worker → authorized request.
    let mut tainted_threads = HashSet::new();

    for (t, fact) in trace.facts() {
        let at = *t;
        match fact {
            Fact::WorkerStarted {
                worker,
                thread,
                sandboxed_parent,
                inherited_origin,
                ..
            } => {
                worker_threads.insert(*thread, *worker);
                if *sandboxed_parent && *inherited_origin {
                    tainted_threads.insert(*thread);
                }
            }
            Fact::FetchStarted {
                req,
                thread,
                has_signal,
            } if *has_signal && worker_threads.contains_key(thread) => {
                pending_worker_fetches.insert(*req, *thread);
            }
            Fact::FetchSettled { req, .. } => {
                settled.insert(*req);
            }
            Fact::WorkerTerminated {
                worker,
                user_level_only,
                ..
            } if !user_level_only => {
                if let Some((&thread, _)) = worker_threads.iter().find(|(_, w)| *w == worker) {
                    dead_threads.insert(thread);
                }
            }
            Fact::AbortDelivered {
                req,
                owner,
                owner_alive,
            } => {
                let was_worker_fetch = pending_worker_fetches.contains_key(req);
                if !owner_alive
                    && was_worker_fetch
                    && !settled.contains(req)
                    && dead_threads.contains(owner)
                {
                    add(
                        Cve::Cve2018_5092,
                        at,
                        format!("abort reached freed {req} of terminated worker thread {owner}"),
                    );
                }
            }
            Fact::IdbPersistedInPrivateMode { thread } => {
                add(
                    Cve::Cve2017_7843,
                    at,
                    format!("indexedDB persisted during private session on {thread}"),
                );
            }
            Fact::ErrorMessageDelivered {
                source,
                leaked_cross_origin,
                message,
                ..
            } if *leaked_cross_origin => {
                let message = trace.resolve(*message);
                match source {
                    ErrorSource::ImportScripts => add(
                        Cve::Cve2015_7215,
                        at,
                        format!("importScripts error leaked: {message}"),
                    ),
                    ErrorSource::WorkerCreation => add(
                        Cve::Cve2014_1487,
                        at,
                        format!("worker-creation error leaked: {message}"),
                    ),
                }
            }
            Fact::MessageToFreedDoc { from, to } => {
                add(
                    Cve::Cve2014_3194,
                    at,
                    format!("message from {from} delivered to freed document on {to}"),
                );
            }
            Fact::DispatchUseAfterFree { worker } => {
                add(
                    Cve::Cve2014_1719,
                    at,
                    format!("{worker} terminated mid-dispatch"),
                );
            }
            Fact::TransferFreed { buffer } => {
                freed_buffers.insert(*buffer);
            }
            Fact::FreedBufferAccess { buffer, thread } if freed_buffers.contains(buffer) => {
                add(
                    Cve::Cve2014_1488,
                    at,
                    format!("{thread} accessed freed transferred {buffer}"),
                );
            }
            Fact::CallbackAfterClose { thread } => {
                add(
                    Cve::Cve2013_6646,
                    at,
                    format!("worker-message callback ran after close on {thread}"),
                );
            }
            Fact::NullDerefOnAssign { worker } => {
                add(
                    Cve::Cve2013_5602,
                    at,
                    format!("onmessage assigned on closing {worker}"),
                );
            }
            Fact::CrossOriginWorkerRequest { thread, url } => {
                let url = trace.resolve(*url);
                add(
                    Cve::Cve2013_1714,
                    at,
                    format!("worker thread {thread} sent cross-origin XHR to {url}"),
                );
            }
            Fact::InheritedOriginRequest { thread } if tainted_threads.contains(thread) => {
                add(
                    Cve::Cve2011_1190,
                    at,
                    format!("sandbox-created worker on {thread} used inherited origin"),
                );
            }
            Fact::StaleDocCallback { thread } => {
                add(
                    Cve::Cve2010_4576,
                    at,
                    format!("completion ran against navigated-away document on {thread}"),
                );
            }
            _ => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_browser::ids::{BufferId, RequestId, ThreadId, WorkerId};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn empty_trace_triggers_nothing() {
        let report = scan(&Trace::new());
        assert_eq!(report.count(), 0);
        for cve in Cve::all() {
            assert!(!report.is_triggered(cve));
        }
    }

    #[test]
    fn cve_2018_5092_requires_the_full_sequence() {
        // Abort to a dead owner WITHOUT the worker-fetch prefix: no trigger.
        let mut trace = Trace::new();
        trace.fact(
            t(1),
            Fact::AbortDelivered {
                req: RequestId::new(0),
                owner: ThreadId::new(1),
                owner_alive: false,
            },
        );
        assert!(!scan(&trace).is_triggered(Cve::Cve2018_5092));

        // The full sequence triggers.
        let mut trace = Trace::new();
        trace.fact(
            t(0),
            Fact::WorkerStarted {
                worker: WorkerId::new(0),
                thread: ThreadId::new(1),
                parent: ThreadId::new(0),
                sandboxed_parent: false,
                inherited_origin: true,
            },
        );
        trace.fact(
            t(1),
            Fact::FetchStarted {
                req: RequestId::new(0),
                thread: ThreadId::new(1),
                has_signal: true,
            },
        );
        trace.fact(
            t(2),
            Fact::WorkerTerminated {
                worker: WorkerId::new(0),
                reason: jsk_browser::trace::TerminationReason::DocumentTeardown,
                during_dispatch: false,
                freed_transfers: 0,
                user_level_only: false,
            },
        );
        trace.fact(
            t(3),
            Fact::AbortDelivered {
                req: RequestId::new(0),
                owner: ThreadId::new(1),
                owner_alive: false,
            },
        );
        let report = scan(&trace);
        assert!(report.is_triggered(Cve::Cve2018_5092));
        assert_eq!(report.evidence(Cve::Cve2018_5092).unwrap().at, t(3));
    }

    #[test]
    fn settled_fetch_does_not_trigger_5092() {
        let mut trace = Trace::new();
        trace.fact(
            t(0),
            Fact::WorkerStarted {
                worker: WorkerId::new(0),
                thread: ThreadId::new(1),
                parent: ThreadId::new(0),
                sandboxed_parent: false,
                inherited_origin: true,
            },
        );
        trace.fact(
            t(1),
            Fact::FetchStarted {
                req: RequestId::new(0),
                thread: ThreadId::new(1),
                has_signal: true,
            },
        );
        trace.fact(
            t(2),
            Fact::FetchSettled {
                req: RequestId::new(0),
                ok: true,
            },
        );
        trace.fact(
            t(3),
            Fact::WorkerTerminated {
                worker: WorkerId::new(0),
                reason: jsk_browser::trace::TerminationReason::Explicit,
                during_dispatch: false,
                freed_transfers: 0,
                user_level_only: false,
            },
        );
        trace.fact(
            t(4),
            Fact::AbortDelivered {
                req: RequestId::new(0),
                owner: ThreadId::new(1),
                owner_alive: false,
            },
        );
        assert!(!scan(&trace).is_triggered(Cve::Cve2018_5092));
    }

    #[test]
    fn error_leaks_route_to_their_cve_by_source() {
        let mut trace = Trace::new();
        let leak = trace.intern("leak");
        trace.fact(
            t(1),
            Fact::ErrorMessageDelivered {
                thread: ThreadId::new(0),
                source: ErrorSource::WorkerCreation,
                message: leak,
                leaked_cross_origin: true,
            },
        );
        trace.fact(
            t(2),
            Fact::ErrorMessageDelivered {
                thread: ThreadId::new(1),
                source: ErrorSource::ImportScripts,
                message: leak,
                leaked_cross_origin: true,
            },
        );
        // Sanitized (non-leaking) errors trigger nothing.
        let sanitized = trace.intern("Script error.");
        trace.fact(
            t(3),
            Fact::ErrorMessageDelivered {
                thread: ThreadId::new(1),
                source: ErrorSource::ImportScripts,
                message: sanitized,
                leaked_cross_origin: false,
            },
        );
        let report = scan(&trace);
        assert_eq!(
            report.evidence(Cve::Cve2014_1487).unwrap().witness,
            "worker-creation error leaked: leak"
        );
        assert!(report.is_triggered(Cve::Cve2014_1487));
        assert!(report.is_triggered(Cve::Cve2015_7215));
        assert_eq!(report.count(), 2);
    }

    #[test]
    fn cve_2014_1488_needs_free_before_access() {
        let mut trace = Trace::new();
        // Access of a freed buffer that was never a transfer-free: still
        // requires the TransferFreed prefix.
        trace.fact(
            t(1),
            Fact::FreedBufferAccess {
                buffer: BufferId::new(0),
                thread: ThreadId::new(0),
            },
        );
        assert!(!scan(&trace).is_triggered(Cve::Cve2014_1488));

        trace.fact(
            t(2),
            Fact::TransferFreed {
                buffer: BufferId::new(0),
            },
        );
        trace.fact(
            t(3),
            Fact::FreedBufferAccess {
                buffer: BufferId::new(0),
                thread: ThreadId::new(0),
            },
        );
        assert!(scan(&trace).is_triggered(Cve::Cve2014_1488));
    }

    #[test]
    fn cve_2011_1190_needs_tainted_worker() {
        let mut trace = Trace::new();
        trace.fact(
            t(1),
            Fact::InheritedOriginRequest {
                thread: ThreadId::new(1),
            },
        );
        assert!(!scan(&trace).is_triggered(Cve::Cve2011_1190));

        trace.fact(
            t(2),
            Fact::WorkerStarted {
                worker: WorkerId::new(0),
                thread: ThreadId::new(2),
                parent: ThreadId::new(0),
                sandboxed_parent: true,
                inherited_origin: true,
            },
        );
        trace.fact(
            t(3),
            Fact::InheritedOriginRequest {
                thread: ThreadId::new(2),
            },
        );
        assert!(scan(&trace).is_triggered(Cve::Cve2011_1190));
    }

    #[test]
    fn single_fact_detectors_fire() {
        // Each case builds its fact against its own trace, so facts with
        // interned payloads get symbols from the right table.
        type FactCase = (fn(&mut Trace) -> Fact, Cve);
        let cases: Vec<FactCase> = vec![
            (
                |_| Fact::IdbPersistedInPrivateMode {
                    thread: ThreadId::new(0),
                },
                Cve::Cve2017_7843,
            ),
            (
                |_| Fact::MessageToFreedDoc {
                    from: ThreadId::new(1),
                    to: ThreadId::new(0),
                },
                Cve::Cve2014_3194,
            ),
            (
                |_| Fact::DispatchUseAfterFree {
                    worker: WorkerId::new(0),
                },
                Cve::Cve2014_1719,
            ),
            (
                |_| Fact::CallbackAfterClose {
                    thread: ThreadId::new(0),
                },
                Cve::Cve2013_6646,
            ),
            (
                |_| Fact::NullDerefOnAssign {
                    worker: WorkerId::new(0),
                },
                Cve::Cve2013_5602,
            ),
            (
                |trace| Fact::CrossOriginWorkerRequest {
                    thread: ThreadId::new(1),
                    url: trace.intern("https://victim.example/x"),
                },
                Cve::Cve2013_1714,
            ),
            (
                |_| Fact::StaleDocCallback {
                    thread: ThreadId::new(0),
                },
                Cve::Cve2010_4576,
            ),
        ];
        for (mk, cve) in cases {
            let mut trace = Trace::new();
            let fact = mk(&mut trace);
            trace.fact(t(1), fact);
            let report = scan(&trace);
            assert!(report.is_triggered(cve), "{cve}");
            assert_eq!(report.count(), 1, "{cve}");
        }
    }
}
