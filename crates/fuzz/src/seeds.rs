//! Startup corpus assembly: canonical workload seeds plus everything the
//! project has already learned about where races hide.
//!
//! Three provenance classes, distinguishable by name:
//!
//! * **Canonical** seeds from [`jsk_workloads::schedule::seed_schedules`]
//!   — names carry no `~`. These are the only entries the recall oracle
//!   (scanner re-discovery) is judged on.
//! * **Imported** findings: the minimized reproducers checked into
//!   `fuzz_corpus/`, compiled in via `include_str!` so every fuzz run
//!   starts from past discoveries instead of re-deriving them. Names
//!   carry the fuzzer's mutation provenance (`parent~r<round>s<slot>`).
//! * **Analysis-derived** seeds: replay-confirmed witnesses from the
//!   predictive race detector (`…~predict:<class>:w<k>`) and concrete
//!   realizations of any bounded-prover counterexample
//!   (`…~prove:<policy>`). On a healthy tree the prover refutes nothing,
//!   so the latter set is normally empty — but the moment a policy
//!   regresses, its firing schedule lands straight in the fuzz corpus.

use jsk_analyze::predict::{confirmed_witnesses, predict_corpus};
use jsk_analyze::prove::{prove_all, prove_depth};
use jsk_workloads::schedule::{seed_schedules, Schedule};
use std::collections::BTreeSet;

/// The minimized findings promoted into `fuzz_corpus/`, in repo order.
/// `include_str!` keeps the fuzzer self-contained: the binary re-checks
/// past reproducers even when run outside the repository checkout.
const IMPORTED: &[(&str, &str)] = &[
    (
        "CVE-2014-3194_r0s1",
        include_str!("../../../fuzz_corpus/CVE-2014-3194_r0s1.json"),
    ),
    (
        "CVE-2014-3194_r0s1_r2s6",
        include_str!("../../../fuzz_corpus/CVE-2014-3194_r0s1_r2s6.json"),
    ),
    (
        "CVE-2018-5092_r0s13",
        include_str!("../../../fuzz_corpus/CVE-2018-5092_r0s13.json"),
    ),
    (
        "CVE-2018-5092_r0s13_r8s7",
        include_str!("../../../fuzz_corpus/CVE-2018-5092_r0s13_r8s7.json"),
    ),
];

/// True for a canonical workload seed (no mutation / analysis
/// provenance in the name). The recall oracle and the bench `recall`
/// verdict are judged on canonical entries only: derived seeds are racy
/// interleavings, not scanner-pattern programs.
#[must_use]
pub fn is_canonical(name: &str) -> bool {
    !name.contains('~')
}

/// Parses the compiled-in `fuzz_corpus/` reproducers.
///
/// # Panics
/// If a checked-in corpus file is not valid schedule JSON — that is a
/// repository defect, not an input condition.
#[must_use]
pub fn imported_seeds() -> Vec<Schedule> {
    IMPORTED
        .iter()
        .map(|(file, body)| {
            Schedule::from_json(body)
                .unwrap_or_else(|e| panic!("fuzz_corpus/{file}.json is not a schedule: {e}"))
        })
        .collect()
}

/// Seeds derived by the analysis crate: confirmed predictive witnesses
/// first (corpus order), then any prover counterexample realizations.
/// Deterministic — both passes are pure functions of the committed
/// corpus and the prove depth.
#[must_use]
pub fn analysis_seeds() -> Vec<Schedule> {
    let mut out = confirmed_witnesses(&predict_corpus());
    for row in prove_all(prove_depth()).rows {
        if let Some(schedule) = row.schedule {
            out.push(schedule);
        }
    }
    out
}

/// The full startup corpus: canonical, then imported, then
/// analysis-derived, deduplicated by name keeping the first occurrence.
#[must_use]
pub fn startup_corpus() -> Vec<Schedule> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut out = Vec::new();
    for s in seed_schedules()
        .into_iter()
        .chain(imported_seeds())
        .chain(analysis_seeds())
    {
        if seen.insert(s.name.clone()) {
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imported_seeds_parse_and_carry_mutation_provenance() {
        let imported = imported_seeds();
        assert_eq!(imported.len(), 4);
        for s in &imported {
            assert!(!is_canonical(&s.name), "{} should carry a ~", s.name);
            assert!(!s.events.is_empty());
        }
    }

    #[test]
    fn startup_corpus_is_deduplicated_and_layered() {
        let corpus = startup_corpus();
        let canonical = corpus.iter().filter(|s| is_canonical(&s.name)).count();
        assert_eq!(canonical, seed_schedules().len());
        assert!(
            corpus.len() >= canonical + imported_seeds().len(),
            "imported and analysis seeds must extend the corpus"
        );
        let mut names: Vec<&str> = corpus.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len(), "names are unique");
    }

    #[test]
    fn analysis_seeds_include_a_predictive_witness_and_no_counterexamples() {
        let derived = analysis_seeds();
        assert!(
            derived.iter().any(|s| s.name.contains("~predict:")),
            "at least one confirmed predictive witness must seed the fuzzer"
        );
        assert!(
            !derived.iter().any(|s| s.name.contains("~prove:")),
            "a prover counterexample in the seed set means a shipped policy regressed"
        );
    }
}
