//! # jsk-fuzz — coverage-guided interleaving search
//!
//! The ROADMAP's "adversarial interleaving search": a deterministic,
//! seeded mutation engine over the serializable event schedules in
//! [`jsk_workloads::schedule`], driving the real browser + kernel and
//! keeping whatever reaches new behavior.
//!
//! ## Coverage signal
//!
//! Each candidate schedule runs twice — once raw (legacy mediator), once
//! under the hardened kernel — and is fingerprinted ([`coverage`]) by:
//!
//! * scanner [`PatternKind`](jsk_analyze::scanner::PatternKind) hits in
//!   the raw trace,
//! * race targets the happens-before detector flags in the raw trace,
//! * per-rule `policy.*` denial counters from the kernel run
//!   ([`KernelStats::denials`](jsk_core::stats::KernelStats)), and
//! * log₂-bucketed happens-before edge counts from the kernel trace.
//!
//! A candidate that contributes any feature the corpus has not shown
//! before joins the corpus and seeds later mutation rounds.
//!
//! ## Startup corpus
//!
//! Generation 0 is [`seeds::startup_corpus`]: the canonical workload
//! seeds, the minimized reproducers checked into `fuzz_corpus/`
//! (compiled in via `include_str!`), and analysis-derived schedules —
//! replay-confirmed witnesses from the predictive race detector and
//! concrete realizations of any bounded-prover counterexample. Past
//! discoveries and proofs feed the search instead of being re-derived.
//!
//! ## Oracle
//!
//! The race detector over the **kernel-mode** trace. The kernel's
//! serialized dispatcher must keep every schedule race-free; a schedule
//! whose kernel run still races is an *oracle violation* — the CI
//! fuzz-smoke job fails on any. Raw-mode races that open novel coverage
//! are *findings*: newly discovered attack interleavings, minimized by
//! delta-debugging ([`fn@minimize`]) and emitted as corpus-entry JSON
//! ([`Schedule::to_json`](jsk_workloads::schedule::Schedule)) for
//! promotion into the regression corpus.
//!
//! ## Determinism
//!
//! Candidate generation is a pure function of (`JSK_FUZZ_SEED`, round,
//! slot); evaluation fans out through the order-preserving worker pool
//! and merges serially, so reports are byte-identical under any
//! `JSK_JOBS`.

pub mod coverage;
pub mod engine;
pub mod minimize;
pub mod mutate;
pub mod seeds;

pub use coverage::{evaluate, Eval, BROWSER_SEED};
pub use engine::{run_fuzz, Finding, FuzzConfig, FuzzReport, RecallEntry};
pub use minimize::minimize;
pub use mutate::mutate;
pub use seeds::{analysis_seeds, imported_seeds, is_canonical, startup_corpus};
