//! Schedule mutations: small, structure-preserving edits to an event list
//! plus a site-mix crossover, all drawn from a caller-provided
//! [`SimRng`] so candidate generation is replayable from the fuzz seed.

use jsk_sim::rng::SimRng;
use jsk_workloads::schedule::{Schedule, ScheduleEvent};

/// Hard cap on a mutant's event count: duplication and crossover must not
/// let schedules grow without bound across generations.
pub const MAX_EVENTS: usize = 48;

/// Largest single delay perturbation, in milliseconds. Big enough to move
/// an event across any teardown window in the corpus, small enough to
/// keep it inside the run.
const MAX_DELAY_SHIFT: u64 = 64;

fn swap(events: &mut [ScheduleEvent], rng: &mut SimRng) -> String {
    if events.len() < 2 {
        return "swap:noop".into();
    }
    let i = rng.index(events.len());
    let j = rng.index(events.len());
    events.swap(i, j);
    format!("swap:{i}<->{j}")
}

fn dup(events: &mut Vec<ScheduleEvent>, rng: &mut SimRng) -> String {
    if events.is_empty() || events.len() >= MAX_EVENTS {
        return "dup:noop".into();
    }
    let i = rng.index(events.len());
    let copy = events[i].clone();
    events.insert(i + 1, copy);
    format!("dup:{i}")
}

fn drop_one(events: &mut Vec<ScheduleEvent>, rng: &mut SimRng) -> String {
    if events.len() < 2 {
        return "drop:noop".into();
    }
    let i = rng.index(events.len());
    events.remove(i);
    format!("drop:{i}")
}

fn delay(events: &mut [ScheduleEvent], rng: &mut SimRng, run_ms: u32) -> String {
    if events.is_empty() {
        return "delay:noop".into();
    }
    let i = rng.index(events.len());
    let shift = rng.range_u64(1, MAX_DELAY_SHIFT) as u32;
    let at = &mut events[i].at_ms;
    if rng.chance(0.5) {
        *at = at.saturating_add(shift).min(run_ms.saturating_sub(1));
    } else {
        *at = at.saturating_sub(shift);
    }
    format!("delay:{i}:{shift}")
}

/// Site-mix crossover: the mutant keeps a prefix of its own events and
/// splices in a suffix of a partner schedule's, merging the partner's
/// resources and document mode — two attack sites sharing one page.
fn crossover(base: &mut Schedule, partner: &Schedule, rng: &mut SimRng) -> String {
    let keep = if base.events.is_empty() {
        0
    } else {
        rng.index(base.events.len() + 1)
    };
    let take = if partner.events.is_empty() {
        0
    } else {
        rng.index(partner.events.len() + 1)
    };
    base.events.truncate(keep);
    let start = partner.events.len() - take;
    base.events.extend(partner.events[start..].iter().cloned());
    base.events.truncate(MAX_EVENTS);
    for r in &partner.resources {
        if !base.resources.iter().any(|mine| mine.url == r.url) {
            base.resources.push(r.clone());
        }
    }
    base.private_mode = base.private_mode || partner.private_mode;
    base.run_ms = base.run_ms.max(partner.run_ms);
    format!("crossover:{}:{keep}+{take}", partner.name)
}

/// Derives one mutant from `parent`. The corpus supplies crossover
/// partners; `label` names the mutant (round/slot provenance, kept in the
/// report so findings are attributable). Returns the mutant and a
/// human-readable description of the applied edit.
#[must_use]
pub fn mutate(
    parent: &Schedule,
    corpus: &[Schedule],
    rng: &mut SimRng,
    label: &str,
) -> (Schedule, String) {
    let mut out = parent.clone();
    out.name = format!("{}~{label}", parent.name);
    let desc = match rng.index(5) {
        0 => swap(&mut out.events, rng),
        1 => dup(&mut out.events, rng),
        2 => drop_one(&mut out.events, rng),
        3 => delay(&mut out.events, rng, out.run_ms),
        _ => {
            let partner = &corpus[rng.index(corpus.len())];
            crossover(&mut out, partner, rng)
        }
    };
    (out, desc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_workloads::schedule::seed_schedules;

    #[test]
    fn mutation_is_deterministic_in_the_rng_seed() {
        let seeds = seed_schedules();
        for k in 0..20 {
            let mut a = SimRng::new(42).fork(&format!("m{k}"));
            let mut b = SimRng::new(42).fork(&format!("m{k}"));
            let (ma, da) = mutate(&seeds[0], &seeds, &mut a, "t");
            let (mb, db) = mutate(&seeds[0], &seeds, &mut b, "t");
            assert_eq!(ma, mb);
            assert_eq!(da, db);
        }
    }

    #[test]
    fn mutants_never_exceed_the_event_cap() {
        let seeds = seed_schedules();
        let mut current = seeds[7].clone(); // CVE-2013-6646: 4 events
        let mut rng = SimRng::new(7);
        for i in 0..200 {
            let (next, _) = mutate(&current, &seeds, &mut rng, &i.to_string());
            assert!(next.events.len() <= MAX_EVENTS);
            current = next;
            current.name = "chain".into(); // keep names from growing unboundedly
        }
    }

    #[test]
    fn crossover_merges_resources_and_mode() {
        let seeds = seed_schedules();
        let idb = seeds.iter().find(|s| s.name == "CVE-2017-7843").unwrap();
        let fetchy = seeds.iter().find(|s| s.name == "CVE-2018-5092").unwrap();
        let mut base = idb.clone();
        let mut rng = SimRng::new(1);
        let desc = crossover(&mut base, fetchy, &mut rng);
        assert!(desc.starts_with("crossover:CVE-2018-5092"));
        assert!(base.private_mode, "private mode survives the mix");
        assert_eq!(base.run_ms, base.run_ms.max(fetchy.run_ms));
    }
}
