//! The fuzz loop: batch-synchronous, coverage-guided search over event
//! schedules.
//!
//! Each round derives a fixed-size batch of mutants from the current
//! corpus (a pure function of the fuzz seed, round, and slot — never of
//! the worker count), evaluates the batch through the order-preserving
//! worker pool, and merges results serially in slot order. That makes the
//! whole report byte-identical under any `JSK_JOBS`, the same contract
//! the bench and chaos harnesses keep.

use crate::coverage::{evaluate, BROWSER_SEED};
use crate::minimize::minimize;
use crate::mutate::mutate;
use crate::seeds::startup_corpus;
use jsk_analyze::report::analyze;
use jsk_bench::{env_knob, pool};
use jsk_browser::mediator::LegacyMediator;
use jsk_core::{JsKernel, KernelConfig};
use jsk_sim::rng::SimRng;
use jsk_workloads::schedule::{run_schedule, Schedule};
use serde::Serialize;
use std::collections::BTreeSet;

/// Mutants per round. Fixed — not derived from `JSK_JOBS` — so the
/// candidate stream is identical however the evaluation fans out.
const BATCH: usize = 16;

/// Fuzzer knobs.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Mutation budget: total mutants to evaluate (`JSK_FUZZ_ITERS`).
    pub iters: usize,
    /// Fuzz seed driving parent choice and mutations (`JSK_FUZZ_SEED`).
    pub seed: u64,
    /// Evaluation workers (`JSK_JOBS`); never affects report bytes.
    pub jobs: usize,
    /// When false, only the seed corpus is evaluated (the recall mode the
    /// acceptance check uses).
    pub mutations: bool,
}

impl FuzzConfig {
    /// Reads `JSK_FUZZ_ITERS` (default 200), `JSK_FUZZ_SEED` (default 1),
    /// and `JSK_JOBS` through the shared knob parser — invalid values
    /// warn on stderr and fall back to the default.
    #[must_use]
    pub fn from_env() -> FuzzConfig {
        FuzzConfig {
            iters: env_knob("JSK_FUZZ_ITERS", 200),
            seed: env_knob("JSK_FUZZ_SEED", 1) as u64,
            jobs: pool::jobs(),
            mutations: true,
        }
    }
}

/// One seed-corpus evaluation, kept for the recall check: with mutations
/// disabled the fuzzer must re-discover the scanner hit of every corpus
/// program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RecallEntry {
    /// Corpus program name.
    pub name: String,
    /// Scanner patterns the raw run showed, sorted.
    pub patterns: Vec<String>,
    /// Races the raw run showed.
    pub raw_races: usize,
    /// Races the kernel run showed (must be 0).
    pub kernel_races: usize,
}

/// A minimized reproducer: either a newly discovered racy interleaving
/// (raw mode) or — far worse — a schedule that races *under the kernel*
/// (an oracle violation).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Finding {
    /// Mutant name (`parent~r<round>s<slot>` provenance).
    pub name: String,
    /// The mutation that produced it.
    pub mutation: String,
    /// Coverage features this mutant was the first to exhibit, sorted.
    pub novel: Vec<String>,
    /// Raw-trace races of the *minimized* schedule.
    pub raw_races: usize,
    /// Kernel-trace races of the *minimized* schedule.
    pub kernel_races: usize,
    /// Event count before minimization.
    pub events_before: usize,
    /// Event count after minimization.
    pub events_after: usize,
    /// The minimized schedule — corpus-entry JSON shape, directly
    /// runnable by `jsk_workloads::schedule::run_schedule`.
    pub schedule: Schedule,
}

/// The full, deterministic output of one fuzz run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FuzzReport {
    /// Fuzz seed.
    pub seed: u64,
    /// Requested mutation budget.
    pub iters: usize,
    /// Candidates actually evaluated (seeds + mutants).
    pub executed: usize,
    /// Live corpus size at exit (seeds + coverage-novel mutants).
    pub corpus_size: usize,
    /// Every coverage feature seen, sorted.
    pub coverage: Vec<String>,
    /// Per-seed recall results.
    pub recall: Vec<RecallEntry>,
    /// Minimized raw-mode findings (novel racy interleavings).
    pub findings: Vec<Finding>,
    /// Minimized kernel-mode failures. Any entry is a kernel bug; the CI
    /// fuzz-smoke job fails on a non-empty list.
    pub oracle_violations: Vec<Finding>,
}

impl FuzzReport {
    /// Deterministic pretty JSON. Field order is fixed by the struct and
    /// every vector is sorted or slot-ordered, so two runs with the same
    /// config produce identical bytes whatever `JSK_JOBS` was.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serializable")
    }
}

fn raw_races(schedule: &Schedule) -> usize {
    let b = run_schedule(schedule, Box::new(LegacyMediator), BROWSER_SEED);
    analyze(b.trace()).races.len()
}

fn kernel_races(schedule: &Schedule) -> usize {
    let b = run_schedule(
        schedule,
        Box::new(JsKernel::new(KernelConfig::hardened())),
        BROWSER_SEED,
    );
    analyze(b.trace()).races.len()
}

/// Runs the fuzzer to completion. Deterministic: `(seed, iters,
/// mutations)` fully determine the report; `jobs` only changes wall-clock
/// time.
#[must_use]
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let seeds = startup_corpus();
    let mut corpus = seeds.clone();
    let mut covered: BTreeSet<String> = BTreeSet::new();
    let mut findings = Vec::new();
    let mut oracle_violations = Vec::new();
    let mut executed = 0usize;

    // Generation 0: the startup corpus (canonical seeds, imported
    // `fuzz_corpus/` reproducers, analysis-derived witnesses), evaluated
    // in parallel and merged in corpus order.
    let seed_evals = pool::run_indexed(seeds.len(), cfg.jobs, |i| evaluate(&seeds[i]));
    let mut recall = Vec::with_capacity(seed_evals.len());
    for eval in &seed_evals {
        executed += 1;
        covered.extend(eval.features.iter().cloned());
        recall.push(RecallEntry {
            name: eval.name.clone(),
            patterns: eval.raw_patterns.clone(),
            raw_races: eval.raw_races,
            kernel_races: eval.kernel_races,
        });
        if eval.kernel_races > 0 {
            let seed_schedule = seeds
                .iter()
                .find(|s| s.name == eval.name)
                .expect("seed eval name matches a seed");
            oracle_violations.push(minimized_finding(seed_schedule, "seed", Vec::new(), true));
        }
    }

    if cfg.mutations {
        let rounds = cfg.iters.div_ceil(BATCH);
        for round in 0..rounds {
            let batch = BATCH.min(cfg.iters - round * BATCH);
            // Candidate generation is serial and corpus-order dependent —
            // exactly the state every worker count agrees on at a round
            // boundary.
            let candidates: Vec<(Schedule, String)> = (0..batch)
                .map(|slot| {
                    let mut rng = SimRng::new(cfg.seed).fork(&format!("round-{round}-slot-{slot}"));
                    let parent = &corpus[rng.index(corpus.len())];
                    mutate(parent, &corpus, &mut rng, &format!("r{round}s{slot}"))
                })
                .collect();
            let evals = pool::run_indexed(batch, cfg.jobs, |slot| evaluate(&candidates[slot].0));
            for (slot, eval) in evals.iter().enumerate() {
                executed += 1;
                let (candidate, mutation) = &candidates[slot];
                let novel: Vec<String> = eval.features.difference(&covered).cloned().collect();
                if eval.kernel_races > 0 {
                    oracle_violations.push(minimized_finding(
                        candidate,
                        mutation,
                        novel.clone(),
                        true,
                    ));
                }
                if novel.is_empty() {
                    continue;
                }
                covered.extend(novel.iter().cloned());
                if eval.raw_races > 0 {
                    findings.push(minimized_finding(candidate, mutation, novel.clone(), false));
                }
                corpus.push(candidate.clone());
            }
        }
    }

    FuzzReport {
        seed: cfg.seed,
        iters: if cfg.mutations { cfg.iters } else { 0 },
        executed,
        corpus_size: corpus.len(),
        coverage: covered.into_iter().collect(),
        recall,
        findings,
        oracle_violations,
    }
}

/// Delta-debugs `candidate` against the relevant oracle and packages the
/// reproducer.
fn minimized_finding(
    candidate: &Schedule,
    mutation: &str,
    novel: Vec<String>,
    against_kernel: bool,
) -> Finding {
    let events_before = candidate.events.len();
    let min = if against_kernel {
        minimize(candidate, |s| kernel_races(s) > 0)
    } else {
        minimize(candidate, |s| raw_races(s) > 0)
    };
    Finding {
        name: candidate.name.clone(),
        mutation: mutation.to_owned(),
        novel,
        raw_races: raw_races(&min),
        kernel_races: kernel_races(&min),
        events_before,
        events_after: min.events.len(),
        schedule: min,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(mutations: bool, jobs: usize) -> FuzzConfig {
        FuzzConfig {
            iters: 32,
            seed: 5,
            jobs,
            mutations,
        }
    }

    #[test]
    fn recall_mode_rediscovers_every_corpus_scanner_hit() {
        let report = run_fuzz(&small_cfg(false, 2));
        let canonical: Vec<&RecallEntry> = report
            .recall
            .iter()
            .filter(|e| crate::seeds::is_canonical(&e.name))
            .collect();
        assert_eq!(canonical.len(), 15);
        for entry in canonical {
            assert!(
                !entry.patterns.is_empty(),
                "{} must be re-discovered by the scanner, got no patterns",
                entry.name
            );
        }
        for entry in &report.recall {
            assert_eq!(
                entry.kernel_races, 0,
                "{} must stay race-free under the kernel",
                entry.name
            );
        }
        assert!(report.oracle_violations.is_empty());
        assert_eq!(report.executed, report.recall.len());
    }

    /// The imported `fuzz_corpus/` reproducers are first-class startup
    /// seeds: recall mode re-discovers each one as a raw-racing,
    /// kernel-clean schedule.
    #[test]
    fn recall_mode_rediscovers_the_imported_corpus_findings() {
        let report = run_fuzz(&small_cfg(false, 2));
        let imported = crate::seeds::imported_seeds();
        assert_eq!(imported.len(), 4);
        for seed in &imported {
            let entry = report
                .recall
                .iter()
                .find(|e| e.name == seed.name)
                .unwrap_or_else(|| panic!("{} missing from recall", seed.name));
            assert!(
                entry.raw_races > 0,
                "{} was minimized to a raw race and must still be one",
                entry.name
            );
            assert_eq!(entry.kernel_races, 0);
        }
        // Analysis-derived witnesses ride along too.
        assert!(report
            .recall
            .iter()
            .any(|e| e.name.contains("~predict:") && e.raw_races > 0));
    }

    #[test]
    fn fuzz_report_is_bit_identical_across_worker_counts() {
        let a = run_fuzz(&small_cfg(true, 1));
        let b = run_fuzz(&small_cfg(true, 4));
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn fuzz_knobs_read_the_environment_and_fall_back_on_garbage() {
        // No other test in this crate touches these variables, so the
        // process-global environment is safe to mutate here.
        std::env::set_var("JSK_FUZZ_ITERS", "48");
        std::env::set_var("JSK_FUZZ_SEED", "12");
        let cfg = FuzzConfig::from_env();
        assert_eq!(cfg.iters, 48);
        assert_eq!(cfg.seed, 12);

        // Invalid values warn on stderr (via the shared knob parser) and
        // fall back to the defaults instead of masquerading as config.
        std::env::set_var("JSK_FUZZ_ITERS", "lots");
        std::env::set_var("JSK_FUZZ_SEED", "-2");
        let cfg = FuzzConfig::from_env();
        assert_eq!(cfg.iters, 200);
        assert_eq!(cfg.seed, 1);

        std::env::remove_var("JSK_FUZZ_ITERS");
        std::env::remove_var("JSK_FUZZ_SEED");
        let cfg = FuzzConfig::from_env();
        assert_eq!((cfg.iters, cfg.seed), (200, 1));
        assert!(cfg.mutations);
    }

    #[test]
    fn mutation_rounds_grow_coverage_beyond_the_seeds() {
        let baseline = run_fuzz(&small_cfg(false, 2));
        let fuzzed = run_fuzz(&small_cfg(true, 2));
        assert!(fuzzed.executed > baseline.executed);
        assert!(
            fuzzed.coverage.len() >= baseline.coverage.len(),
            "coverage can only grow"
        );
        assert!(fuzzed.oracle_violations.is_empty(), "kernel must hold");
    }
}
