//! Delta-debugging minimizer: shrink a finding's event list while the
//! caller's predicate (usually "the raw run still races" or "the kernel
//! run still races") keeps holding.

use jsk_workloads::schedule::Schedule;

/// Greedy ddmin over the event list: repeatedly try dropping halves, then
/// quarters, then single events, keeping any removal that preserves
/// `still_fails`. Deterministic — removal order is index order — and
/// bounded: at most `O(events² )` predicate evaluations, in practice far
/// fewer because corpus schedules are short.
///
/// The minimized schedule keeps the input's name, resources, mode, and
/// run window; only `events` shrinks.
#[must_use]
pub fn minimize<F>(schedule: &Schedule, still_fails: F) -> Schedule
where
    F: Fn(&Schedule) -> bool,
{
    let mut best = schedule.clone();
    if !still_fails(&best) {
        // The caller's predicate does not even hold on the input; nothing
        // to minimize against.
        return best;
    }
    let mut chunk = (best.events.len() / 2).max(1);
    loop {
        let mut shrunk = false;
        let mut start = 0;
        while start < best.events.len() {
            if best.events.len() <= 1 {
                break;
            }
            let end = (start + chunk).min(best.events.len());
            let mut candidate = best.clone();
            candidate.events.drain(start..end);
            if !candidate.events.is_empty() && still_fails(&candidate) {
                best = candidate;
                shrunk = true;
                // Re-test the same start: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !shrunk {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_workloads::schedule::{ScheduleEvent, ScheduleOp};

    fn sched(ops: Vec<ScheduleOp>) -> Schedule {
        Schedule {
            name: "t".into(),
            private_mode: false,
            run_ms: 100,
            resources: Vec::new(),
            events: ops
                .into_iter()
                .map(|op| ScheduleEvent { at_ms: 0, op })
                .collect(),
        }
    }

    #[test]
    fn minimizes_to_the_single_necessary_event() {
        let s = sched(vec![
            ScheduleOp::Navigate,
            ScheduleOp::Compute { ms: 1 },
            ScheduleOp::CloseDocument,
            ScheduleOp::Compute { ms: 2 },
            ScheduleOp::Compute { ms: 3 },
        ]);
        let min = minimize(&s, |c| {
            c.events
                .iter()
                .any(|e| matches!(e.op, ScheduleOp::CloseDocument))
        });
        assert_eq!(min.events.len(), 1);
        assert!(matches!(min.events[0].op, ScheduleOp::CloseDocument));
    }

    #[test]
    fn keeps_a_necessary_pair_even_when_split_across_the_list() {
        let s = sched(vec![
            ScheduleOp::Navigate,
            ScheduleOp::Compute { ms: 1 },
            ScheduleOp::Compute { ms: 2 },
            ScheduleOp::CloseDocument,
        ]);
        let min = minimize(&s, |c| {
            let nav = c
                .events
                .iter()
                .any(|e| matches!(e.op, ScheduleOp::Navigate));
            let close = c
                .events
                .iter()
                .any(|e| matches!(e.op, ScheduleOp::CloseDocument));
            nav && close
        });
        assert_eq!(min.events.len(), 2);
    }

    #[test]
    fn input_not_matching_the_predicate_is_returned_unchanged() {
        let s = sched(vec![ScheduleOp::Navigate]);
        let min = minimize(&s, |_| false);
        assert_eq!(min, s);
    }
}
