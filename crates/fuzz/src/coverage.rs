//! Coverage fingerprinting: one candidate schedule → the set of behavior
//! features it exhibits.
//!
//! Features are plain strings so the engine's coverage map is a sorted set
//! and reports serialize stably:
//!
//! * `pattern:<PatternKind>` — scanner hit in the raw trace.
//! * `race:<target>` — happens-before race on that target in the raw trace.
//! * `deny:<rule-id>` — the kernel's policy engine denied a call under
//!   that rule (the `policy.*` decision counters).
//! * `edge:<kind>:<bucket>` — the kernel recorded 2^(bucket-1)..2^bucket
//!   happens-before edges of that kind (log₂ buckets keep the signal
//!   stable under small timing shifts).

use jsk_analyze::report::analyze;
use jsk_browser::mediator::LegacyMediator;
use jsk_browser::trace::TraceItem;
use jsk_core::{JsKernel, KernelConfig};
use jsk_workloads::schedule::{run_schedule, Schedule};
use std::collections::{BTreeMap, BTreeSet};

/// The fixed browser seed every fuzz evaluation uses. The schedule — not
/// environment noise — is the thing under test, so all candidates share
/// one simulated machine.
pub const BROWSER_SEED: u64 = 0xF0CC;

/// The outcome of evaluating one candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eval {
    /// Schedule name (copied through for reporting).
    pub name: String,
    /// The behavior fingerprint.
    pub features: BTreeSet<String>,
    /// Scanner patterns in the raw trace, deduplicated and sorted.
    pub raw_patterns: Vec<String>,
    /// Races the detector found in the raw (undefended) trace.
    pub raw_races: usize,
    /// Races the detector found in the kernel trace — any nonzero count
    /// is an oracle violation.
    pub kernel_races: usize,
}

fn log2_bucket(n: usize) -> u32 {
    usize::BITS - n.leading_zeros()
}

/// Canonicalizes a race-target debug string to its variant name:
/// `"WorkerLifecycle { worker: WorkerId(3) }"` → `"race:WorkerLifecycle"`.
/// Instance ids would otherwise mint "novel" coverage for every extra
/// worker a mutant spawns, flooding the findings list with duplicates of
/// one behavior.
fn race_feature(target_debug: &str) -> String {
    let variant = target_debug
        .split(['{', ' ', '('])
        .next()
        .unwrap_or(target_debug);
    format!("race:{variant}")
}

/// Runs `schedule` raw and under the hardened kernel, and fingerprints
/// both traces. Pure: same schedule → same [`Eval`], whatever thread runs
/// it.
#[must_use]
pub fn evaluate(schedule: &Schedule) -> Eval {
    let mut features = BTreeSet::new();

    let raw = run_schedule(schedule, Box::new(LegacyMediator), BROWSER_SEED);
    let raw_report = analyze(raw.trace());
    let mut raw_patterns: BTreeSet<String> = BTreeSet::new();
    for p in &raw_report.patterns {
        raw_patterns.insert(format!("{:?}", p.kind));
        features.insert(format!("pattern:{:?}", p.kind));
    }
    for r in &raw_report.races {
        features.insert(race_feature(&format!("{:?}", r.target)));
    }

    let kernel = run_schedule(
        schedule,
        Box::new(JsKernel::new(KernelConfig::hardened())),
        BROWSER_SEED,
    );
    let kernel_report = analyze(kernel.trace());
    if let Some(k) = kernel.mediator_as::<JsKernel>() {
        for rule in k.stats().denials.keys() {
            features.insert(format!("deny:{rule}"));
        }
    }
    let mut edge_counts: BTreeMap<String, usize> = BTreeMap::new();
    for e in kernel.trace().entries() {
        if let TraceItem::Edge(edge) = e.item {
            *edge_counts.entry(format!("{:?}", edge.kind)).or_insert(0) += 1;
        }
    }
    for (kind, count) in edge_counts {
        features.insert(format!("edge:{kind}:{}", log2_bucket(count)));
    }

    Eval {
        name: schedule.name.clone(),
        features,
        raw_patterns: raw_patterns.into_iter().collect(),
        raw_races: raw_report.races.len(),
        kernel_races: kernel_report.races.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_workloads::schedule::seed_schedules;

    #[test]
    fn log2_buckets_are_monotone_and_coarse() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(40), 6);
        assert_eq!(log2_bucket(63), 6);
        assert_eq!(log2_bucket(64), 7);
    }

    #[test]
    fn evaluation_is_a_pure_function_of_the_schedule() {
        let s = &seed_schedules()[4]; // CVE-2014-1719: cheap and racy
        let a = evaluate(s);
        let b = evaluate(s);
        assert_eq!(a, b);
        assert!(!a.features.is_empty());
    }

    #[test]
    fn listing1_fingerprint_spans_all_signal_classes() {
        let seeds = seed_schedules();
        let listing1 = seeds.iter().find(|s| s.name == "listing-1").unwrap();
        let eval = evaluate(listing1);
        assert!(
            eval.features.iter().any(|f| f.starts_with("pattern:")),
            "raw scanner hit expected: {:?}",
            eval.features
        );
        assert!(
            eval.features.iter().any(|f| f.starts_with("edge:")),
            "kernel happens-before edges expected: {:?}",
            eval.features
        );
        assert_eq!(eval.kernel_races, 0, "kernel run must stay race-free");
    }
}
