//! Regression tests over the committed fuzz findings.
//!
//! Each file under `fuzz_corpus/` is a minimized reproducer the fuzzer
//! discovered (provenance in the name: `parent~r<round>s<slot>`). The
//! named tests pin the first findings ever committed; the sweep test keeps
//! every future corpus entry honest too. The contract per entry: the raw
//! browser still races, the hardened kernel still does not.

use jsk_browser::mediator::LegacyMediator;
use jsk_core::{JsKernel, KernelConfig};
use jsk_fuzz::{evaluate, BROWSER_SEED};
use jsk_workloads::schedule::{run_schedule, Schedule};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fuzz_corpus")
}

fn load(file: &str) -> Schedule {
    let path = corpus_dir().join(file);
    let json =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    Schedule::from_json(&json).expect("corpus entry parses")
}

fn assert_reproduces(schedule: &Schedule) {
    let raw = run_schedule(schedule, Box::new(LegacyMediator), BROWSER_SEED);
    let raw_races = jsk_analyze::report::analyze(raw.trace()).races.len();
    assert!(
        raw_races > 0,
        "{}: minimized reproducer no longer races raw",
        schedule.name
    );
    let kernel = run_schedule(
        schedule,
        Box::new(JsKernel::new(KernelConfig::hardened())),
        BROWSER_SEED,
    );
    let kernel_races = jsk_analyze::report::analyze(kernel.trace()).races.len();
    assert_eq!(
        kernel_races, 0,
        "{}: the kernel must keep defeating this reproducer",
        schedule.name
    );
}

// The first four findings the fuzzer minimized (seed 1, 200 iterations):
// worker-lifecycle races between a 1 ms ticker worker and navigation, and
// fetch-vs-close races from the CVE-2018-5092 lineage, each reduced to
// two events.

#[test]
fn ticker_worker_races_navigation() {
    assert_reproduces(&load("CVE-2014-3194_r0s1.json"));
}

#[test]
fn delayed_ticker_worker_still_races_navigation() {
    assert_reproduces(&load("CVE-2014-3194_r0s1_r2s6.json"));
}

#[test]
fn fetch_races_document_close() {
    assert_reproduces(&load("CVE-2018-5092_r0s13.json"));
}

#[test]
fn duplicated_fetch_races_document_close() {
    assert_reproduces(&load("CVE-2018-5092_r0s13_r8s7.json"));
}

#[test]
fn every_committed_corpus_entry_reproduces_and_roundtrips() {
    let mut seen = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("fuzz_corpus/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        seen += 1;
        let json = std::fs::read_to_string(&path).expect("readable corpus entry");
        let schedule =
            Schedule::from_json(&json).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            Schedule::from_json(&schedule.to_json()).expect("roundtrip"),
            schedule,
            "{}: JSON roundtrip must be lossless",
            path.display()
        );
        assert_reproduces(&schedule);
        // The fingerprint is pure, so committed entries stay evaluable by
        // future fuzz runs as corpus imports.
        let eval = evaluate(&schedule);
        assert!(!eval.features.is_empty(), "{}", path.display());
    }
    assert!(seen >= 4, "expected the committed findings, saw {seen}");
}
