//! A typed client over any [`Transport`]: speaks the handshake, queues
//! submissions, flushes, scrapes metrics. Thin by design — it never
//! interprets verdicts, it just moves typed frames — so tests can diff
//! its outputs against direct pool submission without a client-side
//! confound.

use crate::job::Submission;
use crate::protocol::{parse_response, request_payload, Request, Response, PROTOCOL_VERSION};
use crate::transport::{ClientConn, Transport};
use std::io;

/// A connected protocol client.
pub struct Client {
    conn: Box<dyn ClientConn>,
}

impl Client {
    /// Connects through `transport` and completes the `hello` handshake.
    /// Fails if the server refuses the version.
    pub fn connect(transport: &dyn Transport) -> io::Result<Client> {
        let mut client = Client {
            conn: transport.connect()?,
        };
        match client.request(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::HelloOk { .. } => Ok(client),
            Response::Error { code, message } => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("handshake refused ({code}): {message}"),
            )),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends one request and reads one response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        self.conn.write_payload(&request_payload(req))?;
        self.read_response()
    }

    /// Reads the next response frame.
    pub fn read_response(&mut self) -> io::Result<Response> {
        match self.conn.read_payload()? {
            Some(p) => parse_response(&p)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-conversation",
            )),
        }
    }

    /// Submits one site; returns `Queued`, `Shed`, or `Error`.
    pub fn submit(&mut self, sub: &Submission) -> io::Result<Response> {
        self.request(&Request::SubmitSite {
            site: sub.site.clone(),
            seed: sub.seed,
            policy: sub.policy.clone(),
            schedule: sub.schedule.clone(),
            deadline_ms: sub.deadline_ms,
        })
    }

    /// Cancels queued submissions for `site`.
    pub fn cancel(&mut self, site: &str) -> io::Result<Response> {
        self.request(&Request::Cancel { site: site.into() })
    }

    /// Flushes the queue: returns every per-site response, ending with
    /// the `FlushOk` summary (always the last element on success).
    pub fn flush(&mut self) -> io::Result<Vec<Response>> {
        self.conn.write_payload(&request_payload(&Request::Flush))?;
        let mut out = Vec::new();
        loop {
            let resp = self.read_response()?;
            let done = matches!(resp, Response::FlushOk { .. });
            out.push(resp);
            if done {
                return Ok(out);
            }
        }
    }

    /// Scrapes the `/metrics`-style text page.
    pub fn metrics_page(&mut self) -> io::Result<String> {
        match self.request(&Request::Metrics)? {
            Response::MetricsPage { text } => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Says goodbye and confirms the close.
    pub fn bye(&mut self) -> io::Result<()> {
        match self.request(&Request::Bye)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    )
}
