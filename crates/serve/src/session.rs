//! One connection's protocol state machine, transport-agnostic.
//!
//! A [`Session`] consumes raw stream bytes ([`Session::on_bytes`]) and
//! produces encoded response frames; the transport's only duties are
//! moving bytes and honouring [`Session::is_closed`]. The same state
//! machine therefore backs both the deterministic in-process loopback and
//! the TCP connection threads — which is what makes "the wire adds no
//! semantics" testable.
//!
//! The lifecycle: `hello` first (anything else is fatal), then any mix of
//! `submit_site` / `cancel` / `metrics`, then `flush` to serve the queued
//! batch through the shard pool in one call — submission order equals job
//! order, so shard homing (`i % shards`) matches what direct submission
//! would do, byte for byte. Framing errors kill the connection (the
//! stream offset is gone); semantic errors (`unknown policy`, oversize
//! schedule, draining server) earn an `Error` response and the
//! connection lives.

use crate::job::{submission_job, validate, Submission};
use crate::protocol::{
    encode_frame, parse_request, FrameDecoder, Request, Response, PROTOCOL_VERSION,
};
use crate::server::Server;
use jsk_shard::serve::{ServeReport, SiteOutcome};
use std::sync::Arc;

/// One connection's state. Built by [`Session::new`]; driven by a
/// transport.
pub struct Session {
    server: Arc<Server>,
    decoder: FrameDecoder,
    queue: Vec<Submission>,
    hello_done: bool,
    closed: bool,
}

impl Session {
    /// Opens a session against the server (counts as a connection).
    #[must_use]
    pub fn new(server: Arc<Server>) -> Session {
        server.with_wire(|w| w.connections += 1);
        let max_frame = server.config().max_frame_len;
        Session {
            server,
            decoder: FrameDecoder::new(max_frame),
            queue: Vec::new(),
            hello_done: false,
            closed: false,
        }
    }

    /// Whether the connection is finished (clean `bye`, fatal error, or
    /// drain). A closed session ignores further bytes; the transport
    /// should close the stream.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Submissions queued and not yet flushed.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Feeds raw stream bytes; returns the encoded response frames to
    /// write back, in order.
    pub fn on_bytes(&mut self, bytes: &[u8]) -> Vec<Vec<u8>> {
        if self.closed {
            return Vec::new();
        }
        self.decoder.push(bytes);
        let mut out = Vec::new();
        while !self.closed {
            match self.decoder.next_payload() {
                Ok(None) => break,
                Ok(Some(payload)) => match parse_request(&payload) {
                    Ok(req) => {
                        self.server.with_wire(|w| w.frames += 1);
                        for resp in self.handle(req) {
                            out.push(encode_frame(&crate::protocol::response_payload(&resp)));
                        }
                    }
                    Err(e) => {
                        // Well-framed but not a request: the peer speaks
                        // something else. Fatal for the connection — and
                        // only the connection.
                        self.server.with_wire(|w| w.malformed += 1);
                        out.push(error_frame("request", &e.to_string()));
                        self.close_dropping_queue();
                    }
                },
                Err(e) => {
                    self.server.with_wire(|w| w.malformed += 1);
                    out.push(error_frame("frame", &e.to_string()));
                    self.close_dropping_queue();
                }
            }
        }
        out
    }

    /// The transport saw the peer disconnect: account for whatever was
    /// still queued.
    pub fn on_close(&mut self) {
        if !self.closed {
            self.close_dropping_queue();
        }
    }

    /// Server-initiated drain: flush whatever is queued (in-flight work
    /// finishes; the pool writes off the rest accountably), say `bye`,
    /// close. Returns the frames to deliver before the transport closes
    /// the stream.
    pub fn drain(&mut self) -> Vec<Vec<u8>> {
        if self.closed {
            return Vec::new();
        }
        let mut out = Vec::new();
        if !self.queue.is_empty() {
            for resp in self.flush() {
                out.push(encode_frame(&crate::protocol::response_payload(&resp)));
            }
        }
        out.push(encode_frame(&crate::protocol::response_payload(
            &Response::Bye,
        )));
        self.server.with_wire(|w| w.drained_sessions += 1);
        self.closed = true;
        out
    }

    fn close_dropping_queue(&mut self) {
        let dropped = self.queue.len() as u64;
        if dropped > 0 {
            self.server.with_wire(|w| w.dropped_on_close += dropped);
            self.queue.clear();
        }
        self.closed = true;
    }

    fn handle(&mut self, req: Request) -> Vec<Response> {
        if !self.hello_done && !matches!(req, Request::Hello { .. }) {
            self.close_dropping_queue();
            return vec![Response::Error {
                code: "hello_first".into(),
                message: "the first frame must be hello".into(),
            }];
        }
        match req {
            Request::Hello { version } => {
                if version != PROTOCOL_VERSION {
                    self.close_dropping_queue();
                    return vec![Response::Error {
                        code: "version".into(),
                        message: format!(
                            "client speaks v{version}, server speaks v{PROTOCOL_VERSION}"
                        ),
                    }];
                }
                self.hello_done = true;
                vec![Response::HelloOk {
                    version: PROTOCOL_VERSION,
                    shards: self.server.config().serve.shards.max(1) as u64,
                    queue_capacity: self.server.config().queue_capacity as u64,
                }]
            }
            Request::SubmitSite {
                site,
                seed,
                policy,
                schedule,
                deadline_ms,
            } => {
                if self.server.is_draining() {
                    return vec![Response::Error {
                        code: "draining".into(),
                        message: "server is draining; not accepting submissions".into(),
                    }];
                }
                let sub = Submission {
                    site,
                    seed,
                    policy,
                    schedule,
                    deadline_ms,
                };
                if let Err((code, message)) = validate(&sub) {
                    return vec![Response::Error { code, message }];
                }
                let cap = self.server.config().queue_capacity;
                if cap > 0 && self.queue.len() >= cap {
                    self.server.with_wire(|w| w.sheds += 1);
                    return vec![Response::Shed {
                        site: sub.site,
                        stage: "queue".into(),
                    }];
                }
                self.server.with_wire(|w| w.submits += 1);
                let site = sub.site.clone();
                self.queue.push(sub);
                vec![Response::Queued {
                    site,
                    depth: self.queue.len() as u64,
                }]
            }
            Request::Cancel { site } => {
                let before = self.queue.len();
                self.queue.retain(|s| s.site != site);
                let removed = (before - self.queue.len()) as u64;
                if removed == 0 {
                    return vec![Response::Error {
                        code: "not_found".into(),
                        message: format!("no queued submission for site {site:?}"),
                    }];
                }
                self.server.with_wire(|w| w.cancels += removed);
                vec![Response::Cancelled { site, removed }]
            }
            Request::Flush => self.flush(),
            Request::Metrics => vec![Response::MetricsPage {
                text: self.server.metrics_page(),
            }],
            Request::Bye => {
                self.close_dropping_queue();
                vec![Response::Bye]
            }
        }
    }

    /// Serves the queued batch through the pool and maps the report back
    /// to per-submission responses, in submission order, closing with a
    /// `flush_ok` summary.
    fn flush(&mut self) -> Vec<Response> {
        let subs = std::mem::take(&mut self.queue);
        if subs.is_empty() {
            return vec![Response::FlushOk {
                served: 0,
                shed: 0,
                quarantined: 0,
                cancelled: 0,
                deadline_missed: 0,
            }];
        }
        let jobs = subs.iter().map(submission_job).collect();
        let report = self
            .server
            .pool()
            .serve_with_cancel(jobs, self.server.cancel_flag());
        self.server.merge_site_metrics(&report.fleet_metrics);
        self.server.with_wire(|w| w.flushes += 1);

        let mut out = Vec::with_capacity(subs.len() + 1);
        let (mut served, mut shed, mut quarantined, mut cancelled, mut missed) = (0, 0, 0, 0, 0);
        for (i, row_shard, row) in report_rows(&report, subs.len()) {
            let sub = &subs[i];
            debug_assert_eq!(row.site, sub.site, "row {i} out of order");
            match &row.outcome {
                SiteOutcome::Served {
                    defended,
                    detail,
                    wedged,
                } => {
                    if sub.deadline_ms > 0 && row.completed_at_ms > sub.deadline_ms {
                        missed += 1;
                        self.server.with_wire(|w| w.deadline_missed += 1);
                        out.push(Response::Error {
                            code: "deadline".into(),
                            message: format!(
                                "site {:?} completed at {} virtual ms, past its {} ms deadline",
                                row.site, row.completed_at_ms, sub.deadline_ms
                            ),
                        });
                    } else {
                        served += 1;
                        self.server.with_wire(|w| w.verdicts += 1);
                        out.push(Response::Verdict {
                            site: row.site.clone(),
                            seed: row.seed,
                            policy: sub.policy.clone(),
                            shard: row_shard,
                            defended: *defended,
                            detail: detail.clone(),
                            wedged: *wedged,
                            attempts: row.attempts,
                            completed_at_ms: row.completed_at_ms,
                        });
                    }
                }
                SiteOutcome::Shed => {
                    shed += 1;
                    self.server.with_wire(|w| w.sheds += 1);
                    out.push(Response::Shed {
                        site: row.site.clone(),
                        stage: "shard".into(),
                    });
                }
                SiteOutcome::Quarantined => {
                    quarantined += 1;
                    out.push(Response::Error {
                        code: "quarantined".into(),
                        message: format!(
                            "site {:?} written off: its shard exhausted the restart budget",
                            row.site
                        ),
                    });
                }
                SiteOutcome::Cancelled => {
                    cancelled += 1;
                    out.push(Response::Cancelled {
                        site: row.site.clone(),
                        removed: 1,
                    });
                }
            }
        }
        out.push(Response::FlushOk {
            served,
            shed,
            quarantined,
            cancelled,
            deadline_missed: missed,
        });
        out
    }
}

/// Encodes a standalone error frame (used on paths where the session is
/// about to die and a typed response list is overkill).
fn error_frame(code: &str, message: &str) -> Vec<u8> {
    encode_frame(&crate::protocol::response_payload(&Response::Error {
        code: code.into(),
        message: message.into(),
    }))
}

/// Walks a report back into submission order: submission `i` homed on
/// shard `i % shards`, and each shard's rows keep submission order, so
/// per-shard cursors reconstruct the original sequence exactly.
fn report_rows(
    report: &ServeReport,
    submitted: usize,
) -> impl Iterator<Item = (usize, u64, &jsk_shard::serve::SiteReport)> {
    let n = report.shards.len().max(1);
    let mut cursors = vec![0usize; n];
    (0..submitted).map(move |i| {
        let s = i % n;
        let row = &report.shards[s].sites[cursors[s]];
        cursors[s] += 1;
        (i, s as u64, row)
    })
}
