//! Transports: how bytes reach a [`Session`].
//!
//! Two implementations of the same [`Transport`] seam:
//!
//! * [`LoopbackTransport`] — fully synchronous and in-process: a client
//!   write runs the session state machine inline and buffers the
//!   responses for the next read. No threads, no sockets, no timing —
//!   every protocol test and the CI smoke run are deterministic.
//! * [`TcpTransport`] / [`TcpServer`] — `std::net` over
//!   thread-per-connection with a bounded accept pool. The server polls a
//!   non-blocking listener so [`TcpServer::shutdown`] can stop accepting,
//!   drain every live session (deliver queued results, say `bye`), join
//!   its threads, and hand back the final metrics page.
//!
//! Both feed the identical [`Session`]; the loopback-vs-direct corpus
//! test is what entitles the TCP path to that trust.

use crate::protocol::{encode_frame, FrameDecoder};
use crate::server::Server;
use crate::session::Session;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A client-side connection: write request payloads, read response
/// payloads (both without framing — the connection frames).
pub trait ClientConn {
    /// Sends one request payload.
    fn write_payload(&mut self, payload: &str) -> io::Result<()>;
    /// Receives the next response payload; `None` when the peer closed.
    fn read_payload(&mut self) -> io::Result<Option<String>>;
}

/// Something a client can connect through.
pub trait Transport {
    /// Opens a connection.
    fn connect(&self) -> io::Result<Box<dyn ClientConn>>;
}

/// Deterministic in-process transport over a shared [`Server`].
#[derive(Clone)]
pub struct LoopbackTransport {
    server: Arc<Server>,
}

impl LoopbackTransport {
    /// A loopback front door over `server`.
    #[must_use]
    pub fn new(server: Arc<Server>) -> LoopbackTransport {
        LoopbackTransport { server }
    }
}

impl Transport for LoopbackTransport {
    fn connect(&self) -> io::Result<Box<dyn ClientConn>> {
        Ok(Box::new(LoopbackConn {
            session: Session::new(self.server.clone()),
            decoder: FrameDecoder::new(0),
            inbox: VecDeque::new(),
        }))
    }
}

/// One loopback connection: the session runs inline in the caller.
struct LoopbackConn {
    session: Session,
    decoder: FrameDecoder,
    inbox: VecDeque<String>,
}

impl ClientConn for LoopbackConn {
    fn write_payload(&mut self, payload: &str) -> io::Result<()> {
        if self.session.is_closed() {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection closed",
            ));
        }
        for frame in self.session.on_bytes(&encode_frame(payload)) {
            self.decoder.push(&frame);
            while let Some(p) = self
                .decoder
                .next_payload()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            {
                self.inbox.push_back(p);
            }
        }
        Ok(())
    }

    fn read_payload(&mut self) -> io::Result<Option<String>> {
        Ok(self.inbox.pop_front())
    }
}

/// TCP client transport: connects to a [`TcpServer`]'s address.
pub struct TcpTransport {
    addr: SocketAddr,
}

impl TcpTransport {
    /// A transport dialling `addr`.
    pub fn new(addr: impl ToSocketAddrs) -> io::Result<TcpTransport> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        Ok(TcpTransport { addr })
    }
}

impl Transport for TcpTransport {
    fn connect(&self) -> io::Result<Box<dyn ClientConn>> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        Ok(Box::new(TcpConn {
            stream,
            decoder: FrameDecoder::new(0),
        }))
    }
}

/// One TCP client connection (blocking reads).
struct TcpConn {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl ClientConn for TcpConn {
    fn write_payload(&mut self, payload: &str) -> io::Result<()> {
        self.stream.write_all(&encode_frame(payload))
    }

    fn read_payload(&mut self) -> io::Result<Option<String>> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(p) = self
                .decoder
                .next_payload()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            {
                return Ok(Some(p));
            }
            match self.stream.read(&mut buf) {
                Ok(0) => return Ok(None),
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(e) => return Err(e),
            }
        }
    }
}

/// How often connection threads and the accept loop poll their flags.
const POLL: Duration = Duration::from_millis(10);

/// The TCP front door: a bound listener, an accept loop, and a bounded
/// pool of connection threads.
pub struct TcpServer {
    server: Arc<Server>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting for `server`.
    pub fn bind(server: Arc<Server>, addr: impl ToSocketAddrs) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let live = Arc::new(AtomicUsize::new(0));

        let accept = {
            let server = server.clone();
            let stop = stop.clone();
            let conns = conns.clone();
            std::thread::spawn(move || {
                accept_loop(&listener, &server, &stop, &conns, &live);
            })
        };
        Ok(TcpServer {
            server,
            addr,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful drain: stop accepting, finish in-flight work, deliver
    /// queued results and `bye` to every live connection, join all
    /// threads, and return the final metrics page — the flush of record.
    pub fn shutdown(mut self) -> String {
        self.server.begin_drain();
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().expect("conn registry"));
        for h in handles {
            let _ = h.join();
        }
        self.server.metrics_page()
    }
}

/// Polls the non-blocking listener until stopped or draining; spawns one
/// thread per accepted connection, refusing past the configured bound.
fn accept_loop(
    listener: &TcpListener,
    server: &Arc<Server>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    live: &Arc<AtomicUsize>,
) {
    loop {
        if stop.load(Ordering::Acquire) || server.is_draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let max = server.config().max_conns;
                if max > 0 && live.load(Ordering::Acquire) >= max {
                    refuse_busy(stream);
                    continue;
                }
                live.fetch_add(1, Ordering::AcqRel);
                let server = server.clone();
                let live = live.clone();
                let handle = std::thread::spawn(move || {
                    conn_thread(&server, stream);
                    live.fetch_sub(1, Ordering::AcqRel);
                });
                conns.lock().expect("conn registry").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => return,
        }
    }
}

/// Tells an over-capacity client why it is being dropped. Best-effort:
/// the refusal itself must never take the accept loop down.
fn refuse_busy(mut stream: TcpStream) {
    let payload = crate::protocol::response_payload(&crate::protocol::Response::Error {
        code: "busy".into(),
        message: "connection limit reached; retry later".into(),
    });
    let _ = stream.write_all(&encode_frame(&payload));
}

/// One connection thread: shuttle bytes between the socket and the
/// session until the peer leaves, the session dies, or a drain begins.
fn conn_thread(server: &Arc<Server>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut session = Session::new(server.clone());
    let mut buf = [0u8; 4096];
    loop {
        if session.is_closed() {
            return;
        }
        if server.is_draining() {
            for frame in session.drain() {
                if stream.write_all(&frame).is_err() {
                    return;
                }
            }
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                session.on_close();
                return;
            }
            Ok(n) => {
                for frame in session.on_bytes(&buf[..n]) {
                    if stream.write_all(&frame).is_err() {
                        session.on_close();
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => {
                session.on_close();
                return;
            }
        }
    }
}
