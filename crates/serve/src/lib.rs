//! The wire front door over the shard pool: JSKernel as a service.
//!
//! `jsk-shard` (PR 6) proved per-site kernel shards can serve a fleet
//! under supervision, admission control, and cross-shard faults — but
//! only for in-process `SiteJob` submission. This crate is step 2 of the
//! serving story: a long-running [`Server`] that accepts **event
//! schedules over a wire protocol** and feeds the exact same `SiteJob`
//! seam, so the wire adds framing, backpressure, and observability while
//! the results stay a pure function of `(jobs, fault plan)`. The
//! corpus-diff test (`tests/wire_corpus.rs`) pins that claim byte for
//! byte.
//!
//! * [`protocol`] — length-prefixed NDJSON frames and the typed
//!   request/response vocabulary (`docs/PROTOCOL.md` is the spec).
//! * [`job`] — wire submissions to `SiteJob`s: policy-name resolution,
//!   admission validation, the purity contract.
//! * [`session`] — the per-connection state machine: `hello` handshake,
//!   bounded submission queue with `shed` backpressure, `flush` through
//!   the pool, per-request virtual deadlines, cancellation, drain.
//! * [`server`] — shared state: the pool, the drain lifecycle, cumulative
//!   site metrics and `serve.*` wire counters, the `/metrics` text page.
//! * [`transport`] — [`LoopbackTransport`] (deterministic, in-process;
//!   what CI runs) and [`TcpTransport`]/[`TcpServer`] (`std::net`,
//!   thread-per-connection over a bounded accept pool).
//! * [`client`] — a typed client over either transport.
//!
//! # Quickstart
//!
//! ```
//! use jsk_serve::{Client, LoopbackTransport, Server, ServerConfig, Submission};
//!
//! let server = Server::new(ServerConfig::new(2, 2));
//! let transport = LoopbackTransport::new(server.clone());
//! let mut client = Client::connect(&transport).unwrap();
//! let schedule = jsk_workloads::schedule::corpus_schedules().remove(1);
//! client
//!     .submit(&Submission {
//!         site: schedule.name.clone(),
//!         seed: 7,
//!         policy: "kernel".into(),
//!         schedule,
//!         deadline_ms: 0,
//!     })
//!     .unwrap();
//! let results = client.flush().unwrap();
//! assert_eq!(results.len(), 2); // one verdict + the flush_ok summary
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod job;
pub mod protocol;
pub mod server;
pub mod session;
pub mod transport;

pub use client::Client;
pub use job::{policy_kind, submission_job, Submission};
pub use protocol::{Request, Response, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig, WireStats};
pub use session::Session;
pub use transport::{LoopbackTransport, TcpServer, TcpTransport, Transport};
