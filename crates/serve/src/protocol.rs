//! The wire protocol: length-prefixed NDJSON frames and the typed
//! request/response vocabulary. `docs/PROTOCOL.md` is the normative spec;
//! every frame shape documented there round-trips through this module
//! (pinned by `tests/protocol_spec.rs`).
//!
//! # Frame layout
//!
//! ```text
//! <payload length in ASCII decimal>\n
//! <payload: one line of compact JSON, exactly that many bytes>\n
//! ```
//!
//! The decoder is incremental ([`FrameDecoder::push`] bytes in any
//! chunking, [`FrameDecoder::next_payload`] yields complete payloads) and
//! strict: a non-digit length, an over-long header, a payload past the
//! configured bound, a missing `\n` terminator, or non-UTF-8 payload bytes
//! are all [`FrameError`]s — and a frame error **kills the connection**
//! (the stream offset can no longer be trusted), while a well-framed but
//! semantically invalid request only earns an [`Response::Error`].

use serde::{Deserialize, Serialize};
use serde_json;

/// Protocol version spoken by this build. [`Request::Hello`] carries the
/// client's version; any mismatch is rejected with an
/// [`Response::Error`] (`code = "version"`) and a close — the versioning
/// rule is "bump on any wire-visible change, no silent skew".
pub const PROTOCOL_VERSION: u32 = 1;

/// Default bound on one frame's payload, in bytes.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Longest accepted length header (digits before the first `\n`) —
/// generous for any length the payload bound allows.
const MAX_HEADER_DIGITS: usize = 10;

/// Why a byte stream stopped being a frame stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length header was empty, over-long, or not ASCII digits.
    BadLength(String),
    /// The declared payload length exceeds the configured bound.
    Oversize {
        /// Declared payload length.
        len: usize,
        /// The decoder's bound.
        max: usize,
    },
    /// The byte after the payload was not `\n`.
    BadTerminator,
    /// The payload was not UTF-8, or not the expected JSON shape.
    BadPayload(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadLength(h) => write!(f, "bad frame length header {h:?}"),
            FrameError::Oversize { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte bound"
                )
            }
            FrameError::BadTerminator => write!(f, "frame payload not terminated by a newline"),
            FrameError::BadPayload(m) => write!(f, "bad frame payload: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one payload line as a wire frame.
#[must_use]
pub fn encode_frame(payload: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(payload.len().to_string().as_bytes());
    out.push(b'\n');
    out.extend_from_slice(payload.as_bytes());
    out.push(b'\n');
    out
}

/// Incremental frame decoder over a byte stream.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    max: usize,
}

impl FrameDecoder {
    /// A decoder bounding payloads at `max_frame` bytes (0 means
    /// [`DEFAULT_MAX_FRAME`]).
    #[must_use]
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            max: if max_frame == 0 {
                DEFAULT_MAX_FRAME
            } else {
                max_frame
            },
        }
    }

    /// Appends raw stream bytes in whatever chunking the transport read.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Yields the next complete payload, `Ok(None)` when more bytes are
    /// needed. After any `Err` the stream is unrecoverable — the caller
    /// must drop the connection.
    pub fn next_payload(&mut self) -> Result<Option<String>, FrameError> {
        let Some(nl) = self.buf.iter().position(|&b| b == b'\n') else {
            if self.buf.len() > MAX_HEADER_DIGITS {
                return Err(FrameError::BadLength(
                    String::from_utf8_lossy(&self.buf[..MAX_HEADER_DIGITS]).into_owned(),
                ));
            }
            return Ok(None);
        };
        let header = &self.buf[..nl];
        if header.is_empty()
            || header.len() > MAX_HEADER_DIGITS
            || !header.iter().all(u8::is_ascii_digit)
        {
            return Err(FrameError::BadLength(
                String::from_utf8_lossy(header).into_owned(),
            ));
        }
        let len: usize = String::from_utf8_lossy(header)
            .parse()
            .map_err(|_| FrameError::BadLength(String::from_utf8_lossy(header).into_owned()))?;
        if len > self.max {
            return Err(FrameError::Oversize { len, max: self.max });
        }
        let total = nl + 1 + len + 1;
        if self.buf.len() < total {
            return Ok(None);
        }
        if self.buf[total - 1] != b'\n' {
            return Err(FrameError::BadTerminator);
        }
        let payload = std::str::from_utf8(&self.buf[nl + 1..total - 1])
            .map_err(|_| FrameError::BadPayload("payload is not UTF-8".to_owned()))?
            .to_owned();
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

/// Every frame a client may send. Encoded externally tagged, snake_case:
/// `{"submit_site": {...}}`, `"flush"`, `"metrics"`, `"bye"`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Request {
    /// Opens the conversation; must be the first frame on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Queues one site for the next flush.
    SubmitSite {
        /// Site label (unique per connection batch for readable reports).
        site: String,
        /// Seed for the site's run — results are a pure function of
        /// (schedule, policy, seed).
        seed: u64,
        /// Policy name (see `jsk_serve::job::policy_names`).
        policy: String,
        /// The event schedule to run (`jsk_workloads::schedule`).
        schedule: jsk_workloads::schedule::Schedule,
        /// Virtual-deadline in milliseconds on the serving shard's
        /// timeline; 0 = none. A served site completing past it is
        /// reported as an `Error` (`code = "deadline"`) instead of a
        /// verdict.
        #[serde(default)]
        deadline_ms: u64,
    },
    /// Removes every queued (not yet flushed) submission with this site
    /// label.
    Cancel {
        /// Site label to remove.
        site: String,
    },
    /// Serves everything queued through the shard pool and streams the
    /// results back in submission order.
    Flush,
    /// Requests the `/metrics`-style text page.
    Metrics,
    /// Closes the connection cleanly; queued submissions are dropped.
    Bye,
}

/// Every frame the server may send.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Response {
    /// Answer to [`Request::Hello`].
    HelloOk {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
        /// Kernel shards behind this front door.
        shards: u64,
        /// Per-connection queue bound (0 = unbounded).
        queue_capacity: u64,
    },
    /// A submission was accepted into the connection queue.
    Queued {
        /// The submitted site.
        site: String,
        /// Queue depth after the submit.
        depth: u64,
    },
    /// One served site's result, streamed during a flush.
    Verdict {
        /// Site label.
        site: String,
        /// The submission's seed.
        seed: u64,
        /// The submission's policy name.
        policy: String,
        /// The shard that served it.
        shard: u64,
        /// Attack verdict (`null` for plain workloads).
        defended: Option<bool>,
        /// The run's deterministic record.
        detail: String,
        /// Whether graceful degradation had to step in.
        wedged: bool,
        /// Run attempts (crash-restart reruns included).
        attempts: u32,
        /// Virtual completion instant on the shard timeline.
        completed_at_ms: u64,
    },
    /// A submission was load-shed: `stage = "queue"` at the connection's
    /// bounded queue, `stage = "shard"` at the pool's admission control.
    Shed {
        /// The shed site.
        site: String,
        /// Which backpressure layer shed it.
        stage: String,
    },
    /// Queued submissions were removed by a cancel or a drain.
    Cancelled {
        /// The cancelled site.
        site: String,
        /// How many queued submissions were removed.
        removed: u64,
    },
    /// Flush summary, sent after the last per-site result.
    FlushOk {
        /// Sites served to completion.
        served: u64,
        /// Sites shed by the pool during this flush.
        shed: u64,
        /// Sites written off by shard quarantine.
        quarantined: u64,
        /// Sites cancelled by a drain racing the flush.
        cancelled: u64,
        /// Served sites reported as deadline misses.
        deadline_missed: u64,
    },
    /// The `/metrics`-style exposition page.
    MetricsPage {
        /// The rendered page (`jsk_observe::text::render_text`).
        text: String,
    },
    /// A request failed. `code` is machine-readable: `version`,
    /// `hello_first`, `policy`, `invalid`, `draining`, `not_found`,
    /// `deadline`, `quarantined`, `frame`, `request`, `busy`.
    Error {
        /// Machine-readable error class.
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// Clean close acknowledgement (also sent when a drain finishes a
    /// connection).
    Bye,
}

/// Serializes a request to its compact one-line payload.
#[must_use]
pub fn request_payload(req: &Request) -> String {
    serde_json::to_string(req).expect("request serializes")
}

/// Serializes a response to its compact one-line payload.
#[must_use]
pub fn response_payload(resp: &Response) -> String {
    serde_json::to_string(resp).expect("response serializes")
}

/// Parses a request payload.
pub fn parse_request(payload: &str) -> Result<Request, FrameError> {
    serde_json::from_str(payload).map_err(|e| FrameError::BadPayload(e.to_string()))
}

/// Parses a response payload.
pub fn parse_response(payload: &str) -> Result<Response, FrameError> {
    serde_json::from_str(payload).map_err(|e| FrameError::BadPayload(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_in_any_chunking() {
        let payload = r#"{"hello":{"version":1}}"#;
        let bytes = encode_frame(payload);
        for chunk in [1usize, 2, 7, bytes.len()] {
            let mut dec = FrameDecoder::new(0);
            let mut got = Vec::new();
            for part in bytes.chunks(chunk) {
                dec.push(part);
                while let Some(p) = dec.next_payload().expect("clean stream") {
                    got.push(p);
                }
            }
            assert_eq!(got, vec![payload.to_owned()], "chunk size {chunk}");
        }
    }

    #[test]
    fn two_frames_in_one_push_both_decode() {
        let mut dec = FrameDecoder::new(0);
        let mut bytes = encode_frame("\"flush\"");
        bytes.extend_from_slice(&encode_frame("\"metrics\""));
        dec.push(&bytes);
        assert_eq!(dec.next_payload().unwrap().as_deref(), Some("\"flush\""));
        assert_eq!(dec.next_payload().unwrap().as_deref(), Some("\"metrics\""));
        assert_eq!(dec.next_payload().unwrap(), None);
    }

    #[test]
    fn bad_streams_are_fatal() {
        let mut dec = FrameDecoder::new(0);
        dec.push(b"nope\n{}\n");
        assert!(matches!(dec.next_payload(), Err(FrameError::BadLength(_))));

        let mut dec = FrameDecoder::new(16);
        dec.push(b"9999\n");
        assert!(matches!(
            dec.next_payload(),
            Err(FrameError::Oversize { .. })
        ));

        let mut dec = FrameDecoder::new(0);
        dec.push(b"2\n{}X");
        assert!(matches!(dec.next_payload(), Err(FrameError::BadTerminator)));

        // A runaway header (no newline in sight) is cut off early.
        let mut dec = FrameDecoder::new(0);
        dec.push(&[b'1'; 64]);
        assert!(matches!(dec.next_payload(), Err(FrameError::BadLength(_))));
    }

    #[test]
    fn requests_and_responses_round_trip() {
        let reqs = vec![
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Cancel { site: "a".into() },
            Request::Flush,
            Request::Metrics,
            Request::Bye,
        ];
        for r in reqs {
            let p = request_payload(&r);
            assert_eq!(parse_request(&p).unwrap(), r, "{p}");
        }
        let resps = vec![
            Response::Verdict {
                site: "CVE-2018-5092".into(),
                seed: 9,
                policy: "kernel".into(),
                shard: 2,
                defended: Some(true),
                detail: "races=0".into(),
                wedged: false,
                attempts: 1,
                completed_at_ms: 300,
            },
            Response::Shed {
                site: "x".into(),
                stage: "queue".into(),
            },
            Response::Bye,
        ];
        for r in resps {
            let p = response_payload(&r);
            assert_eq!(parse_response(&p).unwrap(), r, "{p}");
        }
    }

    #[test]
    fn submit_site_defaults_its_deadline() {
        let sched = jsk_workloads::schedule::corpus_schedules().remove(1);
        let req = Request::SubmitSite {
            site: sched.name.clone(),
            seed: 7,
            policy: "kernel".into(),
            schedule: sched,
            deadline_ms: 0,
        };
        let p = request_payload(&req);
        assert_eq!(parse_request(&p).unwrap(), req);
        // A hand-written frame may omit deadline_ms entirely.
        let trimmed = p.replace(",\"deadline_ms\":0", "");
        assert_eq!(parse_request(&trimmed).unwrap(), req);
    }

    #[test]
    fn unknown_request_types_are_rejected() {
        assert!(parse_request(r#"{"reboot":{}}"#).is_err());
        assert!(parse_request("\"reboot\"").is_err());
    }
}
