//! From wire submissions to [`SiteJob`]s: the seam that keeps the front
//! door out of the results.
//!
//! A [`Submission`] is everything a `submit_site` frame carries. Turning
//! one into a job ([`submission_job`]) produces *exactly* the closure a
//! direct in-process caller would hand `ShardPool::serve` — the wire
//! layer adds framing and backpressure, never semantics, which is why the
//! corpus-diff test can demand byte-identical verdicts between the two
//! paths. A submission's run is a pure function of `(schedule, policy,
//! seed, shard, fault plan)`: the schedule executes under the named
//! policy's mediator on the serving shard's deterministic timeline, the
//! happens-before detector grades the trace (defended = race-free), and
//! the site's metrics come back labelled `{site=...,policy=...}` so the
//! fleet view can stack its `{shard=...}` dimension on top.

use jsk_analyze::report::analyze;
use jsk_core::kernel::JsKernel;
use jsk_defenses::registry::DefenseKind;
use jsk_observe::{handle_of, Observer};
use jsk_shard::serve::{SiteCtx, SiteJob, SiteOutput};
use jsk_workloads::schedule::{run_schedule_with, Schedule};

/// Hard ceilings a wire submission must stay under — a remote client must
/// not be able to wedge the pool with one absurd schedule.
const MAX_EVENTS: usize = 4096;
const MAX_RESOURCES: usize = 256;
const MAX_RUN_MS: u32 = 600_000;

/// One accepted `submit_site`, queued until the connection flushes.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Site label.
    pub site: String,
    /// Run seed.
    pub seed: u64,
    /// Policy name (must satisfy [`policy_kind`]).
    pub policy: String,
    /// The event schedule to run.
    pub schedule: Schedule,
    /// Virtual deadline in ms on the serving shard's timeline (0 = none).
    pub deadline_ms: u64,
}

/// The policy names the wire accepts, with their [`DefenseKind`]
/// mappings. `kernel` and `hardened` are the paper's defense; the rest
/// exist so a client can measure the baselines over the same wire.
pub const POLICY_NAMES: &[(&str, DefenseKind)] = &[
    ("legacy", DefenseKind::LegacyChrome),
    ("fuzzyfox", DefenseKind::Fuzzyfox),
    ("deterfox", DefenseKind::DeterFox),
    ("torbrowser", DefenseKind::TorBrowser),
    ("chromezero", DefenseKind::ChromeZero),
    ("kernel", DefenseKind::JsKernel),
    ("hardened", DefenseKind::JsKernelHardened),
];

/// Resolves a wire policy name.
#[must_use]
pub fn policy_kind(name: &str) -> Option<DefenseKind> {
    POLICY_NAMES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, k)| *k)
}

/// The accepted policy names, comma-joined for error messages.
#[must_use]
pub fn policy_names() -> String {
    POLICY_NAMES
        .iter()
        .map(|(n, _)| *n)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Validates a submission before it is allowed into a connection queue.
/// Violations earn a non-fatal `Error` response (`code = "invalid"` or
/// `"policy"`); the connection lives on.
pub fn validate(sub: &Submission) -> Result<(), (String, String)> {
    let invalid = |m: String| Err(("invalid".to_owned(), m));
    if sub.site.is_empty() {
        return invalid("site label must be non-empty".to_owned());
    }
    if policy_kind(&sub.policy).is_none() {
        return Err((
            "policy".to_owned(),
            format!(
                "unknown policy {:?}; accepted: {}",
                sub.policy,
                policy_names()
            ),
        ));
    }
    if sub.schedule.events.len() > MAX_EVENTS {
        return invalid(format!(
            "schedule has {} events (max {MAX_EVENTS})",
            sub.schedule.events.len()
        ));
    }
    if sub.schedule.resources.len() > MAX_RESOURCES {
        return invalid(format!(
            "schedule declares {} resources (max {MAX_RESOURCES})",
            sub.schedule.resources.len()
        ));
    }
    if sub.schedule.run_ms > MAX_RUN_MS {
        return invalid(format!(
            "schedule runs {} virtual ms (max {MAX_RUN_MS})",
            sub.schedule.run_ms
        ));
    }
    Ok(())
}

/// Wraps a validated submission into the exact [`SiteJob`] a direct
/// in-process caller would build.
///
/// # Panics
///
/// The job closure panics if the policy name is unknown — [`validate`]
/// gates admission, so a queued submission always resolves.
#[must_use]
pub fn submission_job(sub: &Submission) -> SiteJob {
    let policy = sub.policy.clone();
    let schedule = sub.schedule.clone();
    SiteJob::new(sub.site.clone(), sub.seed, move |ctx| {
        run_submission(&policy, &schedule, ctx)
    })
}

/// Runs one submission on its serving shard. See the module docs for the
/// purity contract.
fn run_submission(policy: &str, schedule: &Schedule, ctx: &SiteCtx) -> SiteOutput {
    let kind = policy_kind(policy).expect("validated at admission");
    let mut cfg = kind.config(ctx.seed).with_shard(ctx.shard);
    if let Some(plan) = &ctx.fault {
        cfg = cfg.with_fault(plan.clone());
    }
    let shared = Observer::new().shared();
    cfg = cfg.with_observer(handle_of(&shared));
    let browser = run_schedule_with(schedule, kind.mediator(), cfg);

    let report = analyze(browser.trace());
    let races = report.races.len();
    let patterns = report.patterns.len();
    let sim_ms = browser.now().as_nanos() / 1_000_000;
    let wedged = browser
        .mediator_as::<JsKernel>()
        .map(|k| {
            let s = k.stats();
            s.watchdog_expired + s.orphans_reaped + s.equeue_overflow > 0
        })
        .unwrap_or(false);
    let metrics = shared
        .borrow()
        .metrics()
        .with_labels(&[("site", &ctx.site), ("policy", policy)]);
    SiteOutput {
        defended: Some(races == 0),
        detail: format!(
            "policy={policy} races={races} patterns={patterns} console={}",
            browser.console().len()
        ),
        sim_ms,
        wedged,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_shard::serve::{ServeConfig, ShardPool};
    use jsk_workloads::schedule::corpus_schedules;

    fn sub(policy: &str) -> Submission {
        let schedule = corpus_schedules().remove(1); // CVE-2017-7843: cheap
        Submission {
            site: schedule.name.clone(),
            seed: 11,
            policy: policy.into(),
            schedule,
            deadline_ms: 0,
        }
    }

    #[test]
    fn validation_rejects_unknown_policies_and_oversize_schedules() {
        assert!(validate(&sub("kernel")).is_ok());
        assert_eq!(validate(&sub("tokio")).unwrap_err().0, "policy");
        let mut s = sub("kernel");
        s.site.clear();
        assert_eq!(validate(&s).unwrap_err().0, "invalid");
        let mut s = sub("kernel");
        s.schedule.run_ms = MAX_RUN_MS + 1;
        assert_eq!(validate(&s).unwrap_err().0, "invalid");
    }

    #[test]
    fn submission_jobs_serve_deterministically_with_labelled_metrics() {
        let serve = |workers| {
            ShardPool::new(ServeConfig::new(2, workers)).serve(vec![
                submission_job(&sub("kernel")),
                submission_job(&sub("legacy")),
            ])
        };
        let a = serve(1);
        let b = serve(4);
        assert_eq!(a, b);
        // The kernel run is race-free; both runs labelled their series.
        assert!(matches!(
            a.shards[0].sites[0].outcome,
            jsk_shard::serve::SiteOutcome::Served {
                defended: Some(true),
                ..
            }
        ));
        assert!(a
            .fleet_metrics
            .counters
            .keys()
            .any(|k| k.contains("{site=CVE-2017-7843,policy=kernel}{shard=0}")));
    }
}
