//! The long-running server: shared state behind every connection.
//!
//! A [`Server`] owns the [`ShardPool`], the drain lifecycle, and two
//! metric families:
//!
//! * **site metrics** — every flush's fleet snapshot (series labelled
//!   `{site,policy}{shard}`), merged cumulatively. Byte-identical to what
//!   direct `ShardPool` submission of the same jobs would have produced,
//!   because the wire layer only feeds the same `SiteJob` seam.
//! * **wire metrics** — the front door's own counters (`serve.*`):
//!   connections, frames, malformed frames, submits, sheds, cancels,
//!   flushes, verdicts, deadline misses, drops on close.
//!
//! **Drain lifecycle.** [`Server::begin_drain`] flips the server into
//! draining: transports stop accepting, new submissions are refused
//! (`Error{code="draining"}`), a flush already inside the pool finishes
//! its in-flight attempts and writes the rest off as `Cancelled` (the
//! pool's cancel hook), and each open session is [`drained`] — queued
//! work is flushed, results delivered, and the connection closed with
//! `Bye`. Metrics survive the drain: the final page is the flush of
//! record.
//!
//! [`drained`]: crate::session::Session::drain

use crate::protocol::DEFAULT_MAX_FRAME;
use jsk_observe::{render_text, MetricsSnapshot};
use jsk_shard::serve::{ServeConfig, ShardPool};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Front-door configuration wrapped around the pool's [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The shard pool the server wraps.
    pub serve: ServeConfig,
    /// Bound on each connection's submission queue; submits past it are
    /// shed (`stage = "queue"`). 0 = unbounded.
    pub queue_capacity: usize,
    /// Bound on one frame's payload bytes.
    pub max_frame_len: usize,
    /// Bound on concurrent TCP connections; excess connections get
    /// `Error{code="busy"}` and are closed. 0 = unbounded.
    pub max_conns: usize,
}

impl ServerConfig {
    /// A front door over `shards` kernel shards driven by `workers` OS
    /// threads, with library defaults: 64-deep connection queues, 1 MiB
    /// frames, 32 concurrent connections.
    #[must_use]
    pub fn new(shards: usize, workers: usize) -> ServerConfig {
        ServerConfig {
            serve: ServeConfig::new(shards, workers),
            queue_capacity: 64,
            max_frame_len: DEFAULT_MAX_FRAME,
            max_conns: 32,
        }
    }

    /// Sets the per-connection queue bound.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServerConfig {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the concurrent-connection bound.
    #[must_use]
    pub fn with_max_conns(mut self, max: usize) -> ServerConfig {
        self.max_conns = max;
        self
    }

    /// Replaces the wrapped pool configuration.
    #[must_use]
    pub fn with_serve(mut self, serve: ServeConfig) -> ServerConfig {
        self.serve = serve;
        self
    }
}

/// The front door's own counters. Deterministic given a deterministic
/// request sequence; exported under `serve.*` names on the metrics page.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Sessions opened.
    pub connections: u64,
    /// Well-formed frames parsed.
    pub frames: u64,
    /// Frame/encoding errors (each one killed its connection).
    pub malformed: u64,
    /// Submissions accepted into a queue.
    pub submits: u64,
    /// Submissions shed (queue or shard stage).
    pub sheds: u64,
    /// Queued submissions removed by `cancel` requests.
    pub cancels: u64,
    /// Flushes served through the pool.
    pub flushes: u64,
    /// Verdicts streamed.
    pub verdicts: u64,
    /// Served sites reported past their deadline.
    pub deadline_missed: u64,
    /// Queued submissions dropped by `bye`/disconnect without a flush.
    pub dropped_on_close: u64,
    /// Sessions finished by a server-side drain.
    pub drained_sessions: u64,
}

impl WireStats {
    /// The stats as a mergeable snapshot of `serve.*` counters.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let mut c = |name: &str, v: u64| {
            snap.counters.insert(name.to_owned(), v);
        };
        c("serve.connections", self.connections);
        c("serve.frames", self.frames);
        c("serve.malformed", self.malformed);
        c("serve.submits", self.submits);
        c("serve.sheds", self.sheds);
        c("serve.cancels", self.cancels);
        c("serve.flushes", self.flushes);
        c("serve.verdicts", self.verdicts);
        c("serve.deadline_missed", self.deadline_missed);
        c("serve.dropped_on_close", self.dropped_on_close);
        c("serve.drained_sessions", self.drained_sessions);
        snap
    }
}

/// Cumulative state shared by every session.
#[derive(Debug, Default)]
struct Shared {
    site_metrics: MetricsSnapshot,
    wire: WireStats,
}

/// The long-running server. Wrap it in an [`Arc`] and hand clones to
/// transports; see the module docs for the lifecycle.
#[derive(Debug)]
pub struct Server {
    cfg: ServerConfig,
    pool: ShardPool,
    draining: AtomicBool,
    cancel: AtomicBool,
    shared: Mutex<Shared>,
}

impl Server {
    /// Builds a server (and its pool) from the configuration.
    ///
    /// # Panics
    ///
    /// Panics when the wrapped [`ServeConfig`] carries an invalid fault
    /// plan — same strictness as [`ShardPool::new`].
    #[must_use]
    pub fn new(cfg: ServerConfig) -> Arc<Server> {
        let pool = ShardPool::new(cfg.serve.clone());
        Arc::new(Server {
            cfg,
            pool,
            draining: AtomicBool::new(false),
            cancel: AtomicBool::new(false),
            shared: Mutex::new(Shared::default()),
        })
    }

    /// The server's configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// The wrapped pool.
    #[must_use]
    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// The cancel flag a flush hands to
    /// [`ShardPool::serve_with_cancel`] — set once the server drains.
    #[must_use]
    pub fn cancel_flag(&self) -> &AtomicBool {
        &self.cancel
    }

    /// Flips the server into draining: no new submissions, in-flight
    /// attempts finish, queued work is written off accountably.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.cancel.store(true, Ordering::Release);
    }

    /// Whether a drain has begun.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Cumulative site metrics: every flush's fleet snapshot merged.
    #[must_use]
    pub fn site_metrics(&self) -> MetricsSnapshot {
        self.shared
            .lock()
            .expect("server state")
            .site_metrics
            .clone()
    }

    /// The front door's own counters.
    #[must_use]
    pub fn wire_stats(&self) -> WireStats {
        self.shared.lock().expect("server state").wire
    }

    /// Renders the `/metrics`-style page: site metrics and `serve.*`
    /// wire counters in one exposition.
    #[must_use]
    pub fn metrics_page(&self) -> String {
        let shared = self.shared.lock().expect("server state");
        let mut merged = shared.site_metrics.clone();
        merged.merge(&shared.wire.snapshot());
        render_text(&merged)
    }

    /// Folds one flush's fleet metrics into the cumulative view.
    pub(crate) fn merge_site_metrics(&self, snap: &MetricsSnapshot) {
        self.shared
            .lock()
            .expect("server state")
            .site_metrics
            .merge(snap);
    }

    /// Mutates the wire counters under the state lock.
    pub(crate) fn with_wire<R>(&self, f: impl FnOnce(&mut WireStats) -> R) -> R {
        f(&mut self.shared.lock().expect("server state").wire)
    }
}
