//! `docs/PROTOCOL.md` is the normative spec; this test keeps it honest.
//! Every ```json fenced block in the spec must parse as a protocol
//! message and survive a re-encode round trip, and between them the
//! examples must exemplify **every** request and response variant the
//! server speaks — add a frame to the protocol and this test fails until
//! the spec documents it.

use jsk_serve::protocol::{
    parse_request, parse_response, request_payload, response_payload, Request, Response,
};
use std::collections::BTreeSet;

const SPEC: &str = include_str!("../../../docs/PROTOCOL.md");

/// The ```json fenced blocks of the spec, in order.
fn spec_examples() -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in SPEC.lines() {
        match &mut current {
            None if line.trim() == "```json" => current = Some(String::new()),
            None => {}
            Some(buf) => {
                if line.trim() == "```" {
                    blocks.push(current.take().expect("open block"));
                } else {
                    buf.push_str(line);
                    buf.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```json block in the spec");
    blocks
}

fn request_variant(req: &Request) -> &'static str {
    match req {
        Request::Hello { .. } => "hello",
        Request::SubmitSite { .. } => "submit_site",
        Request::Cancel { .. } => "cancel",
        Request::Flush => "flush",
        Request::Metrics => "metrics",
        Request::Bye => "bye",
    }
}

fn response_variant(resp: &Response) -> &'static str {
    match resp {
        Response::HelloOk { .. } => "hello_ok",
        Response::Queued { .. } => "queued",
        Response::Verdict { .. } => "verdict",
        Response::Shed { .. } => "shed",
        Response::Cancelled { .. } => "cancelled",
        Response::FlushOk { .. } => "flush_ok",
        Response::MetricsPage { .. } => "metrics_page",
        Response::Error { .. } => "error",
        Response::Bye => "bye",
    }
}

#[test]
fn every_spec_example_round_trips_and_every_frame_is_documented() {
    let examples = spec_examples();
    assert!(
        examples.len() >= 15,
        "spec lost examples: {}",
        examples.len()
    );

    let mut requests: BTreeSet<&'static str> = BTreeSet::new();
    let mut responses: BTreeSet<&'static str> = BTreeSet::new();

    for example in &examples {
        let as_req = parse_request(example);
        let as_resp = parse_response(example);
        assert!(
            as_req.is_ok() || as_resp.is_ok(),
            "spec example is not a protocol message:\n{example}"
        );
        if let Ok(req) = as_req {
            // Re-encode compactly and parse again: the spec's pretty
            // shape and the wire's compact shape are the same message.
            let compact = request_payload(&req);
            assert_eq!(parse_request(&compact).unwrap(), req, "{compact}");
            requests.insert(request_variant(&req));
        }
        if let Ok(resp) = as_resp {
            let compact = response_payload(&resp);
            assert_eq!(parse_response(&compact).unwrap(), resp, "{compact}");
            responses.insert(response_variant(&resp));
        }
    }

    let all_requests: BTreeSet<&'static str> =
        ["hello", "submit_site", "cancel", "flush", "metrics", "bye"]
            .into_iter()
            .collect();
    let all_responses: BTreeSet<&'static str> = [
        "hello_ok",
        "queued",
        "verdict",
        "shed",
        "cancelled",
        "flush_ok",
        "metrics_page",
        "error",
        "bye",
    ]
    .into_iter()
    .collect();
    assert_eq!(requests, all_requests, "spec must exemplify every request");
    assert_eq!(
        responses, all_responses,
        "spec must exemplify every response"
    );
}

#[test]
fn the_submit_site_example_is_a_servable_schedule() {
    // The spec's submit_site example is not just parseable — it admits.
    let example = spec_examples()
        .into_iter()
        .find(|e| e.contains("\"submit_site\""))
        .expect("spec has a submit_site example");
    let Request::SubmitSite {
        site,
        seed,
        policy,
        schedule,
        deadline_ms,
    } = parse_request(&example).unwrap()
    else {
        panic!("not a submit_site");
    };
    let sub = jsk_serve::Submission {
        site,
        seed,
        policy,
        schedule,
        deadline_ms,
    };
    jsk_serve::job::validate(&sub).expect("spec example passes admission");
}
