//! The tentpole invariant: serving the 13-program corpus through
//! `LoopbackTransport` is **byte-identical** to direct `ShardPool`
//! submission — same verdict frames, same shard-labelled metrics — for
//! any worker count. The wire layer adds framing and backpressure, never
//! semantics.

use jsk_serve::protocol::Response;
use jsk_serve::{submission_job, Client, LoopbackTransport, Server, ServerConfig, Submission};
use jsk_shard::serve::{ServeConfig, ShardPool, SiteOutcome};
use jsk_workloads::schedule::corpus_schedules;

const SHARDS: usize = 4;

fn submissions() -> Vec<Submission> {
    corpus_schedules()
        .into_iter()
        .enumerate()
        .map(|(i, s)| Submission {
            site: s.name.clone(),
            seed: 1_000_003 + i as u64,
            policy: "kernel".into(),
            schedule: s,
            deadline_ms: 0,
        })
        .collect()
}

/// Direct submission: the verdict frames (serialized, submission order)
/// and the fleet metrics JSON the wire path must reproduce exactly.
fn direct(workers: usize, subs: &[Submission]) -> (Vec<String>, String) {
    let pool = ShardPool::new(ServeConfig::new(SHARDS, workers));
    let report = pool.serve(subs.iter().map(submission_job).collect());
    let n = report.shards.len();
    let mut cursors = vec![0usize; n];
    let mut rows = Vec::new();
    for (i, sub) in subs.iter().enumerate() {
        let s = i % n;
        let row = &report.shards[s].sites[cursors[s]];
        cursors[s] += 1;
        let SiteOutcome::Served {
            defended,
            detail,
            wedged,
        } = &row.outcome
        else {
            panic!("corpus site {} not served: {:?}", row.site, row.outcome)
        };
        let frame = Response::Verdict {
            site: row.site.clone(),
            seed: row.seed,
            policy: sub.policy.clone(),
            shard: s as u64,
            defended: *defended,
            detail: detail.clone(),
            wedged: *wedged,
            attempts: row.attempts,
            completed_at_ms: row.completed_at_ms,
        };
        rows.push(serde_json::to_string(&frame).expect("verdict serializes"));
    }
    let metrics = serde_json::to_string(&report.fleet_metrics).expect("metrics serialize");
    (rows, metrics)
}

/// Wire submission over the loopback transport: the verdict frames as
/// received, and the server's cumulative site metrics JSON.
fn wire(workers: usize, subs: &[Submission]) -> (Vec<String>, String) {
    let server = Server::new(ServerConfig::new(SHARDS, workers));
    let transport = LoopbackTransport::new(server.clone());
    let mut client = Client::connect(&transport).expect("loopback connects");
    for sub in subs {
        let resp = client.submit(sub).expect("submit");
        assert!(matches!(resp, Response::Queued { .. }), "{resp:?}");
    }
    let mut results = client.flush().expect("flush");
    let summary = results.pop().expect("flush summary");
    assert!(
        matches!(
            summary,
            Response::FlushOk {
                served,
                shed: 0,
                quarantined: 0,
                cancelled: 0,
                deadline_missed: 0,
            } if served == subs.len() as u64
        ),
        "{summary:?}"
    );
    let rows = results
        .iter()
        .map(|r| serde_json::to_string(r).expect("response serializes"))
        .collect();
    let metrics = serde_json::to_string(&server.site_metrics()).expect("metrics serialize");
    client.bye().expect("clean close");
    (rows, metrics)
}

#[test]
fn corpus_over_loopback_is_byte_identical_to_direct_submission() {
    let subs = submissions();
    let (want_rows, want_metrics) = direct(1, &subs);
    assert_eq!(want_rows.len(), subs.len());

    // The wire must match direct submission for 1 and 4 workers alike —
    // worker count is wall-clock, never content.
    for workers in [1usize, 4] {
        let (rows, metrics) = wire(workers, &subs);
        assert_eq!(
            rows, want_rows,
            "wire verdicts diverged at {workers} workers"
        );
        assert_eq!(
            metrics, want_metrics,
            "wire metrics diverged at {workers} workers"
        );
    }

    // And direct submission itself is worker-count invariant.
    let (rows4, metrics4) = direct(4, &subs);
    assert_eq!(rows4, want_rows);
    assert_eq!(metrics4, want_metrics);

    // Every verdict is the kernel defending its site: the corpus is
    // race-free under JSKernel.
    for row in &want_rows {
        assert!(row.contains("\"defended\":true"), "{row}");
    }
}
