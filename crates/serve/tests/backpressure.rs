//! Backpressure and teardown: shed fires exactly past the admission
//! bound, drains account for every accepted submission, malformed frames
//! kill their connection and nothing else, and submit/cancel
//! interleavings never change the surviving verdicts.

use jsk_serve::protocol::{encode_frame, Response};
use jsk_serve::{submission_job, Client, LoopbackTransport, Server, ServerConfig, Submission};
use jsk_shard::serve::{ServeConfig, ShardPool, SiteOutcome};
use jsk_workloads::schedule::Schedule;
use proptest::prelude::*;

/// A minimal schedule: boots, runs one virtual millisecond, does nothing.
/// Cheap enough for property testing; still a full browser run.
fn tiny_schedule(name: &str) -> Schedule {
    Schedule {
        name: name.to_owned(),
        private_mode: false,
        run_ms: 1,
        resources: Vec::new(),
        events: Vec::new(),
    }
}

fn tiny_sub(site: &str, seed: u64) -> Submission {
    Submission {
        site: site.to_owned(),
        seed,
        policy: "legacy".into(),
        schedule: tiny_schedule(site),
        deadline_ms: 0,
    }
}

#[test]
fn shed_fires_exactly_past_the_queue_capacity() {
    let server = Server::new(ServerConfig::new(2, 2).with_queue_capacity(3));
    let transport = LoopbackTransport::new(server.clone());
    let mut client = Client::connect(&transport).unwrap();
    let mut queued = 0;
    let mut shed = 0;
    for i in 0..5u64 {
        match client.submit(&tiny_sub(&format!("site-{i}"), i)).unwrap() {
            Response::Queued { depth, .. } => {
                queued += 1;
                assert_eq!(depth, queued);
            }
            Response::Shed { stage, .. } => {
                assert_eq!(stage, "queue");
                shed += 1;
            }
            other => panic!("{other:?}"),
        }
    }
    assert_eq!((queued, shed), (3, 2), "shed exactly past capacity");
    assert_eq!(server.wire_stats().sheds, 2);

    // The three queued sites all serve.
    let results = client.flush().unwrap();
    assert_eq!(results.len(), 4);
    assert!(matches!(results[3], Response::FlushOk { served: 3, .. }));
}

#[test]
fn shard_admission_shed_is_reported_with_its_stage() {
    // Pool-level admission: 2 shards × capacity 1 = 2 slots for 5 sites.
    let cfg = ServerConfig::new(2, 2).with_serve(ServeConfig::new(2, 2).with_admission_capacity(1));
    let server = Server::new(cfg);
    let transport = LoopbackTransport::new(server);
    let mut client = Client::connect(&transport).unwrap();
    for i in 0..5u64 {
        client.submit(&tiny_sub(&format!("site-{i}"), i)).unwrap();
    }
    let results = client.flush().unwrap();
    let shard_shed = results
        .iter()
        .filter(|r| matches!(r, Response::Shed { stage, .. } if stage == "shard"))
        .count();
    assert_eq!(shard_shed, 3);
    assert!(matches!(
        results.last().unwrap(),
        Response::FlushOk {
            served: 2,
            shed: 3,
            ..
        }
    ));
}

#[test]
fn drain_accounts_for_every_submission_with_zero_orphans() {
    let server = Server::new(ServerConfig::new(2, 2));
    let transport = LoopbackTransport::new(server.clone());
    let mut client = Client::connect(&transport).unwrap();
    for i in 0..4u64 {
        assert!(matches!(
            client.submit(&tiny_sub(&format!("site-{i}"), i)).unwrap(),
            Response::Queued { .. }
        ));
    }

    // The server begins draining with four submissions queued and none
    // flushed. New work is refused; the drain writes off the queue
    // accountably and closes the connection.
    server.begin_drain();
    match client.submit(&tiny_sub("late", 99)).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, "draining"),
        other => panic!("{other:?}"),
    }

    let results = client.flush().unwrap();
    // Every queued site comes back Cancelled — the pool's cancel hook —
    // and the summary balances: 4 submitted = 4 cancelled, zero orphans.
    let cancelled = results
        .iter()
        .filter(|r| matches!(r, Response::Cancelled { .. }))
        .count();
    assert_eq!(cancelled, 4);
    assert!(matches!(
        results.last().unwrap(),
        Response::FlushOk {
            served: 0,
            cancelled: 4,
            ..
        }
    ));

    // The same invariant at the pool layer: a cancelled serve still has a
    // row for every job.
    let subs: Vec<_> = (0..6u64).map(|i| tiny_sub(&format!("p-{i}"), i)).collect();
    let cancel = std::sync::atomic::AtomicBool::new(true);
    let report = ShardPool::new(ServeConfig::new(3, 2))
        .serve_with_cancel(subs.iter().map(submission_job).collect(), &cancel);
    assert_eq!(report.orphans(subs.len()), 0);
    assert_eq!(report.cancelled(), 6);
}

#[test]
fn malformed_frames_kill_the_connection_and_never_the_pool() {
    let server = Server::new(ServerConfig::new(2, 2));

    // Connection 1 sends bytes that are not a frame.
    let mut bad = jsk_serve::Session::new(server.clone());
    let frames = bad.on_bytes(b"zz\n{}\n");
    assert!(bad.is_closed());
    assert_eq!(frames.len(), 1);
    let text = String::from_utf8(frames[0].clone()).unwrap();
    assert!(text.contains("\"code\":\"frame\""), "{text}");
    // Dead connections ignore further bytes.
    assert!(bad.on_bytes(b"4\n true\n").is_empty());

    // Connection 2 sends a well-framed payload that is not a request.
    let mut odd = jsk_serve::Session::new(server.clone());
    let frames = odd.on_bytes(&encode_frame(r#"{"reboot":{}}"#));
    assert!(odd.is_closed());
    let text = String::from_utf8(frames[0].clone()).unwrap();
    assert!(text.contains("\"code\":\"request\""), "{text}");

    assert_eq!(server.wire_stats().malformed, 2);

    // The pool never noticed: a fresh connection serves normally.
    let transport = LoopbackTransport::new(server);
    let mut client = Client::connect(&transport).unwrap();
    client.submit(&tiny_sub("alive", 1)).unwrap();
    let results = client.flush().unwrap();
    assert!(matches!(
        results.last().unwrap(),
        Response::FlushOk { served: 1, .. }
    ));
}

/// One step of the interleaving model.
#[derive(Debug, Clone)]
enum Op {
    Submit(u8, u64),
    Cancel(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u64..1000).prop_map(|(s, seed)| Op::Submit(s, seed)),
        (0u8..4).prop_map(Op::Cancel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any seeded interleaving of submits and cancels yields exactly the
    /// verdicts of directly serving the surviving queue: cancellation
    /// and ordering never perturb per-site results.
    #[test]
    fn interleavings_never_change_surviving_verdicts(ops in proptest::collection::vec(op_strategy(), 1..8)) {
        let server = Server::new(ServerConfig::new(2, 1));
        let transport = LoopbackTransport::new(server);
        let mut client = Client::connect(&transport).unwrap();

        // Model the queue alongside the wire.
        let mut model: Vec<Submission> = Vec::new();
        for op in &ops {
            match op {
                Op::Submit(s, seed) => {
                    let sub = tiny_sub(&format!("site-{s}"), *seed);
                    prop_assert!(matches!(client.submit(&sub).unwrap(), Response::Queued { .. }));
                    model.push(sub);
                }
                Op::Cancel(s) => {
                    let site = format!("site-{s}");
                    let _ = client.cancel(&site).unwrap();
                    model.retain(|m| m.site != site);
                }
            }
        }
        let mut results = client.flush().unwrap();
        let _summary = results.pop();
        let got: Vec<String> = results.iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();

        // Direct submission of the survivors through an identical pool.
        let report = ShardPool::new(ServeConfig::new(2, 1))
            .serve(model.iter().map(submission_job).collect());
        let n = report.shards.len();
        let mut cursors = vec![0usize; n];
        let mut want = Vec::new();
        for (i, sub) in model.iter().enumerate() {
            let s = i % n;
            let row = &report.shards[s].sites[cursors[s]];
            cursors[s] += 1;
            let SiteOutcome::Served { defended, detail, wedged } = &row.outcome else {
                panic!("unexpected outcome {:?}", row.outcome)
            };
            want.push(serde_json::to_string(&Response::Verdict {
                site: row.site.clone(),
                seed: row.seed,
                policy: sub.policy.clone(),
                shard: s as u64,
                defended: *defended,
                detail: detail.clone(),
                wedged: *wedged,
                attempts: row.attempts,
                completed_at_ms: row.completed_at_ms,
            }).unwrap());
        }
        prop_assert_eq!(got, want);
    }
}
