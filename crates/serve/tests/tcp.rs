//! The TCP front door end to end: bind an ephemeral port, run the full
//! handshake/submit/flush/metrics/bye conversation over real sockets,
//! and check that shutdown drains a live connection instead of cutting
//! it off.

use jsk_serve::protocol::Response;
use jsk_serve::{Client, Server, ServerConfig, Submission, TcpServer, TcpTransport};
use jsk_workloads::schedule::corpus_schedules;

fn one_submission() -> Submission {
    // CVE-2017-7843 is the cheapest corpus program (50 virtual ms).
    let schedule = corpus_schedules().remove(1);
    Submission {
        site: schedule.name.clone(),
        seed: 41,
        policy: "kernel".into(),
        schedule,
        deadline_ms: 0,
    }
}

#[test]
fn tcp_round_trip_submits_flushes_and_scrapes_metrics() {
    let server = Server::new(ServerConfig::new(2, 2));
    let tcp = TcpServer::bind(server, "127.0.0.1:0").expect("bind ephemeral");
    let transport = TcpTransport::new(tcp.local_addr()).expect("transport");

    let mut client = Client::connect(&transport).expect("tcp connect + hello");
    let sub = one_submission();
    assert!(matches!(
        client.submit(&sub).expect("submit"),
        Response::Queued { depth: 1, .. }
    ));
    let results = client.flush().expect("flush");
    assert_eq!(results.len(), 2);
    match &results[0] {
        Response::Verdict { site, defended, .. } => {
            assert_eq!(site, &sub.site);
            assert_eq!(*defended, Some(true));
        }
        other => panic!("{other:?}"),
    }
    assert!(matches!(results[1], Response::FlushOk { served: 1, .. }));

    let page = client.metrics_page().expect("metrics");
    assert!(
        page.starts_with("# jsk-observe text exposition v1"),
        "{page}"
    );
    assert!(page.contains("serve.connections"), "{page}");
    client.bye().expect("clean close");

    let final_page = tcp.shutdown();
    assert!(final_page.contains("serve.verdicts"), "{final_page}");
}

#[test]
fn shutdown_drains_a_live_connection_with_queued_work() {
    let server = Server::new(ServerConfig::new(2, 2));
    let tcp = TcpServer::bind(server, "127.0.0.1:0").expect("bind ephemeral");
    let transport = TcpTransport::new(tcp.local_addr()).expect("transport");

    let mut client = Client::connect(&transport).expect("tcp connect + hello");
    assert!(matches!(
        client.submit(&one_submission()).expect("submit"),
        Response::Queued { .. }
    ));

    // Shut the server down while the submission is still queued. The
    // drain must deliver an accountable outcome for it (here: cancelled,
    // since the pool's cancel flag is set before the drain flush), then a
    // bye — never a silent disconnect.
    let shutdown = std::thread::spawn(move || tcp.shutdown());
    let mut saw_flush_ok = false;
    let mut outcomes = Vec::new();
    loop {
        match client.read_response() {
            Ok(Response::Bye) => break, // the drain always ends with bye
            Ok(Response::FlushOk { .. }) => saw_flush_ok = true,
            Ok(resp) => outcomes.push(resp),
            Err(e) => panic!("connection cut without bye: {e}"),
        }
    }
    let page = shutdown.join().expect("shutdown joins");

    assert!(saw_flush_ok, "drain flushes the queue");
    assert_eq!(outcomes.len(), 1, "{outcomes:?}");
    assert!(
        matches!(
            &outcomes[0],
            Response::Cancelled { .. } | Response::Verdict { .. }
        ),
        "{outcomes:?}"
    );
    assert!(page.contains("serve.drained_sessions"), "{page}");
}
