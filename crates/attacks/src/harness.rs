//! The attack-evaluation harness.
//!
//! A timing attack measures a secret-dependent quantity through an implicit
//! clock; the harness runs it for both values of the secret over many
//! seeded trials and declares the defense **vulnerable** when the two
//! measurement distributions are statistically distinguishable. A CVE
//! exploit drives a trigger sequence; the defense is vulnerable when the
//! oracle reports the trigger.

use jsk_browser::browser::{Browser, BrowserConfig};
use jsk_defenses::registry::DefenseKind;
use jsk_sim::fault::FaultPlan;
use jsk_sim::stats::{distinguishable, Distinguishability, Summary};
use jsk_vuln::{oracle, Cve};
use serde::{Deserialize, Serialize};

/// Which of the two secret values a trial measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Secret {
    /// The first secret value (e.g. the small file, the unvisited link).
    A,
    /// The second secret value.
    B,
}

impl Secret {
    /// Both values.
    pub const BOTH: [Secret; 2] = [Secret::A, Secret::B];
}

/// A timing attack with an implicit clock.
///
/// Attacks are `Send + Sync` so the bench harnesses can fan independent
/// cells across a scoped thread pool (`jsk_bench::pool`); implementations
/// are plain configuration structs, so the bounds cost nothing.
pub trait TimingAttack: Send + Sync {
    /// Row label (matches Table I).
    fn name(&self) -> &'static str;

    /// Which implicit clock the attack uses (Table I groups rows by this).
    fn clock(&self) -> &'static str;

    /// Pre-run setup: seed caches, history, resources.
    fn prepare(&self, browser: &mut Browser, secret: Secret) {
        let _ = (browser, secret);
    }

    /// Runs one trial and returns the attacker's measurement.
    fn measure(&self, browser: &mut Browser, secret: Secret) -> f64;

    /// Minimum relative mean gap the attacker needs to act on (defaults to
    /// 3 %).
    fn min_rel_gap(&self) -> f64 {
        0.03
    }
}

/// A CVE exploit script.
///
/// `Send + Sync` for the same reason as [`TimingAttack`]: exploit scripts
/// are stateless and evaluated concurrently by the bench pool.
pub trait CveExploit: Send + Sync {
    /// The vulnerability this exploits.
    fn cve(&self) -> Cve;

    /// Pre-run browser configuration (e.g. private mode).
    fn configure(&self, cfg: &mut BrowserConfig) {
        let _ = cfg;
    }

    /// Drives the triggering sequence.
    fn run(&self, browser: &mut Browser);
}

/// The outcome of evaluating one attack against one defense.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingAttackResult {
    /// Attack row label.
    pub attack: String,
    /// Defense column label.
    pub defense: String,
    /// Measurements under secret A.
    pub a: Vec<f64>,
    /// Measurements under secret B.
    pub b: Vec<f64>,
    /// Whether the attacker distinguishes the secrets.
    pub verdict: Distinguishability,
}

impl TimingAttackResult {
    /// Whether the defense held.
    #[must_use]
    pub fn defended(&self) -> bool {
        !self.verdict.is_distinguishable()
    }

    /// Summaries of the two samples, for table cells.
    #[must_use]
    pub fn summaries(&self) -> (Summary, Summary) {
        (Summary::of(&self.a), Summary::of(&self.b))
    }
}

/// Runs `attack` against `defense` for `trials` seeded trials per secret.
pub fn run_timing_attack(
    attack: &dyn TimingAttack,
    defense: DefenseKind,
    trials: usize,
    base_seed: u64,
) -> TimingAttackResult {
    run_timing_attack_observed(attack, defense, trials, base_seed, &mut |_| {})
}

/// Like [`run_timing_attack`], but calls `observe` on every trial's browser
/// after its measurement, so callers can harvest per-run state (kernel
/// statistics, step counts) without changing the measured trajectory. The
/// observer runs after `measure`, so it cannot perturb the verdict.
pub fn run_timing_attack_observed(
    attack: &dyn TimingAttack,
    defense: DefenseKind,
    trials: usize,
    base_seed: u64,
    observe: &mut dyn FnMut(&Browser),
) -> TimingAttackResult {
    let mut a = Vec::with_capacity(trials);
    let mut b = Vec::with_capacity(trials);
    for t in 0..trials {
        for secret in Secret::BOTH {
            let seed = base_seed
                .wrapping_mul(1_000_003)
                .wrapping_add(t as u64 * 2 + u64::from(secret == Secret::B));
            let mut browser = defense.build(seed);
            attack.prepare(&mut browser, secret);
            let m = attack.measure(&mut browser, secret);
            observe(&browser);
            match secret {
                Secret::A => a.push(m),
                Secret::B => b.push(m),
            }
        }
    }
    let verdict = distinguishable(&a, &b, attack.min_rel_gap());
    TimingAttackResult {
        attack: attack.name().to_owned(),
        defense: defense.label().to_owned(),
        a,
        b,
        verdict,
    }
}

/// The outcome of one exploit run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CveAttackResult {
    /// The CVE.
    pub cve: Cve,
    /// Defense column label.
    pub defense: String,
    /// Whether the trigger sequence occurred.
    pub triggered: bool,
    /// The oracle's witness, when triggered.
    pub witness: Option<String>,
}

impl CveAttackResult {
    /// Whether the defense held.
    #[must_use]
    pub fn defended(&self) -> bool {
        !self.triggered
    }
}

/// Runs a CVE exploit against a defense and consults the oracle.
pub fn run_cve_attack(
    exploit: &dyn CveExploit,
    defense: DefenseKind,
    seed: u64,
) -> CveAttackResult {
    run_cve_attack_with_faults(exploit, defense, seed, FaultPlan::default())
}

/// Like [`run_cve_attack`], but calls `observe` on the browser after the
/// exploit has run (and before the oracle verdict is computed), so callers
/// can harvest kernel statistics for throughput accounting.
pub fn run_cve_attack_observed(
    exploit: &dyn CveExploit,
    defense: DefenseKind,
    seed: u64,
    observe: &mut dyn FnMut(&Browser),
) -> CveAttackResult {
    let mut cfg = defense.config(seed);
    exploit.configure(&mut cfg);
    let mut browser = Browser::new(cfg, defense.mediator());
    exploit.run(&mut browser);
    observe(&browser);
    let report = oracle::scan(browser.trace());
    let cve = exploit.cve();
    CveAttackResult {
        cve,
        defense: defense.label().to_owned(),
        triggered: report.is_triggered(cve),
        witness: report.evidence(cve).map(|e| e.witness.clone()),
    }
}

/// Runs a CVE exploit against a defense while the given fault plan perturbs
/// the simulated browser (lost/duplicated messages, dropped confirmations,
/// worker crashes, network failures). The run must terminate and the oracle
/// verdict must be computable regardless of the plan — that is the
/// robustness claim the fault suite checks.
pub fn run_cve_attack_with_faults(
    exploit: &dyn CveExploit,
    defense: DefenseKind,
    seed: u64,
    plan: FaultPlan,
) -> CveAttackResult {
    let mut cfg = defense.config(seed);
    if !plan.is_inert() {
        cfg = cfg.with_fault(plan);
    }
    exploit.configure(&mut cfg);
    let mut browser = Browser::new(cfg, defense.mediator());
    exploit.run(&mut browser);
    let report = oracle::scan(browser.trace());
    let cve = exploit.cve();
    CveAttackResult {
        cve,
        defense: defense.label().to_owned(),
        triggered: report.is_triggered(cve),
        witness: report.evidence(cve).map(|e| e.witness.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_browser::value::JsValue;
    use jsk_sim::time::SimDuration;

    /// A toy attack that reads the real duration of a secret-dependent
    /// computation through `performance.now` — distinguishable on legacy,
    /// hidden by the kernel clock.
    struct ToyAttack;
    impl TimingAttack for ToyAttack {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn clock(&self) -> &'static str {
            "performance.now"
        }
        fn measure(&self, browser: &mut Browser, secret: Secret) -> f64 {
            let ms = match secret {
                Secret::A => 5,
                Secret::B => 20,
            };
            browser.boot(move |scope| {
                let t0 = scope.performance_now();
                scope.compute(SimDuration::from_millis(ms));
                let t1 = scope.performance_now();
                scope.record("m", JsValue::from(t1 - t0));
            });
            browser.run_until_idle();
            browser.record_value("m").and_then(JsValue::as_f64).unwrap()
        }
    }

    #[test]
    fn toy_attack_separates_legacy_but_not_kernel() {
        let legacy = run_timing_attack(&ToyAttack, DefenseKind::LegacyChrome, 8, 1);
        assert!(!legacy.defended(), "{legacy:?}");
        let kernel = run_timing_attack(&ToyAttack, DefenseKind::JsKernel, 8, 1);
        assert!(kernel.defended(), "{:?} {:?}", kernel.a, kernel.b);
    }

    #[test]
    fn results_carry_labels_and_samples() {
        let r = run_timing_attack(&ToyAttack, DefenseKind::LegacyChrome, 3, 2);
        assert_eq!(r.attack, "toy");
        assert_eq!(r.defense, "Chrome");
        assert_eq!(r.a.len(), 3);
        assert_eq!(r.b.len(), 3);
        let (sa, sb) = r.summaries();
        assert!(sb.mean > sa.mean);
    }
}
