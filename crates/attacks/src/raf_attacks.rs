//! The animation-related attacks of Table I: history sniffing, SVG
//! filtering, floating-point timing, CSS animation, and Video/WebVTT
//! implicit clocks (§IV-A2).

use crate::harness::{Secret, TimingAttack};
use crate::ticker::{start_css_ticker, start_media_ticker, TickCounter};
use jsk_browser::browser::Browser;
use jsk_browser::scope::JsScope;
use jsk_browser::task::cb;
use jsk_browser::value::JsValue;
use jsk_sim::time::SimDuration;

fn read_measure(browser: &Browser) -> f64 {
    browser
        .record_value("measurement")
        .and_then(JsValue::as_f64)
        .expect("attack records a measurement")
}

/// Runs `body` inside a `requestAnimationFrame` callback and records the
/// per-repetition `performance.now` delta around `reps` repetitions.
fn raf_measured<F>(browser: &mut Browser, reps: u32, body: F)
where
    F: Fn(&mut JsScope<'_>) + Clone + 'static,
{
    browser.boot(move |scope| {
        let body = body.clone();
        scope.request_animation_frame(cb(move |scope, _| {
            let t0 = scope.performance_now();
            for _ in 0..reps {
                body(scope);
            }
            let t1 = scope.performance_now();
            scope.record("measurement", JsValue::from((t1 - t0) / f64::from(reps)));
        }));
    });
    browser.run_until_idle();
}

/// History sniffing (Stone 2013, §IV-A2): visited and unvisited links
/// repaint at different costs; the per-link time identifies browsing
/// history.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistorySniffing;

const VICTIM_LINK: &str = "https://social.example/friends";

impl TimingAttack for HistorySniffing {
    fn name(&self) -> &'static str {
        "History Sniffing"
    }

    fn clock(&self) -> &'static str {
        "requestAnimationFrame"
    }

    fn prepare(&self, browser: &mut Browser, secret: Secret) {
        if secret == Secret::B {
            browser.mark_visited(VICTIM_LINK);
        }
    }

    fn measure(&self, browser: &mut Browser, _secret: Secret) -> f64 {
        raf_measured(browser, 200, |scope| scope.style_link(VICTIM_LINK));
        read_measure(browser)
    }
}

/// SVG filtering (DeterFox's attack, Table II): the filter cost depends on
/// the image's resolution; repeated application amplifies the difference
/// enough to survive coarse clocks.
#[derive(Debug, Clone, Copy)]
pub struct SvgFiltering {
    /// Pixel count under secret A (the low resolution of Table II).
    pub px_a: u64,
    /// Pixel count under secret B (the high resolution).
    pub px_b: u64,
}

impl Default for SvgFiltering {
    fn default() -> Self {
        SvgFiltering {
            px_a: 256 * 256,
            px_b: 512 * 512,
        }
    }
}

impl TimingAttack for SvgFiltering {
    fn name(&self) -> &'static str {
        "SVG Filtering"
    }

    fn clock(&self) -> &'static str {
        "requestAnimationFrame"
    }

    fn measure(&self, browser: &mut Browser, secret: Secret) -> f64 {
        let px = match secret {
            Secret::A => self.px_a,
            Secret::B => self.px_b,
        };
        // 60 repetitions amplify the per-application difference enough to
        // survive even a 100 ms explicit clock (how the attack still works
        // on the Tor Browser, Table II).
        raf_measured(browser, 60, move |scope| scope.apply_svg_filter(px));
        read_measure(browser)
    }
}

/// The floating-point timing channel (Andrysco et al., §IV-A2): subnormal
/// operands take far longer per operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct FloatingPoint;

impl TimingAttack for FloatingPoint {
    fn name(&self) -> &'static str {
        "Floating Point"
    }

    fn clock(&self) -> &'static str {
        "requestAnimationFrame"
    }

    fn measure(&self, browser: &mut Browser, secret: Secret) -> f64 {
        let subnormal = secret == Secret::B;
        raf_measured(browser, 12, move |scope| {
            scope.float_ops(300_000, subnormal);
        });
        read_measure(browser)
    }
}

/// Measures a multi-task secret computation by counting implicit-clock
/// ticks from an independent periodic source (CSS animation or media).
fn count_ticks_during_tasks(
    browser: &mut Browser,
    start_ticker: impl Fn(&mut JsScope<'_>) -> TickCounter + 'static,
    task_cost: SimDuration,
    tasks: u32,
) -> f64 {
    browser.boot(move |scope| {
        let ticks = start_ticker(scope);
        // Let the ticker settle, then run the secret across several tasks.
        scope.set_timeout(
            80.0,
            cb(move |scope, _| {
                let t0 = *ticks.borrow();
                fn step(
                    scope: &mut JsScope<'_>,
                    left: u32,
                    cost: SimDuration,
                    ticks: TickCounter,
                    t0: u64,
                ) {
                    scope.compute(cost);
                    if left > 1 {
                        scope.post_task(cb(move |scope, _| {
                            step(scope, left - 1, cost, ticks.clone(), t0);
                        }));
                    } else {
                        let dt = *ticks.borrow() - t0;
                        scope.record("measurement", JsValue::from(dt as f64));
                    }
                }
                step(scope, tasks, task_cost, ticks.clone(), t0);
            }),
        );
    });
    browser.run_for(SimDuration::from_secs(6));
    read_measure(browser)
}

/// CSS animation as an implicit clock (Schwarz et al., §IV-A2).
#[derive(Debug, Clone, Copy)]
pub struct CssAnimationClock {
    /// Per-task cost under secret A.
    pub cost_a: SimDuration,
    /// Per-task cost under secret B.
    pub cost_b: SimDuration,
}

impl Default for CssAnimationClock {
    fn default() -> Self {
        CssAnimationClock {
            cost_a: SimDuration::from_millis(20),
            cost_b: SimDuration::from_millis(45),
        }
    }
}

impl TimingAttack for CssAnimationClock {
    fn name(&self) -> &'static str {
        "CSS Animation"
    }

    fn clock(&self) -> &'static str {
        "requestAnimationFrame"
    }

    fn measure(&self, browser: &mut Browser, secret: Secret) -> f64 {
        let cost = match secret {
            Secret::A => self.cost_a,
            Secret::B => self.cost_b,
        };
        count_ticks_during_tasks(browser, start_css_ticker, cost, 10)
    }
}

/// Video frame / WebVTT cue callbacks as an implicit clock (Kohlbrenner &
/// Shacham, §IV-A2).
#[derive(Debug, Clone, Copy)]
pub struct VideoVttClock {
    /// Per-task cost under secret A.
    pub cost_a: SimDuration,
    /// Per-task cost under secret B.
    pub cost_b: SimDuration,
}

impl Default for VideoVttClock {
    fn default() -> Self {
        VideoVttClock {
            cost_a: SimDuration::from_millis(30),
            cost_b: SimDuration::from_millis(80),
        }
    }
}

impl TimingAttack for VideoVttClock {
    fn name(&self) -> &'static str {
        "Video/WebVTT"
    }

    fn clock(&self) -> &'static str {
        "requestAnimationFrame"
    }

    fn measure(&self, browser: &mut Browser, secret: Secret) -> f64 {
        let cost = match secret {
            Secret::A => self.cost_a,
            Secret::B => self.cost_b,
        };
        count_ticks_during_tasks(browser, |scope| start_media_ticker(scope, 33.3), cost, 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_timing_attack;
    use jsk_defenses::registry::DefenseKind;

    #[test]
    fn svg_filtering_matches_table2_on_chrome() {
        let r = run_timing_attack(&SvgFiltering::default(), DefenseKind::LegacyChrome, 8, 21);
        assert!(!r.defended());
        let (a, b) = r.summaries();
        assert!((a.mean - 16.66).abs() < 1.5, "low-res mean {}", a.mean);
        assert!((b.mean - 18.85).abs() < 1.5, "high-res mean {}", b.mean);
    }

    #[test]
    fn svg_filtering_is_flat_under_kernel() {
        let r = run_timing_attack(&SvgFiltering::default(), DefenseKind::JsKernel, 8, 21);
        assert!(r.defended(), "{:?} vs {:?}", r.a, r.b);
    }

    #[test]
    fn history_sniffing_beats_legacy_not_kernel() {
        let legacy = run_timing_attack(&HistorySniffing, DefenseKind::LegacyChrome, 6, 22);
        assert!(!legacy.defended());
        let kernel = run_timing_attack(&HistorySniffing, DefenseKind::JsKernel, 6, 22);
        assert!(kernel.defended(), "{:?} vs {:?}", kernel.a, kernel.b);
    }

    #[test]
    fn css_clock_beats_legacy_not_kernel() {
        let legacy = run_timing_attack(
            &CssAnimationClock::default(),
            DefenseKind::LegacyChrome,
            6,
            23,
        );
        assert!(!legacy.defended(), "{:?} vs {:?}", legacy.a, legacy.b);
        let kernel = run_timing_attack(&CssAnimationClock::default(), DefenseKind::JsKernel, 6, 23);
        assert!(kernel.defended(), "{:?} vs {:?}", kernel.a, kernel.b);
    }
}
