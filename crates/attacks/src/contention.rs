//! Loophole-style shared-event-loop contention probe (Vila & Köpf, USENIX
//! Security '17) — the first of the two attack families the fuzzer's seed
//! corpus carries beyond Table I.
//!
//! Where [`crate::loopscan::Loopscan`] timestamps each self-posted task
//! and reports the maximum gap (so clock mediation blunts it), this probe
//! never reads a clock at all: it *counts* how many self-posted tasks
//! retire before a fixed deadline. A victim computation sharing the event
//! loop steals slices from the flood, so the count itself is the
//! measurement — an implicit clock made of throughput. Defenses that only
//! coarsen or determinize `performance.now` leave the count intact; the
//! only robust defense is refusing the self-post flood, which is exactly
//! what the `policy_attack-loophole` family policy (rule
//! `attack-loophole/no-self-post`) does in `KernelConfig::hardened()`.

use crate::harness::{Secret, TimingAttack};
use crate::ticker::start_post_task_ticker;
use jsk_browser::browser::Browser;
use jsk_browser::task::cb;
use jsk_browser::value::JsValue;
use jsk_sim::time::SimDuration;

/// The contention probe: a self-post flood racing a secret-dependent
/// victim computation on the shared loop.
#[derive(Debug, Clone)]
pub struct ContentionProbe {
    /// Victim main-thread computation under secret A, milliseconds.
    pub victim_a_ms: u64,
    /// Victim main-thread computation under secret B, milliseconds.
    pub victim_b_ms: u64,
    /// Counting window in milliseconds (the probe's deadline).
    pub window_ms: f64,
}

impl Default for ContentionProbe {
    fn default() -> Self {
        // The window is long enough that Fuzzyfox's pause inflation always
        // hits its 250 ms cap — a *fixed* extra the throughput count rides
        // over — while the 40 ms victim contrast stays ~9 % of the window.
        ContentionProbe {
            victim_a_ms: 10,
            victim_b_ms: 50,
            window_ms: 200.0,
        }
    }
}

impl TimingAttack for ContentionProbe {
    fn name(&self) -> &'static str {
        "Contention probe"
    }

    fn clock(&self) -> &'static str {
        "postMessage throughput"
    }

    fn measure(&self, browser: &mut Browser, secret: Secret) -> f64 {
        let victim_ms = match secret {
            Secret::A => self.victim_a_ms,
            Secret::B => self.victim_b_ms,
        };
        let window_ms = self.window_ms;

        // Attacker context (0): flood the loop with self-posts and report
        // how many retired by the deadline. No clock reads anywhere.
        browser.boot_in_context(0, move |scope| {
            let ticks = start_post_task_ticker(scope);
            scope.set_timeout(
                window_ms,
                cb(move |scope, _| {
                    scope.record("measurement", JsValue::from(*ticks.borrow() as f64));
                }),
            );
        });

        // Victim context (1): a secret-dependent burst early in the window.
        browser.boot_in_context(1, move |scope| {
            scope.set_timeout(
                5.0,
                cb(move |scope, _| {
                    scope.compute(SimDuration::from_millis(victim_ms));
                }),
            );
        });

        // Generous horizon: clock-fuzzing defenses inflate the deadline
        // timer's turnaround (Fuzzyfox pads up to 250 ms), and the run must
        // outlast it or the recording never lands.
        browser.run_for(SimDuration::from_millis_f64(window_ms * 2.0 + 500.0));
        browser
            .record_value("measurement")
            .and_then(JsValue::as_f64)
            // Under the hardened kernel the flood is denied outright and
            // the counter never moves past zero.
            .unwrap_or(0.0)
    }

    fn min_rel_gap(&self) -> f64 {
        0.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_timing_attack;
    use jsk_defenses::registry::DefenseKind;

    #[test]
    fn contention_probe_beats_legacy_chrome() {
        let r = run_timing_attack(
            &ContentionProbe::default(),
            DefenseKind::LegacyChrome,
            6,
            41,
        );
        assert!(!r.defended(), "{:?} vs {:?}", r.a, r.b);
        let (a, b) = r.summaries();
        // The heavier victim steals more loop time, so fewer ticks retire.
        assert!(a.mean > b.mean, "light {} vs heavy {}", a.mean, b.mean);
    }

    #[test]
    fn contention_probe_counts_through_clock_fuzzing() {
        // Fuzzyfox randomizes the clock but cannot hide throughput: the
        // count is not a clock read.
        let r = run_timing_attack(&ContentionProbe::default(), DefenseKind::Fuzzyfox, 6, 42);
        assert!(!r.defended(), "{:?} vs {:?}", r.a, r.b);
    }

    #[test]
    fn hardened_kernel_denies_the_flood() {
        let r = run_timing_attack(
            &ContentionProbe::default(),
            DefenseKind::JsKernelHardened,
            6,
            43,
        );
        assert!(r.defended(), "{:?} vs {:?}", r.a, r.b);
        // Denied flood: the counter never advances.
        assert!(r.a.iter().chain(&r.b).all(|&m| m == 0.0), "{:?}", r.a);
    }
}
