//! Extension attack: the SharedArrayBuffer fine-grained timer (Schwarz et
//! al., "Fantastic Timers", FC '17 — the paper's reference \[12\]).
//!
//! A worker increments a shared counter as fast as it can; the main thread
//! reads the counter around a secret operation. The counter is a clock far
//! finer than anything `performance.now` offers, defeating every
//! clock-degrading defense — which is why most evaluated browsers shipped
//! with SAB disabled post-Spectre. The experiment force-enables SAB to show
//! the defense-relevant behaviour: JavaScript Zero removes the constructor;
//! JSKernel redirects every access through the kernel event queue
//! (§III-E2), so a task observes a single snapshot.

use crate::harness::{Secret, TimingAttack};
use jsk_browser::browser::Browser;
use jsk_browser::task::{cb, worker_script};
use jsk_browser::value::JsValue;
use jsk_sim::time::SimDuration;

/// The SAB-timer attack.
#[derive(Debug, Clone, Copy)]
pub struct SabClock {
    /// Secret operation duration under A.
    pub op_a: SimDuration,
    /// Secret operation duration under B.
    pub op_b: SimDuration,
}

impl Default for SabClock {
    fn default() -> Self {
        SabClock {
            op_a: SimDuration::from_millis(2),
            op_b: SimDuration::from_millis(6),
        }
    }
}

impl TimingAttack for SabClock {
    fn name(&self) -> &'static str {
        "SAB Timer"
    }

    fn clock(&self) -> &'static str {
        "SharedArrayBuffer"
    }

    fn prepare(&self, browser: &mut Browser, _secret: Secret) {
        browser.set_sab_enabled(true);
    }

    fn measure(&self, browser: &mut Browser, secret: Secret) -> f64 {
        let op = match secret {
            Secret::A => self.op_a,
            Secret::B => self.op_b,
        };
        browser.boot(move |scope| {
            let Some(sab) = scope.sab_create(4) else {
                // The defense removed the constructor (JavaScript Zero):
                // the attacker learns nothing.
                scope.record("measurement", JsValue::from(0.0));
                return;
            };
            // Counting worker: increments the shared cell in a tight loop
            // (one increment per 100 ns). A polyfill "worker" runs on the
            // main thread, where the loop cannot make progress while the
            // measuring task runs — which kills the clock.
            let _w = scope.create_worker(
                "counter.js",
                worker_script(move |scope| {
                    scope.sab_run_counter(sab, 0, 100);
                }),
            );
            // Give the counter time to spin up, then measure.
            scope.set_timeout(
                40.0,
                cb(move |scope, _| {
                    let c0 = scope.sab_read(sab, 0).unwrap_or(0.0);
                    scope.compute(op);
                    let c1 = scope.sab_read(sab, 0).unwrap_or(0.0);
                    scope.record("measurement", JsValue::from(c1 - c0));
                }),
            );
        });
        browser.run_for(SimDuration::from_millis(120));
        browser
            .record_value("measurement")
            .and_then(JsValue::as_f64)
            .expect("SAB attack records a measurement")
    }

    fn min_rel_gap(&self) -> f64 {
        0.10
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_timing_attack;
    use jsk_defenses::registry::DefenseKind;

    #[test]
    fn sab_timer_beats_even_tor_but_not_kernel_or_chrome_zero() {
        let tor = run_timing_attack(&SabClock::default(), DefenseKind::TorBrowser, 5, 41);
        assert!(
            !tor.defended(),
            "a SAB counter ignores the coarse clock: {:?} vs {:?}",
            tor.a,
            tor.b
        );
        let kernel = run_timing_attack(&SabClock::default(), DefenseKind::JsKernel, 5, 41);
        assert!(
            kernel.defended(),
            "kernel-frozen reads must hide the counter: {:?} vs {:?}",
            kernel.a,
            kernel.b
        );
        let cz = run_timing_attack(&SabClock::default(), DefenseKind::ChromeZero, 5, 41);
        assert!(
            cz.defended(),
            "no constructor, no clock: {:?} vs {:?}",
            cz.a,
            cz.b
        );
    }
}
