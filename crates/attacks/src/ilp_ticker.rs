//! Hacky Racers-style ILP stealthy ticker (Xiao & Ainsworth) — the second
//! attack family the fuzzer's seed corpus carries beyond Table I.
//!
//! The attacker builds a timer out of instruction-level parallelism:
//! several independent increment chains race down the pipeline, and
//! reading how far they got stands in for elapsed time. No timer API, no
//! `performance.now`, no worker channel — so defenses that mediate,
//! coarsen, or fuzz the JavaScript clocks never see it. In the simulator
//! [`jsk_browser::scope::JsScope::ilp_counter_read`] derives the count
//! from the *raw* instant, deliberately bypassing clock mediation; the
//! only thing that stops it is the `policy_attack-hacky-racers` family
//! policy (rule `attack-hacky-racers/no-ilp-counter`) denying the read,
//! which `KernelConfig::hardened()` ships.

use crate::harness::{Secret, TimingAttack};
use jsk_browser::browser::Browser;
use jsk_browser::value::JsValue;
use jsk_sim::time::SimDuration;

/// The ILP ticker: time a secret-dependent computation with racing
/// increment chains instead of a clock API.
#[derive(Debug, Clone)]
pub struct IlpTicker {
    /// Computation under secret A, milliseconds.
    pub work_a_ms: u64,
    /// Computation under secret B, milliseconds.
    pub work_b_ms: u64,
    /// Parallel increment chains kept in flight.
    pub chains: u32,
}

impl Default for IlpTicker {
    fn default() -> Self {
        IlpTicker {
            work_a_ms: 5,
            work_b_ms: 20,
            chains: 8,
        }
    }
}

impl TimingAttack for IlpTicker {
    fn name(&self) -> &'static str {
        "ILP ticker"
    }

    fn clock(&self) -> &'static str {
        "instruction-level parallelism"
    }

    fn measure(&self, browser: &mut Browser, secret: Secret) -> f64 {
        let ms = match secret {
            Secret::A => self.work_a_ms,
            Secret::B => self.work_b_ms,
        };
        let chains = self.chains;
        browser.boot(move |scope| {
            let before = scope.ilp_counter_read(chains);
            scope.compute(SimDuration::from_millis(ms));
            let after = scope.ilp_counter_read(chains);
            scope.record("measurement", JsValue::from(after - before));
        });
        browser.run_until_idle();
        browser
            .record_value("measurement")
            .and_then(JsValue::as_f64)
            .expect("ilp ticker records its count delta")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_timing_attack;
    use jsk_defenses::registry::DefenseKind;

    #[test]
    fn ilp_ticker_beats_legacy_chrome() {
        let r = run_timing_attack(&IlpTicker::default(), DefenseKind::LegacyChrome, 6, 51);
        assert!(!r.defended(), "{:?} vs {:?}", r.a, r.b);
        let (a, b) = r.summaries();
        assert!(b.mean > a.mean, "heavier work retires more increments");
    }

    #[test]
    fn ilp_ticker_pierces_every_clock_defense() {
        // The count never touches a mediated clock, so clock fuzzing
        // (Fuzzyfox), coarsening (Tor Browser), and even the shipped
        // kernel's deterministic clock all leak — that stealth is the
        // family's point, and why the hardened policy set exists.
        for (defense, seed) in [
            (DefenseKind::Fuzzyfox, 52),
            (DefenseKind::TorBrowser, 53),
            (DefenseKind::JsKernel, 54),
        ] {
            let r = run_timing_attack(&IlpTicker::default(), defense, 6, seed);
            assert!(!r.defended(), "{defense:?}: {:?} vs {:?}", r.a, r.b);
        }
    }

    #[test]
    fn hardened_kernel_denies_the_counter() {
        let r = run_timing_attack(&IlpTicker::default(), DefenseKind::JsKernelHardened, 6, 55);
        assert!(r.defended(), "{:?} vs {:?}", r.a, r.b);
        // Denied reads return zero, so every measurement collapses to 0.
        assert!(r.a.iter().chain(&r.b).all(|&m| m == 0.0), "{:?}", r.a);
    }
}
