//! # jsk-attacks — the web concurrency attack suite
//!
//! Implementations of every attack in the paper's Table I:
//!
//! * **`setTimeout` implicit clock** ([`timer_attacks`]): cache attack,
//!   script parsing, image decoding, clock edge;
//! * **animation clocks** ([`raf_attacks`]): history sniffing, SVG
//!   filtering, floating point, CSS animation, Video/WebVTT;
//! * **event-loop monitoring** ([`loopscan`]);
//! * **CVE exploit scripts** ([`cve_exploits`]) for the twelve
//!   web-concurrency vulnerabilities.
//!
//! Two post-paper attack families ride with the fuzzer's seed corpus and
//! are defeated only by `KernelConfig::hardened()`:
//!
//! * **shared-event-loop contention** ([`contention`]) — Loophole-style
//!   throughput counting (Vila & Köpf);
//! * **ILP stealthy tickers** ([`ilp_ticker`]) — clock-free timers from
//!   racing increment chains (Hacky Racers, Xiao & Ainsworth).
//!
//! The [`harness`] runs any of them against any defense configuration and
//! returns statistical (timing) or oracle-based (CVE) verdicts — every cell
//! of Table I is *computed*, never hard-coded.

pub mod contention;
pub mod cve_exploits;
pub mod harness;
pub mod ilp_ticker;
pub mod loopscan;
pub mod raf_attacks;
pub mod sab_clock;
pub mod ticker;
pub mod timer_attacks;

pub use contention::ContentionProbe;
pub use harness::{
    run_cve_attack, run_cve_attack_observed, run_timing_attack, run_timing_attack_observed,
    CveAttackResult, CveExploit, Secret, TimingAttack, TimingAttackResult,
};
pub use ilp_ticker::IlpTicker;
pub use loopscan::Loopscan;
pub use raf_attacks::{
    CssAnimationClock, FloatingPoint, HistorySniffing, SvgFiltering, VideoVttClock,
};
pub use sab_clock::SabClock;
pub use timer_attacks::{CacheAttack, ClockEdge, ImageDecoding, ScriptParsing};

/// All ten timing-attack rows of Table I, in the table's order.
#[must_use]
pub fn all_timing_attacks() -> Vec<Box<dyn TimingAttack>> {
    vec![
        Box::new(CacheAttack),
        Box::new(ScriptParsing::default()),
        Box::new(ImageDecoding::default()),
        Box::new(ClockEdge::default()),
        Box::new(HistorySniffing),
        Box::new(SvgFiltering::default()),
        Box::new(FloatingPoint),
        Box::new(Loopscan::default()),
        Box::new(CssAnimationClock::default()),
        Box::new(VideoVttClock::default()),
    ]
}
