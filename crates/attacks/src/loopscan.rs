//! Loopscan (Vila & Köpf, USENIX Security '17, §IV-A3): monitoring the
//! shared event loop to fingerprint which cross-origin site is loading.
//!
//! The attacker floods its own context with self-posted tasks, timestamps
//! each, and records the **maximum inter-task gap**: whenever the victim
//! page (a different browsing context sharing the main thread) runs a long
//! task, the attacker's ticks stall. Each site's longest burst is a
//! fingerprint — Table II reports google vs. youtube.

use crate::harness::{Secret, TimingAttack};
use jsk_browser::browser::Browser;
use jsk_browser::task::cb;
use jsk_browser::value::JsValue;
use jsk_sim::time::SimDuration;
use jsk_workloads::site::{register_site, SiteProfile};
use std::cell::RefCell;
use std::rc::Rc;

/// The Loopscan attack.
#[derive(Debug, Clone)]
pub struct Loopscan {
    /// Victim site under secret A.
    pub site_a: SiteProfile,
    /// Victim site under secret B.
    pub site_b: SiteProfile,
    /// Monitoring window in milliseconds.
    pub window_ms: f64,
}

impl Default for Loopscan {
    fn default() -> Self {
        Loopscan {
            site_a: SiteProfile::named("google"),
            site_b: SiteProfile::named("youtube"),
            window_ms: 700.0,
        }
    }
}

impl Loopscan {
    fn site_for(&self, secret: Secret) -> &SiteProfile {
        match secret {
            Secret::A => &self.site_a,
            Secret::B => &self.site_b,
        }
    }
}

impl TimingAttack for Loopscan {
    fn name(&self) -> &'static str {
        "Loopscan"
    }

    fn clock(&self) -> &'static str {
        "requestAnimationFrame"
    }

    fn measure(&self, browser: &mut Browser, secret: Secret) -> f64 {
        let profile = self.site_for(secret).clone();
        register_site(browser, &profile);
        let scale = browser.profile().site_task_scale;
        // The monitor must span the victim's whole load, which slower
        // engines stretch proportionally.
        let window_ms = self.window_ms * scale.max(1.0);
        // Sub-millisecond self-posting saturates long windows; fall back to
        // a timer chain when the engine stretches the load (its 4 ms
        // resolution is plenty for the scaled bursts).
        let coarse = scale > 2.0;

        // Attacker context (0): self-posting monitor recording the max gap.
        browser.boot_in_context(0, move |scope| {
            let max_gap = Rc::new(RefCell::new(0.0f64));
            let last = Rc::new(RefCell::new(scope.performance_now()));
            fn tick(
                scope: &mut jsk_browser::scope::JsScope<'_>,
                last: Rc<RefCell<f64>>,
                max_gap: Rc<RefCell<f64>>,
            ) {
                let now = scope.performance_now();
                {
                    let mut l = last.borrow_mut();
                    let gap = now - *l;
                    *l = now;
                    let mut m = max_gap.borrow_mut();
                    if gap > *m {
                        *m = gap;
                    }
                }
                scope.post_task(cb(move |scope, _| {
                    tick(scope, last.clone(), max_gap.clone());
                }));
            }
            fn tick_coarse(
                scope: &mut jsk_browser::scope::JsScope<'_>,
                last: Rc<RefCell<f64>>,
                max_gap: Rc<RefCell<f64>>,
            ) {
                let now = scope.performance_now();
                {
                    let mut l = last.borrow_mut();
                    let gap = now - *l;
                    *l = now;
                    let mut m = max_gap.borrow_mut();
                    if gap > *m {
                        *m = gap;
                    }
                }
                scope.set_timeout(
                    0.0,
                    cb(move |scope, _| {
                        tick_coarse(scope, last.clone(), max_gap.clone());
                    }),
                );
            }
            if coarse {
                tick_coarse(scope, last, max_gap.clone());
            } else {
                tick(scope, last, max_gap.clone());
            }
            scope.set_timeout(
                window_ms,
                cb(move |scope, _| {
                    scope.record("measurement", JsValue::from(*max_gap.borrow()));
                }),
            );
        });

        // Victim context (1): the site loads on the same main thread. The
        // page body is built by the workload's own driver.
        let p = profile.clone();
        browser.boot_in_context(1, move |scope| {
            jsk_workloads::site::build_page(scope, &p, scale);
        });

        browser.run_for(SimDuration::from_millis_f64(window_ms * 2.0 + 500.0));
        browser
            .record_value("measurement")
            .and_then(JsValue::as_f64)
            .expect("loopscan records its max gap")
    }

    fn min_rel_gap(&self) -> f64 {
        0.10
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_timing_attack;
    use jsk_defenses::registry::DefenseKind;

    #[test]
    fn loopscan_beats_legacy_chrome_with_table2_magnitudes() {
        let r = run_timing_attack(&Loopscan::default(), DefenseKind::LegacyChrome, 6, 31);
        assert!(!r.defended(), "{:?} vs {:?}", r.a, r.b);
        let (google, youtube) = r.summaries();
        // Table II Chrome: 4.5 ms vs 8.8 ms.
        assert!((3.0..7.0).contains(&google.mean), "google {}", google.mean);
        assert!(
            (6.5..12.0).contains(&youtube.mean),
            "youtube {}",
            youtube.mean
        );
    }

    #[test]
    fn loopscan_beats_deterfox_but_not_kernel() {
        let deterfox = run_timing_attack(&Loopscan::default(), DefenseKind::DeterFox, 6, 32);
        assert!(
            !deterfox.defended(),
            "cross-context resync must leak: {:?} vs {:?}",
            deterfox.a,
            deterfox.b
        );
        let kernel = run_timing_attack(&Loopscan::default(), DefenseKind::JsKernel, 6, 32);
        assert!(kernel.defended(), "{:?} vs {:?}", kernel.a, kernel.b);
        // Table II: JSKernel reports 1 ms for both sites.
        let (a, b) = kernel.summaries();
        assert!(a.mean <= 1.6 && b.mean <= 1.6, "{} / {}", a.mean, b.mean);
    }
}
