//! Implicit-clock primitives shared by the attacks.
//!
//! An *implicit clock* is any repeating browser callback whose invocation
//! count stands in for elapsed time: a `setTimeout` chain, a worker's
//! `postMessage` stream, `requestAnimationFrame`, a CSS animation, or video
//! frame callbacks (§II-A1).

use jsk_browser::scope::JsScope;
use jsk_browser::task::cb;
use std::cell::RefCell;
use std::rc::Rc;

/// A shared tick counter.
pub type TickCounter = Rc<RefCell<u64>>;

/// Starts a self-rescheduling `setTimeout` chain that increments the
/// returned counter on every firing (the Listing 1 pattern with timers).
/// The chain inherits the browser's nested-timer clamp, exactly like the
/// real attack.
pub fn start_timeout_ticker(scope: &mut JsScope<'_>, delay_ms: f64) -> TickCounter {
    let counter: TickCounter = Rc::new(RefCell::new(0));
    fn arm(scope: &mut JsScope<'_>, delay_ms: f64, counter: TickCounter) {
        scope.set_timeout(
            delay_ms,
            cb(move |scope, _| {
                *counter.borrow_mut() += 1;
                arm(scope, delay_ms, counter.clone());
            }),
        );
    }
    arm(scope, delay_ms, counter.clone());
    counter
}

/// Starts a self-posting task chain (`postMessage`-to-self) incrementing
/// the counter — the sub-millisecond event-loop monitor Loopscan uses.
pub fn start_post_task_ticker(scope: &mut JsScope<'_>) -> TickCounter {
    let counter: TickCounter = Rc::new(RefCell::new(0));
    fn arm(scope: &mut JsScope<'_>, counter: TickCounter) {
        scope.post_task(cb(move |scope, _| {
            *counter.borrow_mut() += 1;
            arm(scope, counter.clone());
        }));
    }
    arm(scope, counter.clone());
    counter
}

/// Starts a CSS-animation tick counter.
pub fn start_css_ticker(scope: &mut JsScope<'_>) -> TickCounter {
    let counter: TickCounter = Rc::new(RefCell::new(0));
    let c = counter.clone();
    scope.start_css_animation(cb(move |_, _| {
        *c.borrow_mut() += 1;
    }));
    counter
}

/// Starts a video/WebVTT cue tick counter at the given frame period.
pub fn start_media_ticker(scope: &mut JsScope<'_>, period_ms: f64) -> TickCounter {
    let counter: TickCounter = Rc::new(RefCell::new(0));
    let c = counter.clone();
    scope.start_media_ticker(
        period_ms,
        cb(move |_, _| {
            *c.borrow_mut() += 1;
        }),
    );
    counter
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsk_browser::browser::{Browser, BrowserConfig};
    use jsk_browser::mediator::LegacyMediator;
    use jsk_browser::profile::BrowserProfile;
    use jsk_browser::value::JsValue;
    use jsk_sim::time::SimDuration;

    fn browser() -> Browser {
        Browser::new(
            BrowserConfig::new(BrowserProfile::chrome(), 42),
            Box::new(LegacyMediator),
        )
    }

    #[test]
    fn timeout_ticker_settles_at_the_nested_clamp() {
        let mut b = browser();
        b.boot(|scope| {
            let ticks = start_timeout_ticker(scope, 0.0);
            scope.set_timeout(
                200.0,
                cb(move |scope, _| {
                    scope.record("ticks", JsValue::from(*ticks.borrow() as f64));
                }),
            );
        });
        b.run_for(SimDuration::from_millis(400));
        let ticks = b.record_value("ticks").unwrap().as_f64().unwrap();
        // ~200 ms at a 4 ms clamped cadence (first few at 1 ms): 45–60.
        assert!((40.0..70.0).contains(&ticks), "{ticks}");
    }

    #[test]
    fn post_task_ticker_is_much_faster_than_timers() {
        let mut b = browser();
        b.boot(|scope| {
            let ticks = start_post_task_ticker(scope);
            scope.set_timeout(
                50.0,
                cb(move |scope, _| {
                    scope.record("ticks", JsValue::from(*ticks.borrow() as f64));
                }),
            );
        });
        b.run_for(SimDuration::from_millis(100));
        let ticks = b.record_value("ticks").unwrap().as_f64().unwrap();
        assert!(ticks > 300.0, "{ticks}");
    }

    #[test]
    fn css_ticker_follows_vsync() {
        let mut b = browser();
        b.boot(|scope| {
            let ticks = start_css_ticker(scope);
            scope.set_timeout(
                167.0,
                cb(move |scope, _| {
                    scope.record("ticks", JsValue::from(*ticks.borrow() as f64));
                }),
            );
        });
        b.run_for(SimDuration::from_millis(300));
        let ticks = b.record_value("ticks").unwrap().as_f64().unwrap();
        assert!((6.0..14.0).contains(&ticks), "{ticks}");
    }
}
