//! The four `setTimeout`-as-implicit-clock attacks of Table I: the cache
//! attack, script-parsing and image-decoding DOM side channels, and the
//! clock-edge attack.

use crate::harness::{Secret, TimingAttack};
use crate::ticker::start_timeout_ticker;
use jsk_browser::browser::Browser;
use jsk_browser::net::ResourceSpec;
use jsk_browser::task::cb;
use jsk_browser::value::JsValue;
use jsk_sim::time::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;

fn read_measure(browser: &Browser) -> f64 {
    browser
        .record_value("measurement")
        .and_then(JsValue::as_f64)
        .expect("attack records a measurement")
}

/// The Oren-style cache attack (§IV-A1): the secret is whether shared
/// content has been flushed from the cache; the access-time difference is
/// read through a `setTimeout` tick count.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheAttack;

impl TimingAttack for CacheAttack {
    fn name(&self) -> &'static str {
        "Cache Attack"
    }

    fn clock(&self) -> &'static str {
        "setTimeout"
    }

    fn prepare(&self, browser: &mut Browser, secret: Secret) {
        // Secret A: the victim's content set is cached; secret B: flushed.
        for i in 0..40 {
            browser.seed_content_cache(format!("victim-{i}"), secret == Secret::A);
        }
    }

    fn measure(&self, browser: &mut Browser, _secret: Secret) -> f64 {
        browser.boot(|scope| {
            let ticks = start_timeout_ticker(scope, 0.0);
            // Chain 40 access tasks; report the tick count when they finish.
            fn access(
                scope: &mut jsk_browser::scope::JsScope<'_>,
                left: u32,
                ticks: crate::ticker::TickCounter,
            ) {
                scope.access_cached(format!("victim-{}", 40 - left));
                if left > 1 {
                    scope.post_task(cb(move |scope, _| access(scope, left - 1, ticks.clone())));
                } else {
                    // Read the count one task later so ticks displaced by the
                    // final access have dispatched.
                    scope.post_task(cb(move |scope, _| {
                        scope.record("measurement", JsValue::from(*ticks.borrow() as f64));
                    }));
                }
            }
            access(scope, 40, ticks);
        });
        browser.run_for(SimDuration::from_millis(800));
        read_measure(browser)
    }
}

/// van Goethem's script-parsing attack (§IV-A1, Figure 2): load a
/// cross-origin file as a script twice — the second load is served from the
/// HTTP cache, isolating the size-dependent parse time, which a timer tick
/// count measures.
#[derive(Debug, Clone, Copy)]
pub struct ScriptParsing {
    /// File size (MB) under secret A.
    pub size_a_mb: u64,
    /// File size (MB) under secret B.
    pub size_b_mb: u64,
}

impl Default for ScriptParsing {
    fn default() -> Self {
        ScriptParsing {
            size_a_mb: 2,
            size_b_mb: 9,
        }
    }
}

/// A resource loader (script or image) the shared measurement body drives.
type Loader = Box<dyn Fn(&mut jsk_browser::scope::JsScope<'_>, jsk_browser::task::Callback)>;

impl ScriptParsing {
    const URL: &'static str = "https://victim.example/friends-list.js";

    fn size_for(&self, secret: Secret) -> u64 {
        match secret {
            Secret::A => self.size_a_mb << 20,
            Secret::B => self.size_b_mb << 20,
        }
    }

    /// Runs the measurement body against a pre-registered resource; shared
    /// with the image-decoding attack (the loader differs).
    fn measure_load(browser: &mut Browser, as_image: bool) -> f64 {
        browser.boot(move |scope| {
            let load: Loader = if as_image {
                Box::new(|scope, on| scope.load_image(ScriptParsing::URL, on))
            } else {
                Box::new(|scope, on| scope.load_script(ScriptParsing::URL, on))
            };
            // First (cold) load warms the HTTP cache.
            let again = move |scope: &mut jsk_browser::scope::JsScope<'_>, _: JsValue| {
                // Second load: pre-schedule a fan of independent 1 ms-grid
                // timers; the count that fired by onload measures how long
                // the (cache-served) load + parse blocked the thread.
                let fired = Rc::new(RefCell::new(0u64));
                for i in 1..=60u64 {
                    let fired = fired.clone();
                    scope.set_timeout(
                        i as f64,
                        cb(move |_, _| {
                            *fired.borrow_mut() += 1;
                        }),
                    );
                }
                let on_done = cb(move |scope: &mut jsk_browser::scope::JsScope<'_>, _| {
                    // Read the count one task later, so timers displaced by
                    // the parse/decode (which runs inside the completion
                    // task) have dispatched.
                    let fired = fired.clone();
                    scope.post_task(cb(move |scope, _| {
                        let count = *fired.borrow();
                        // The attacker reports the fired count × 1 ms grid.
                        scope.record("measurement", JsValue::from(count as f64));
                    }));
                });
                if as_image {
                    scope.load_image(ScriptParsing::URL, on_done);
                } else {
                    scope.load_script(ScriptParsing::URL, on_done);
                }
            };
            load(scope, cb(again));
        });
        browser.run_for(SimDuration::from_secs(30));
        read_measure(browser)
    }
}

impl TimingAttack for ScriptParsing {
    fn name(&self) -> &'static str {
        "Script Parsing"
    }

    fn clock(&self) -> &'static str {
        "setTimeout"
    }

    fn prepare(&self, browser: &mut Browser, secret: Secret) {
        browser.register_resource(Self::URL, ResourceSpec::of_size(self.size_for(secret)));
    }

    fn measure(&self, browser: &mut Browser, _secret: Secret) -> f64 {
        Self::measure_load(browser, false)
    }
}

/// van Goethem's image-decoding variant: same structure, decoding instead
/// of parsing.
#[derive(Debug, Clone, Copy)]
pub struct ImageDecoding {
    /// File size (MB) under secret A.
    pub size_a_mb: u64,
    /// File size (MB) under secret B.
    pub size_b_mb: u64,
}

impl Default for ImageDecoding {
    fn default() -> Self {
        ImageDecoding {
            size_a_mb: 2,
            size_b_mb: 8,
        }
    }
}

impl TimingAttack for ImageDecoding {
    fn name(&self) -> &'static str {
        "Image Decoding"
    }

    fn clock(&self) -> &'static str {
        "setTimeout"
    }

    fn prepare(&self, browser: &mut Browser, secret: Secret) {
        let size = match secret {
            Secret::A => self.size_a_mb << 20,
            Secret::B => self.size_b_mb << 20,
        };
        browser.register_resource(ScriptParsing::URL, ResourceSpec::of_size(size));
    }

    fn measure(&self, browser: &mut Browser, _secret: Secret) -> f64 {
        ScriptParsing::measure_load(browser, true)
    }
}

/// The clock-edge attack (§IV-A4): build a sub-grain timer by counting
/// cheap operations between two edges of the coarse clock, then use the
/// count to estimate a secret operation's duration.
#[derive(Debug, Clone, Copy)]
pub struct ClockEdge {
    /// Secret operation duration under A.
    pub op_a: SimDuration,
    /// Secret operation duration under B.
    pub op_b: SimDuration,
}

impl Default for ClockEdge {
    fn default() -> Self {
        ClockEdge {
            op_a: SimDuration::from_micros(250),
            op_b: SimDuration::from_micros(650),
        }
    }
}

impl TimingAttack for ClockEdge {
    fn name(&self) -> &'static str {
        "Clock Edge"
    }

    fn clock(&self) -> &'static str {
        "setTimeout"
    }

    fn measure(&self, browser: &mut Browser, secret: Secret) -> f64 {
        let op = match secret {
            Secret::A => self.op_a,
            Secret::B => self.op_b,
        };
        browser.boot(move |scope| {
            const CHUNK: u64 = 500;
            const CAP: u32 = 2_000_000;
            let spin_to_edge = |scope: &mut jsk_browser::scope::JsScope<'_>| -> u32 {
                let start = scope.date_now();
                let mut iters = 0u32;
                loop {
                    scope.busy_loop(CHUNK);
                    iters += 1;
                    if scope.date_now() != start || iters > CAP {
                        break;
                    }
                }
                iters
            };
            // Align to an edge, then calibrate iterations per tick.
            spin_to_edge(scope);
            let per_tick = spin_to_edge(scope).max(1);
            // Align again, run the secret op, count the tick's remainder.
            spin_to_edge(scope);
            scope.compute(op);
            let after = spin_to_edge(scope);
            // Fraction of the tick the secret consumed.
            let fraction = 1.0 - f64::from(after) / f64::from(per_tick);
            scope.record("measurement", JsValue::from(fraction));
        });
        browser.run_until_idle();
        read_measure(browser)
    }

    fn min_rel_gap(&self) -> f64 {
        0.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_timing_attack;
    use jsk_defenses::registry::DefenseKind;

    #[test]
    fn cache_attack_beats_legacy_not_kernel() {
        let legacy = run_timing_attack(&CacheAttack, DefenseKind::LegacyChrome, 6, 10);
        assert!(!legacy.defended(), "{:?} vs {:?}", legacy.a, legacy.b);
        let kernel = run_timing_attack(&CacheAttack, DefenseKind::JsKernel, 6, 10);
        assert!(kernel.defended(), "{:?} vs {:?}", kernel.a, kernel.b);
    }

    #[test]
    fn script_parsing_beats_legacy_not_kernel() {
        let legacy = run_timing_attack(&ScriptParsing::default(), DefenseKind::LegacyChrome, 6, 11);
        assert!(!legacy.defended(), "{:?} vs {:?}", legacy.a, legacy.b);
        let kernel = run_timing_attack(&ScriptParsing::default(), DefenseKind::JsKernel, 6, 11);
        assert!(kernel.defended(), "{:?} vs {:?}", kernel.a, kernel.b);
    }

    #[test]
    fn clock_edge_beats_legacy_not_fuzzyfox() {
        let legacy = run_timing_attack(&ClockEdge::default(), DefenseKind::LegacyChrome, 6, 12);
        assert!(!legacy.defended(), "{:?} vs {:?}", legacy.a, legacy.b);
        let fuzzy = run_timing_attack(&ClockEdge::default(), DefenseKind::Fuzzyfox, 6, 12);
        assert!(fuzzy.defended(), "{:?} vs {:?}", fuzzy.a, fuzzy.b);
    }
}
