//! Figure 2 — the script-parsing attack's reported time vs. file size
//! (2–10 MB), one series per defense.
//!
//! The paper's reading: all defenses except JSKernel produce a series that
//! grows with file size (Chrome/Firefox/Edge linearly; Tor and Chrome Zero
//! noisier; Fuzzyfox noisy but growing); JSKernel is flat. The harness
//! prints each series plus its Pearson correlation with size.
//!
//! Run with `cargo bench -p jsk-bench --bench fig2`.

use jsk_attacks::harness::{run_timing_attack, Secret, TimingAttack};
use jsk_attacks::ScriptParsing;
use jsk_bench::{env_knob, Report};
use jsk_defenses::registry::DefenseKind;
use jsk_sim::stats::{pearson, Summary};

fn main() {
    let trials = env_knob("JSK_TRIALS", 25).min(12);
    let sizes: Vec<u64> = (1..=5).map(|i| i * 2).collect(); // 2,4,6,8,10 MB
    let columns = [
        DefenseKind::LegacyChrome,
        DefenseKind::LegacyFirefox,
        DefenseKind::LegacyEdge,
        DefenseKind::JsKernel,
        DefenseKind::ChromeZero,
        DefenseKind::TorBrowser,
        DefenseKind::Fuzzyfox,
    ];
    let mut headers: Vec<String> = vec!["Defense".into()];
    headers.extend(sizes.iter().map(|s| format!("{s} MB")));
    headers.push("corr(size)".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut report = Report::new(
        format!("Figure 2 — Script Parsing: reported time (ms) vs file size ({trials} runs/point)"),
        &header_refs,
    );

    for col in columns {
        let mut cells = vec![col.label().to_owned()];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &mb in &sizes {
            // Measure one size by making both secrets that size and pooling.
            let attack = ScriptParsing {
                size_a_mb: mb,
                size_b_mb: mb,
            };
            let result = run_timing_attack(&attack, col, trials, 0xF16002 + mb);
            let mut all = result.a.clone();
            all.extend_from_slice(&result.b);
            let s = Summary::of(&all);
            for v in &all {
                xs.push(mb as f64);
                ys.push(*v);
            }
            cells.push(format!("{:.1}", s.mean));
        }
        cells.push(format!("{:.2}", pearson(&xs, &ys)));
        report.row(cells);
        eprintln!("  finished {}", col.label());
    }
    report.print();
    println!(
        "\nPaper reading: every series except JSKernel's increases with \
         size (legacy browsers linearly); JSKernel's is flat, with \
         correlation ≈ 0. A defense is broken when the attacker can read \
         file sizes off the curve."
    );
    let _ = Secret::A;
    let _: &dyn TimingAttack = &ScriptParsing::default();
}
