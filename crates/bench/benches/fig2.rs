//! Figure 2 — the script-parsing attack's reported time vs. file size
//! (2–10 MB), one series per defense.
//!
//! The paper's reading: all defenses except JSKernel produce a series that
//! grows with file size (Chrome/Firefox/Edge linearly; Tor and Chrome Zero
//! noisier; Fuzzyfox noisy but growing); JSKernel is flat. The harness
//! prints each series plus its Pearson correlation with size.
//!
//! Run with `cargo bench -p jsk-bench --bench fig2` (`JSK_JOBS=n` fans the
//! defense × size points across workers).

use jsk_attacks::harness::run_timing_attack_observed;
use jsk_attacks::ScriptParsing;
use jsk_bench::record::{BenchReporter, CellRecord, Probe};
use jsk_bench::{env_knob, pool, Report};
use jsk_defenses::registry::DefenseKind;
use jsk_sim::stats::{pearson, Summary};

fn main() {
    let trials = env_knob("JSK_TRIALS", 25).min(12);
    let jobs = pool::jobs();
    let mut reporter = BenchReporter::new("fig2");
    reporter.knob("JSK_TRIALS", trials);
    let sizes: Vec<u64> = (1..=5).map(|i| i * 2).collect(); // 2,4,6,8,10 MB
    let columns = [
        DefenseKind::LegacyChrome,
        DefenseKind::LegacyFirefox,
        DefenseKind::LegacyEdge,
        DefenseKind::JsKernel,
        DefenseKind::ChromeZero,
        DefenseKind::TorBrowser,
        DefenseKind::Fuzzyfox,
    ];
    let mut headers: Vec<String> = vec!["Defense".into()];
    headers.extend(sizes.iter().map(|s| format!("{s} MB")));
    headers.push("corr(size)".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut report = Report::new(
        format!("Figure 2 — Script Parsing: reported time (ms) vs file size ({trials} runs/point)"),
        &header_refs,
    );

    // One work item per (defense, size) point; each returns the pooled
    // sample so the per-defense correlation can be computed afterwards.
    let npoints = sizes.len();
    let points: Vec<(Vec<f64>, Probe)> = pool::run_indexed(columns.len() * npoints, jobs, |i| {
        let (c, s) = (i / npoints, i % npoints);
        let (col, mb) = (columns[c], sizes[s]);
        // Measure one size by making both secrets that size and pooling.
        let attack = ScriptParsing {
            size_a_mb: mb,
            size_b_mb: mb,
        };
        let mut probe = Probe::default();
        let result = run_timing_attack_observed(&attack, col, trials, 0xF16002 + mb, &mut |b| {
            probe.observe(b);
        });
        let mut all = result.a;
        all.extend_from_slice(&result.b);
        eprintln!("  finished {} × {mb} MB", col.label());
        (all, probe)
    });

    for (c, col) in columns.iter().enumerate() {
        let mut cells = vec![col.label().to_owned()];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (s, &mb) in sizes.iter().enumerate() {
            let (all, probe) = &points[c * npoints + s];
            let summary = Summary::of(all);
            for v in all {
                xs.push(mb as f64);
                ys.push(*v);
            }
            cells.push(format!("{:.1}", summary.mean));
            reporter.cell(CellRecord::value(
                col.label(),
                format!("{mb} MB"),
                summary.mean,
                "ms",
            ));
            reporter.absorb(probe);
        }
        let corr = pearson(&xs, &ys);
        cells.push(format!("{corr:.2}"));
        reporter.cell(CellRecord::value(col.label(), "corr(size)", corr, "r"));
        report.row(cells);
    }
    report.print();
    println!(
        "\nPaper reading: every series except JSKernel's increases with \
         size (legacy browsers linearly); JSKernel's is flat, with \
         correlation ≈ 0. A defense is broken when the attacker can read \
         file sizes off the curve."
    );
    reporter.finish().expect("write bench JSON");
}
