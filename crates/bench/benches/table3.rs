//! Table III — average website loading time in Raptor tp6-1 (hero element),
//! mean ± std, for Chrome and Firefox with and without JSKernel.
//!
//! Run with `cargo bench -p jsk-bench --bench table3` (`JSK_JOBS=n` fans
//! the site × configuration cells across workers).

use jsk_bench::record::{BenchReporter, CellRecord, Probe};
use jsk_bench::{env_knob, pool, Report};
use jsk_defenses::registry::DefenseKind;
use jsk_workloads::raptor::{run_subtest_observed, RaptorRow, TP6_SITES};

/// Table III's published means (ms): (site, chrome, jskernel-on-chrome,
/// firefox, jskernel-on-firefox).
const PAPER: [(&str, f64, f64, f64, f64); 4] = [
    ("amazon", 107.2, 109.3, 809.1, 831.9),
    ("facebook", 178.8, 172.1, 1018.9, 1005.0),
    ("google", 48.3, 51.3, 400.7, 425.4),
    ("youtube", 298.9, 308.9, 1249.8, 1136.8),
];

fn main() {
    let repeats = env_knob("JSK_TRIALS", 25);
    let jobs = pool::jobs();
    let mut reporter = BenchReporter::new("table3");
    reporter.knob("JSK_TRIALS", repeats);
    let columns = [
        DefenseKind::LegacyChrome,
        DefenseKind::JsKernel,
        DefenseKind::LegacyFirefox,
        DefenseKind::JsKernelFirefox,
    ];
    let mut report = Report::new(
        format!("Table III — Raptor tp6-1 loading time, {repeats} loads (first skipped); measured mean±std / paper mean, ms"),
        &["Subtest", "Chrome", "JSKernel (C)", "Firefox", "JSKernel (F)"],
    );

    // One work item per (site, configuration) cell.
    let ncols = columns.len();
    let cells: Vec<(RaptorRow, Probe)> = pool::run_indexed(TP6_SITES.len() * ncols, jobs, |i| {
        let (s, c) = (i / ncols, i % ncols);
        let col = columns[c];
        let mut probe = Probe::default();
        let row = run_subtest_observed(TP6_SITES[s], repeats, |seed| col.build(seed), &mut |b| {
            probe.observe(b);
        });
        eprintln!("  finished {} × {}", TP6_SITES[s], col.label());
        (row, probe)
    });

    for (s, site) in TP6_SITES.iter().enumerate() {
        let mut text_cells = vec![(*site).to_owned()];
        let paper = PAPER[PAPER.iter().position(|p| p.0 == *site).unwrap_or(s)];
        let paper_means = [paper.1, paper.2, paper.3, paper.4];
        for (c, col) in columns.iter().enumerate() {
            let (row, probe) = &cells[s * ncols + c];
            text_cells.push(format!(
                "{:.1}±{:.1} / {:.1}",
                row.mean_ms, row.std_ms, paper_means[c]
            ));
            reporter.cell(CellRecord::value(*site, col.label(), row.mean_ms, "ms"));
            reporter.absorb(probe);
        }
        report.row(text_cells);
    }
    report.print();
    println!(
        "\nShape checks: JSKernel's deltas stay within a standard deviation \
         of the legacy mean (the paper's 2.75% Chrome / 3.85% Firefox hero \
         overhead); Firefox runs several times slower than Chrome."
    );
    reporter.finish().expect("write bench JSON");
}
