//! The fuzz bench target: one seeded coverage-guided run at a reduced
//! budget, recorded for the regression gate.
//!
//! Two verdict cells anchor the gate: the oracle must stay clean (no
//! schedule races under the hardened kernel) and recall must stay total
//! (every seed-corpus program re-discovered by the scanner). Coverage,
//! corpus, and finding counts ride along as value cells — deterministic
//! for fixed knobs, so any drift is a behavior change worth reading.
//!
//! Run with `cargo bench -p jsk-bench --bench fuzz`. Knobs:
//! `JSK_FUZZ_ITERS` (default 64 here — a smoke budget; the fuzz-smoke CI
//! job runs the full example at 200) and `JSK_FUZZ_SEED` (default 1).

use jsk_bench::record::{BenchReporter, CellRecord};
use jsk_bench::{env_knob, pool, Report};
use jsk_fuzz::{is_canonical, run_fuzz, FuzzConfig};

fn main() {
    let iters = env_knob("JSK_FUZZ_ITERS", 64);
    let seed = env_knob("JSK_FUZZ_SEED", 1) as u64;
    let cfg = FuzzConfig {
        iters,
        seed,
        jobs: pool::jobs(),
        mutations: true,
    };
    let mut reporter = BenchReporter::new("fuzz");
    reporter.knob("JSK_FUZZ_ITERS", iters);
    reporter.knob("JSK_FUZZ_SEED", seed as usize);

    let fuzz = run_fuzz(&cfg);

    let oracle_clean = fuzz.oracle_violations.is_empty();
    // Recall is judged on the canonical seeds only: imported reproducers
    // and analysis-derived witnesses are racy interleavings, not
    // scanner-pattern programs.
    let recall_total = fuzz
        .recall
        .iter()
        .filter(|r| is_canonical(&r.name))
        .all(|r| !r.patterns.is_empty());
    let mut report = Report::new(
        "Fuzz smoke — coverage-guided schedule search",
        &["Metric", "Value"],
    );
    report.row(vec![
        "candidates executed".into(),
        fuzz.executed.to_string(),
    ]);
    report.row(vec!["corpus size".into(), fuzz.corpus_size.to_string()]);
    report.row(vec![
        "coverage features".into(),
        fuzz.coverage.len().to_string(),
    ]);
    report.row(vec![
        "minimized findings".into(),
        fuzz.findings.len().to_string(),
    ]);
    report.row(vec![
        "oracle violations".into(),
        fuzz.oracle_violations.len().to_string(),
    ]);
    report.row(vec![
        "recall".into(),
        format!(
            "{}/{} canonical seeds re-discovered",
            fuzz.recall
                .iter()
                .filter(|r| is_canonical(&r.name) && !r.patterns.is_empty())
                .count(),
            fuzz.recall.iter().filter(|r| is_canonical(&r.name)).count()
        ),
    ]);
    report.print();

    reporter.cell(CellRecord::verdict("oracle", "JSKernel+", oracle_clean));
    reporter.cell(CellRecord::verdict("recall", "scanner", recall_total));
    reporter.cell(CellRecord::value(
        "executed",
        "candidates",
        fuzz.executed as f64,
        "count",
    ));
    reporter.cell(CellRecord::value(
        "corpus",
        "size",
        fuzz.corpus_size as f64,
        "count",
    ));
    reporter.cell(CellRecord::value(
        "coverage",
        "features",
        fuzz.coverage.len() as f64,
        "count",
    ));
    reporter.cell(CellRecord::value(
        "findings",
        "minimized",
        fuzz.findings.len() as f64,
        "count",
    ));
    reporter.finish().expect("write bench JSON");
}
