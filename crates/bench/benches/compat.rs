//! §V-B2 — semi-automated compatibility test: visit each of the top-N
//! (default 100) sites with and without JSKernel, serialize the DOM, and
//! compare by cosine similarity.
//!
//! Paper: ≥99 % similarity for ~90 % of sites; every mismatch traced to
//! dynamic content (ads), with the legacy-vs-legacy control scoring within
//! 2 % of the defended comparison.
//!
//! Run with `cargo bench -p jsk-bench --bench compat` (`JSK_COMPAT_SITES`).

use jsk_bench::{env_knob, Report};
use jsk_browser::mediator::LegacyMediator;
use jsk_core::{config::KernelConfig, kernel::JsKernel};
use jsk_defenses::registry::DefenseKind;
use jsk_workloads::compat::{run_check, SIMILARITY_THRESHOLD};

fn main() {
    let sites = env_knob("JSK_COMPAT_SITES", 100);
    let summary = run_check(
        sites,
        |seed| DefenseKind::LegacyChrome.config(seed),
        || Box::new(LegacyMediator),
        || Box::new(JsKernel::new(KernelConfig::full())),
    );

    let mut report = Report::new(
        format!("Compatibility — DOM cosine similarity over {sites} sites (threshold {SIMILARITY_THRESHOLD})"),
        &["Site", "defended sim", "control sim", "dynamic ads"],
    );
    for row in &summary.mismatches {
        report.row(vec![
            row.site.clone(),
            format!("{:.4}", row.defended_similarity),
            format!("{:.4}", row.control_similarity),
            format!("{}", row.dynamic_ads),
        ]);
    }
    report.print();
    println!(
        "\n{}/{} sites ({:.1}%) render identically (paper: ~90% of 100); \
         mismatches above are all dynamic-content sites whose control \
         (legacy vs legacy) similarity is shown alongside.",
        summary.same,
        summary.total,
        summary.same_fraction() * 100.0
    );
}
