//! §V-B2 — semi-automated compatibility test: visit each of the top-N
//! (default 100) sites with and without JSKernel, serialize the DOM, and
//! compare by cosine similarity.
//!
//! Paper: ≥99 % similarity for ~90 % of sites; every mismatch traced to
//! dynamic content (ads), with the legacy-vs-legacy control scoring within
//! 2 % of the defended comparison.
//!
//! Run with `cargo bench -p jsk-bench --bench compat` (`JSK_COMPAT_SITES`;
//! `JSK_JOBS=n` fans the per-site comparisons across workers).

use jsk_bench::record::{BenchReporter, CellRecord, Probe};
use jsk_bench::{env_knob, pool, Report};
use jsk_browser::mediator::LegacyMediator;
use jsk_core::{config::KernelConfig, kernel::JsKernel};
use jsk_defenses::registry::DefenseKind;
use jsk_workloads::compat::{
    compare_site_observed, CompatRow, CompatSummary, SIMILARITY_THRESHOLD,
};
use jsk_workloads::site::SiteProfile;

fn main() {
    let sites = env_knob("JSK_COMPAT_SITES", 100);
    let jobs = pool::jobs();
    let mut reporter = BenchReporter::new("compat");
    reporter.knob("JSK_COMPAT_SITES", sites);

    // One work item per site: each comparison is three independent seeded
    // visits, so the population fans perfectly.
    let rows: Vec<(CompatRow, Probe)> = pool::run_indexed(sites, jobs, |rank| {
        let profile = SiteProfile::generate(rank);
        let mut probe = Probe::default();
        let row = compare_site_observed(
            &profile,
            |seed| DefenseKind::LegacyChrome.config(seed),
            || Box::new(LegacyMediator),
            || Box::new(JsKernel::new(KernelConfig::full())),
            &mut |b| probe.observe(b),
        );
        (row, probe)
    });
    let mut summary = CompatSummary {
        total: sites,
        same: 0,
        mismatches: Vec::new(),
    };
    for (row, probe) in rows {
        reporter.absorb(&probe);
        if row.is_same() {
            summary.same += 1;
        } else {
            summary.mismatches.push(row);
        }
    }

    let mut report = Report::new(
        format!("Compatibility — DOM cosine similarity over {sites} sites (threshold {SIMILARITY_THRESHOLD})"),
        &["Site", "defended sim", "control sim", "dynamic ads"],
    );
    for row in &summary.mismatches {
        report.row(vec![
            row.site.clone(),
            format!("{:.4}", row.defended_similarity),
            format!("{:.4}", row.control_similarity),
            format!("{}", row.dynamic_ads),
        ]);
        reporter.cell(CellRecord::value(
            &row.site,
            "defended sim",
            row.defended_similarity,
            "cos",
        ));
    }
    report.print();
    println!(
        "\n{}/{} sites ({:.1}%) render identically (paper: ~90% of 100); \
         mismatches above are all dynamic-content sites whose control \
         (legacy vs legacy) similarity is shown alongside.",
        summary.same,
        summary.total,
        summary.same_fraction() * 100.0
    );
    reporter.cell(CellRecord::value(
        "summary",
        "sites identical",
        summary.same as f64,
        "sites",
    ));
    reporter.cell(CellRecord::value(
        "summary",
        "same fraction",
        summary.same_fraction(),
        "frac",
    ));
    reporter.finish().expect("write bench JSON");
}
