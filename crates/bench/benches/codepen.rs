//! §V-B1 — the API-specific compatibility test: 20 apps (5 per searched
//! API), each compared against the undefended run under Fuzzyfox, DeterFox,
//! and JSKernel.
//!
//! Paper: Fuzzyfox shows observable differences in 13/20 apps, DeterFox in
//! 7/20, JSKernel in 4/20 — and JSKernel's differences are exclusively
//! time-related (performance.now-paced animation speed), never breakage.
//!
//! Run with `cargo bench -p jsk-bench --bench codepen` (`JSK_JOBS=n` fans
//! the defense × app comparisons across workers).

use jsk_bench::record::{BenchReporter, CellRecord, Probe};
use jsk_bench::{pool, Report};
use jsk_defenses::registry::DefenseKind;
use jsk_workloads::codepen::{App, TOLERANCE};

fn main() {
    let jobs = pool::jobs();
    let mut reporter = BenchReporter::new("codepen");
    let baseline = DefenseKind::LegacyFirefox;
    let defenses = [
        (DefenseKind::Fuzzyfox, 13usize),
        (DefenseKind::DeterFox, 7),
        (DefenseKind::JsKernelFirefox, 4),
    ];
    let apps = App::test_set();

    // One work item per (defense, app): each comparison runs the app twice
    // with the same seed (baseline and defended).
    let napps = apps.len();
    let comparisons: Vec<(bool, Probe)> = pool::run_indexed(defenses.len() * napps, jobs, |i| {
        let (d, a) = (i / napps, i % napps);
        let (kind, _) = defenses[d];
        let app = &apps[a];
        let seed = 0xC0DE + a as u64;
        let mut probe = Probe::default();
        let mut base_browser = baseline.build(seed);
        let base = app.run(&mut base_browser);
        probe.observe(&base_browser);
        let mut def_browser = kind.build(seed);
        let def = app.run(&mut def_browser);
        probe.observe(&def_browser);
        let observable = match (base, def) {
            (Some(b), Some(d)) => {
                let scale = b.abs().max(1e-9);
                (d - b).abs() / scale > TOLERANCE
            }
            (None, None) => false,
            _ => true, // one side produced nothing: hard breakage
        };
        (observable, probe)
    });

    let mut report = Report::new(
        "API-specific compatibility — 20 CodePen-style apps (observable differences / paper)",
        &["Defense", "apps differing", "paper", "differing apps"],
    );
    for (d, (kind, paper)) in defenses.iter().enumerate() {
        let mut differing = Vec::new();
        for (a, app) in apps.iter().enumerate() {
            let (observable, probe) = &comparisons[d * napps + a];
            reporter.absorb(probe);
            // verdict = "no observable difference" — a flip in either
            // direction is a behavioral change the regression gate catches.
            reporter.cell(CellRecord::verdict(app.id(), kind.label(), !observable));
            if *observable {
                differing.push(app.id());
            }
        }
        report.row(vec![
            kind.label().to_owned(),
            format!("{}/20", differing.len()),
            format!("{paper}/20"),
            differing.join(", "),
        ]);
        eprintln!("  finished {}", kind.label());
    }
    report.print();
    println!(
        "\nPaper reading: JSKernel has the fewest observable differences, \
         all of them time-related (clock-paced animation speed); Fuzzyfox \
         disturbs most apps; DeterFox sits between. Functional apps (worker \
         compute) must be identical everywhere."
    );
    reporter.finish().expect("write bench JSON");
}
