//! §V-B1 — the API-specific compatibility test: 20 apps (5 per searched
//! API), each compared against the undefended run under Fuzzyfox, DeterFox,
//! and JSKernel.
//!
//! Paper: Fuzzyfox shows observable differences in 13/20 apps, DeterFox in
//! 7/20, JSKernel in 4/20 — and JSKernel's differences are exclusively
//! time-related (performance.now-paced animation speed), never breakage.
//!
//! Run with `cargo bench -p jsk-bench --bench codepen`.

use jsk_bench::Report;
use jsk_defenses::registry::DefenseKind;
use jsk_workloads::codepen::{observable_count, run_comparison};

fn main() {
    let baseline = DefenseKind::LegacyFirefox;
    let defenses = [
        (DefenseKind::Fuzzyfox, 13usize),
        (DefenseKind::DeterFox, 7),
        (DefenseKind::JsKernelFirefox, 4),
    ];
    let mut report = Report::new(
        "API-specific compatibility — 20 CodePen-style apps (observable differences / paper)",
        &["Defense", "apps differing", "paper", "differing apps"],
    );
    for (kind, paper) in defenses {
        let rows = run_comparison(|seed| baseline.build(seed), |seed| kind.build(seed));
        let differing: Vec<&str> = rows
            .iter()
            .filter(|r| r.observable_difference)
            .map(|r| r.app.as_str())
            .collect();
        report.row(vec![
            kind.label().to_owned(),
            format!("{}/20", observable_count(&rows)),
            format!("{paper}/20"),
            differing.join(", "),
        ]);
        eprintln!("  finished {}", kind.label());
    }
    report.print();
    println!(
        "\nPaper reading: JSKernel has the fewest observable differences, \
         all of them time-related (clock-paced animation speed); Fuzzyfox \
         disturbs most apps; DeterFox sits between. Functional apps (worker \
         compute) must be identical everywhere."
    );
}
