//! Hot-path throughput: the three structures the dispatch-path overhaul
//! rebuilt — compiled policy decision tables, the heap-based event queue,
//! and interned trace records — exercised as tight loops over the same
//! operations the kernel performs per asynchronous event.
//!
//! The JSON record's cells are deterministic operation and outcome counts
//! (byte-identical across machines and `JSK_JOBS` settings); wall-clock
//! throughput prints per phase and lands in the run metadata's
//! `steps_per_sec`, where the regression gate holds it to the committed
//! baseline. There is no simulated browser in this harness, so
//! `probe.steps` counts hot-path operations instead of event-loop steps.
//!
//! `JSK_HOTPATH_ROUNDS` scales the structure phases (default 1 000 000);
//! `JSK_HOTPATH_STEADY` scales the end-to-end `dispatch-steady` phase
//! (default 250 000 kernel events).

use jsk_browser::event::{AsyncEventInfo, AsyncKind};
use jsk_browser::ids::{EventToken, RequestId, ThreadId, WorkerId};
use jsk_browser::mediator::{ApiOutcome, ConfirmDecision, Mediator, MediatorCtx, MediatorOp};
use jsk_browser::trace::{ApiCall, Fact, Interner, TerminationReason, Trace};
use jsk_core::equeue::{DrainScratch, KernelEventQueue};
use jsk_core::kernel::JsKernel;
use jsk_core::kevent::{KEventStatus, KernelEvent};
use jsk_core::policy::{cve, PolicyEngine};
use jsk_core::stats::StatsSnapshot;
use jsk_core::threads::ThreadManager;
use jsk_sim::rng::SimRng;
use jsk_sim::time::{SimDuration, SimTime};
use std::hint::black_box;
use std::time::Instant;

/// Events per equeue round: push 64, confirm 64, drain.
const BATCH: u64 = 64;

/// Distinct URLs in the trace-record phase, so the interner exercises its
/// hit path (the steady state of a real page) rather than growing forever.
const URL_POOL: usize = 64;

struct Phase {
    row: &'static str,
    ops: u64,
    wall_ms: f64,
}

fn timed(row: &'static str, f: impl FnOnce() -> u64) -> Phase {
    let start = Instant::now();
    let ops = f();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let rate = if wall_ms > 0.0 {
        ops as f64 / wall_ms * 1e3
    } else {
        0.0
    };
    println!("[hotpath] {row}: {ops} ops in {wall_ms:.0}ms ({rate:.0} ops/s)");
    Phase { row, ops, wall_ms }
}

/// A fixed mix of intercepted calls covering the busiest selectors: most
/// are allowed (the steady state the paper's overhead numbers measure),
/// two trip CVE policies so the deny path stays in the loop.
fn call_mix(strings: &mut Interner) -> Vec<ApiCall> {
    let url = strings.intern("https://origin.example/api");
    let xurl = strings.intern("https://victim.example/secret");
    let src = strings.intern("worker.js");
    vec![
        ApiCall::Fetch {
            thread: ThreadId::new(1),
            req: RequestId::new(1),
            url,
            has_signal: true,
        },
        ApiCall::XhrSend {
            thread: ThreadId::new(1),
            from_worker: true,
            url,
            cross_origin: false,
        },
        ApiCall::PostMessage {
            from: ThreadId::new(1),
            to: ThreadId::new(0),
            transfer_count: 0,
            to_doc_freed: false,
        },
        ApiCall::TerminateWorker {
            worker: WorkerId::new(0),
            reason: TerminationReason::Explicit,
            during_dispatch: false,
            live_transfers: 0,
            pending_fetches: 0,
        },
        ApiCall::CreateWorker {
            parent: ThreadId::new(0),
            worker: WorkerId::new(0),
            src,
            sandboxed: false,
        },
        ApiCall::DeliverAbort {
            req: RequestId::new(2),
            owner: ThreadId::new(1),
            owner_alive: false,
        },
        ApiCall::XhrSend {
            thread: ThreadId::new(1),
            from_worker: true,
            url: xurl,
            cross_origin: true,
        },
        ApiCall::SetOnMessage {
            thread: ThreadId::new(0),
            worker: Some(WorkerId::new(0)),
            worker_closing: false,
        },
    ]
}

fn policy_decide(rounds: usize) -> (Phase, u64) {
    let engine = PolicyEngine::new(cve::all_cve_policies());
    let mut threads = ThreadManager::new();
    let mut strings = Interner::new();
    threads.register(
        WorkerId::new(0),
        ThreadId::new(1),
        ThreadId::new(0),
        strings.intern("worker.js"),
    );
    let mix = call_mix(&mut strings);
    let mut denies = 0u64;
    let phase = timed("policy-decide", || {
        let mut ops = 0u64;
        for _ in 0..rounds {
            for call in &mix {
                let (outcome, _) = engine.decide(black_box(call), &threads);
                if !matches!(outcome, ApiOutcome::Allow) {
                    denies += 1;
                }
                ops += 1;
            }
        }
        ops
    });
    (phase, denies)
}

fn equeue_churn(rounds: u64) -> (Phase, u64) {
    let mut q = KernelEventQueue::new();
    let mut scratch = DrainScratch::new();
    let mut drained = 0u64;
    let phase = timed("equeue-churn", || {
        for r in 0..rounds {
            for i in 0..BATCH {
                q.push(KernelEvent::pending(
                    EventToken::new(r * BATCH + i),
                    ThreadId::new(0),
                    AsyncKind::Raf,
                    SimTime::from_millis(i),
                ));
            }
            for i in 0..BATCH {
                q.lookup_mut(EventToken::new(r * BATCH + i)).unwrap().status =
                    KEventStatus::Confirmed;
            }
            scratch.clear();
            q.drain_dispatchable_into(&mut scratch);
            drained += scratch.len() as u64;
            black_box(&scratch);
        }
        // One op per push, per confirm, and per drained event.
        rounds * BATCH * 2 + drained
    });
    (phase, drained)
}

fn trace_record(rounds: usize) -> (Phase, u64) {
    let urls: Vec<String> = (0..URL_POOL)
        .map(|i| format!("https://site{i}.example/path"))
        .collect();
    let mut trace = Trace::new();
    let phase = timed("trace-record", || {
        let mut ops = 0u64;
        for i in 0..rounds {
            let t = SimTime::from_millis(i as u64);
            let url = trace.intern(&urls[i % URL_POOL]);
            trace.api(
                t,
                ApiCall::Fetch {
                    thread: ThreadId::new(1),
                    req: RequestId::new(i as u64),
                    url,
                    has_signal: false,
                },
            );
            trace.fact(
                t,
                Fact::FetchStarted {
                    req: RequestId::new(i as u64),
                    thread: ThreadId::new(1),
                    has_signal: false,
                },
            );
            ops += 2;
        }
        black_box(&trace);
        ops
    });
    let symbols = trace.strings().len() as u64;
    (phase, symbols)
}

/// The observability hot path: the exact per-event hook sequence the
/// instrumented kernel performs (dispatch span, dispatched counter,
/// latency histogram, depth gauge), driven through the dynamic
/// [`Subscriber`](jsk_observe::Subscriber) handle the kernel holds. A
/// metrics-only observer keeps the loop allocation-free after warm-up —
/// this is the per-event cost `observe` adds when enabled.
fn observe_hooks(rounds: u64) -> (Phase, u64, jsk_observe::MetricsSnapshot) {
    let obs = jsk_observe::Observer::new().shared();
    let handle = jsk_observe::handle_of(&obs);
    let dispatch = handle.intern("kernel.dispatch");
    let dispatched = handle.intern("kernel.dispatched");
    let latency = handle.intern("kernel.dispatch_latency_ticks");
    let depth = handle.intern("kernel.equeue_depth");
    let phase = timed("observe-hooks", || {
        for i in 0..rounds {
            let t = SimTime::from_millis(i);
            handle.span_enter(dispatch, 0, t);
            handle.counter_add(dispatched, 1);
            handle.histogram_record(latency, i % 257);
            handle.gauge_set(depth, i % 63);
            handle.span_exit(dispatch, 0, t);
        }
        // One op per hook invocation.
        rounds * 5
    });
    let snapshot = obs.borrow().metrics();
    let total = snapshot.counter("kernel.dispatched");
    (phase, total, snapshot)
}

/// The end-to-end kernel steady state: a live [`JsKernel`] driven through
/// the same mediator hooks the browser calls — one full
/// register → confirm → serialized dispatch → post-task tick cycle per
/// event, over a mix of stream kinds (message, timeout, raf, media) on one
/// thread. After the dense-state overhaul this loop performs **zero heap
/// allocations per event** once warm (the `alloc_steady` gate proves it);
/// this phase measures what that buys: sustained kernel events per second,
/// which lands in the run metadata's `kernel_events_per_sec` where the
/// regression gate holds it to the committed baseline.
fn dispatch_steady(events: u64) -> (Phase, u64, StatsSnapshot) {
    let mut k = JsKernel::default();
    let mut rng = SimRng::new(0x57EAD);
    let main = ThreadId::new(0);
    let sender = ThreadId::new(1);
    // Mediator-call buffers recycled across every hook invocation, exactly
    // as the browser's `med_scratch` does.
    let mut ops: Vec<MediatorOp> = Vec::new();
    let mut marks: Vec<u32> = Vec::new();
    let phase = timed("dispatch-steady", || {
        let mut hook_calls = 0u64;
        for i in 0..events {
            // The virtual clock outruns every prediction ladder (the
            // fastest, media, climbs 33 ms per firing), so each confirm
            // dispatches immediately — the sustained steady state.
            let now = SimTime::from_millis(25 * (i + 1));
            let kind = match i % 4 {
                0 => AsyncKind::Message { from: sender },
                1 => AsyncKind::Timeout {
                    delay: SimDuration::from_millis(1),
                    nesting: 0,
                },
                2 => AsyncKind::Raf,
                _ => AsyncKind::Media,
            };
            let info = AsyncEventInfo {
                token: EventToken::new(i + 1),
                thread: main,
                kind,
                registered_at: now,
                doc_generation: 0,
                context: 0,
            };
            let mut ctx = MediatorCtx::recycled(
                now,
                &mut rng,
                std::mem::take(&mut ops),
                std::mem::take(&mut marks),
            );
            k.on_register(&mut ctx, &info);
            let d = k.on_confirm(&mut ctx, &info, now);
            debug_assert!(
                matches!(d, ConfirmDecision::InvokeAt(_)),
                "steady-state confirm deferred: {d:?}"
            );
            k.on_task_dispatched(&mut ctx, main, Some(info.token), 0);
            k.on_tick(&mut ctx, main);
            hook_calls += 4;
            let (o, m) = ctx.into_parts();
            ops = o;
            marks = m;
            ops.clear();
            marks.clear();
        }
        black_box(&k);
        hook_calls
    });
    let snap = k.stats().snapshot();
    (phase, snap.dispatched, snap)
}

fn main() {
    let rounds = jsk_bench::env_knob("JSK_HOTPATH_ROUNDS", 1_000_000);
    let steady_events = jsk_bench::env_knob("JSK_HOTPATH_STEADY", 250_000) as u64;
    let mut reporter = jsk_bench::record::BenchReporter::new("hotpath");
    reporter.knob("JSK_HOTPATH_ROUNDS", rounds);
    reporter.knob("JSK_HOTPATH_STEADY", steady_events as usize);

    let (decide, denies) = policy_decide(rounds);
    let (equeue, drained) = equeue_churn(rounds as u64 / 32);
    let (record, symbols) = trace_record(rounds);
    let (observe, hooked, obs_snapshot) = observe_hooks(rounds as u64);
    let (steady, dispatched, kernel_snapshot) = dispatch_steady(steady_events);

    let mut report = jsk_bench::Report::new(
        "Hot-path throughput (dispatch-path structures)",
        &["phase", "ops", "wall ms", "kops/sec"],
    );
    let mut probe = jsk_bench::record::Probe::default();
    for phase in [&decide, &equeue, &record, &observe, &steady] {
        report.row(vec![
            phase.row.to_owned(),
            phase.ops.to_string(),
            format!("{:.0}", phase.wall_ms),
            format!("{:.0}", phase.ops as f64 / phase.wall_ms.max(1e-9)),
        ]);
        // No simulated browser here: steps count hot-path operations, so
        // the run metadata's steps_per_sec is combined hot-path throughput.
        probe.steps += phase.ops;
    }
    report.print();

    // Cells are deterministic counts only; throughput lives in the meta.
    for (phase, outcome, label, unit) in [
        (&decide, denies, "non-allow outcomes", "denies"),
        (&equeue, drained, "events drained", "events"),
        (&record, symbols, "interned symbols", "symbols"),
        (&observe, hooked, "dispatched counter", "events"),
        (&steady, dispatched, "events dispatched", "events"),
    ] {
        reporter.cell(jsk_bench::record::CellRecord::value(
            phase.row,
            "ops",
            phase.ops as f64,
            "ops",
        ));
        reporter.cell(jsk_bench::record::CellRecord::value(
            phase.row,
            label,
            outcome as f64,
            unit,
        ));
    }
    // The steady-state kernel's counters feed the meta's
    // kernel_events_per_sec, holding end-to-end dispatch throughput to the
    // committed baseline alongside the combined steps_per_sec.
    probe.stats.merge(&kernel_snapshot);
    reporter.absorb(&probe);
    // The regression gate diffs these counters exactly against the
    // committed baseline (deterministic under fixed knobs).
    reporter.observe(&obs_snapshot);
    reporter.finish().expect("write bench JSON");
}
