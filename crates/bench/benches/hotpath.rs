//! Hot-path throughput: the three structures the dispatch-path overhaul
//! rebuilt — compiled policy decision tables, the heap-based event queue,
//! and interned trace records — exercised as tight loops over the same
//! operations the kernel performs per asynchronous event.
//!
//! The JSON record's cells are deterministic operation and outcome counts
//! (byte-identical across machines and `JSK_JOBS` settings); wall-clock
//! throughput prints per phase and lands in the run metadata's
//! `steps_per_sec`, where the regression gate holds it to the committed
//! baseline. There is no simulated browser in this harness, so
//! `probe.steps` counts hot-path operations instead of event-loop steps.
//!
//! `JSK_HOTPATH_ROUNDS` scales every phase (default 1 000 000).

use jsk_browser::event::AsyncKind;
use jsk_browser::ids::{EventToken, RequestId, ThreadId, WorkerId};
use jsk_browser::mediator::ApiOutcome;
use jsk_browser::trace::{ApiCall, Fact, Interner, TerminationReason, Trace};
use jsk_core::equeue::KernelEventQueue;
use jsk_core::kevent::{KEventStatus, KernelEvent};
use jsk_core::policy::{cve, PolicyEngine};
use jsk_core::threads::ThreadManager;
use jsk_sim::time::SimTime;
use std::hint::black_box;
use std::time::Instant;

/// Events per equeue round: push 64, confirm 64, drain.
const BATCH: u64 = 64;

/// Distinct URLs in the trace-record phase, so the interner exercises its
/// hit path (the steady state of a real page) rather than growing forever.
const URL_POOL: usize = 64;

struct Phase {
    row: &'static str,
    ops: u64,
    wall_ms: f64,
}

fn timed(row: &'static str, f: impl FnOnce() -> u64) -> Phase {
    let start = Instant::now();
    let ops = f();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let rate = if wall_ms > 0.0 {
        ops as f64 / wall_ms * 1e3
    } else {
        0.0
    };
    println!("[hotpath] {row}: {ops} ops in {wall_ms:.0}ms ({rate:.0} ops/s)");
    Phase { row, ops, wall_ms }
}

/// A fixed mix of intercepted calls covering the busiest selectors: most
/// are allowed (the steady state the paper's overhead numbers measure),
/// two trip CVE policies so the deny path stays in the loop.
fn call_mix(strings: &mut Interner) -> Vec<ApiCall> {
    let url = strings.intern("https://origin.example/api");
    let xurl = strings.intern("https://victim.example/secret");
    let src = strings.intern("worker.js");
    vec![
        ApiCall::Fetch {
            thread: ThreadId::new(1),
            req: RequestId::new(1),
            url,
            has_signal: true,
        },
        ApiCall::XhrSend {
            thread: ThreadId::new(1),
            from_worker: true,
            url,
            cross_origin: false,
        },
        ApiCall::PostMessage {
            from: ThreadId::new(1),
            to: ThreadId::new(0),
            transfer_count: 0,
            to_doc_freed: false,
        },
        ApiCall::TerminateWorker {
            worker: WorkerId::new(0),
            reason: TerminationReason::Explicit,
            during_dispatch: false,
            live_transfers: 0,
            pending_fetches: 0,
        },
        ApiCall::CreateWorker {
            parent: ThreadId::new(0),
            worker: WorkerId::new(0),
            src,
            sandboxed: false,
        },
        ApiCall::DeliverAbort {
            req: RequestId::new(2),
            owner: ThreadId::new(1),
            owner_alive: false,
        },
        ApiCall::XhrSend {
            thread: ThreadId::new(1),
            from_worker: true,
            url: xurl,
            cross_origin: true,
        },
        ApiCall::SetOnMessage {
            thread: ThreadId::new(0),
            worker: Some(WorkerId::new(0)),
            worker_closing: false,
        },
    ]
}

fn policy_decide(rounds: usize) -> (Phase, u64) {
    let engine = PolicyEngine::new(cve::all_cve_policies());
    let mut threads = ThreadManager::new();
    let mut strings = Interner::new();
    threads.register(
        WorkerId::new(0),
        ThreadId::new(1),
        ThreadId::new(0),
        strings.intern("worker.js"),
    );
    let mix = call_mix(&mut strings);
    let mut denies = 0u64;
    let phase = timed("policy-decide", || {
        let mut ops = 0u64;
        for _ in 0..rounds {
            for call in &mix {
                let (outcome, _) = engine.decide(black_box(call), &threads);
                if !matches!(outcome, ApiOutcome::Allow) {
                    denies += 1;
                }
                ops += 1;
            }
        }
        ops
    });
    (phase, denies)
}

fn equeue_churn(rounds: u64) -> (Phase, u64) {
    let mut q = KernelEventQueue::new();
    let mut scratch = Vec::new();
    let mut drained = 0u64;
    let phase = timed("equeue-churn", || {
        for r in 0..rounds {
            for i in 0..BATCH {
                q.push(KernelEvent::pending(
                    EventToken::new(r * BATCH + i),
                    ThreadId::new(0),
                    AsyncKind::Raf,
                    SimTime::from_millis(i),
                ));
            }
            for i in 0..BATCH {
                q.lookup_mut(EventToken::new(r * BATCH + i)).unwrap().status =
                    KEventStatus::Confirmed;
            }
            scratch.clear();
            q.drain_dispatchable_into(&mut scratch);
            drained += scratch.len() as u64;
            black_box(&scratch);
        }
        // One op per push, per confirm, and per drained event.
        rounds * BATCH * 2 + drained
    });
    (phase, drained)
}

fn trace_record(rounds: usize) -> (Phase, u64) {
    let urls: Vec<String> = (0..URL_POOL)
        .map(|i| format!("https://site{i}.example/path"))
        .collect();
    let mut trace = Trace::new();
    let phase = timed("trace-record", || {
        let mut ops = 0u64;
        for i in 0..rounds {
            let t = SimTime::from_millis(i as u64);
            let url = trace.intern(&urls[i % URL_POOL]);
            trace.api(
                t,
                ApiCall::Fetch {
                    thread: ThreadId::new(1),
                    req: RequestId::new(i as u64),
                    url,
                    has_signal: false,
                },
            );
            trace.fact(
                t,
                Fact::FetchStarted {
                    req: RequestId::new(i as u64),
                    thread: ThreadId::new(1),
                    has_signal: false,
                },
            );
            ops += 2;
        }
        black_box(&trace);
        ops
    });
    let symbols = trace.strings().len() as u64;
    (phase, symbols)
}

/// The observability hot path: the exact per-event hook sequence the
/// instrumented kernel performs (dispatch span, dispatched counter,
/// latency histogram, depth gauge), driven through the dynamic
/// [`Subscriber`](jsk_observe::Subscriber) handle the kernel holds. A
/// metrics-only observer keeps the loop allocation-free after warm-up —
/// this is the per-event cost `observe` adds when enabled.
fn observe_hooks(rounds: u64) -> (Phase, u64, jsk_observe::MetricsSnapshot) {
    let obs = jsk_observe::Observer::new().shared();
    let handle = jsk_observe::handle_of(&obs);
    let dispatch = handle.intern("kernel.dispatch");
    let dispatched = handle.intern("kernel.dispatched");
    let latency = handle.intern("kernel.dispatch_latency_ticks");
    let depth = handle.intern("kernel.equeue_depth");
    let phase = timed("observe-hooks", || {
        for i in 0..rounds {
            let t = SimTime::from_millis(i);
            handle.span_enter(dispatch, 0, t);
            handle.counter_add(dispatched, 1);
            handle.histogram_record(latency, i % 257);
            handle.gauge_set(depth, i % 63);
            handle.span_exit(dispatch, 0, t);
        }
        // One op per hook invocation.
        rounds * 5
    });
    let snapshot = obs.borrow().metrics();
    let total = snapshot.counter("kernel.dispatched");
    (phase, total, snapshot)
}

fn main() {
    let rounds = jsk_bench::env_knob("JSK_HOTPATH_ROUNDS", 1_000_000);
    let mut reporter = jsk_bench::record::BenchReporter::new("hotpath");
    reporter.knob("JSK_HOTPATH_ROUNDS", rounds);

    let (decide, denies) = policy_decide(rounds);
    let (equeue, drained) = equeue_churn(rounds as u64 / 32);
    let (record, symbols) = trace_record(rounds);
    let (observe, hooked, obs_snapshot) = observe_hooks(rounds as u64);

    let mut report = jsk_bench::Report::new(
        "Hot-path throughput (dispatch-path structures)",
        &["phase", "ops", "wall ms", "kops/sec"],
    );
    let mut probe = jsk_bench::record::Probe::default();
    for phase in [&decide, &equeue, &record, &observe] {
        report.row(vec![
            phase.row.to_owned(),
            phase.ops.to_string(),
            format!("{:.0}", phase.wall_ms),
            format!("{:.0}", phase.ops as f64 / phase.wall_ms.max(1e-9)),
        ]);
        // No simulated browser here: steps count hot-path operations, so
        // the run metadata's steps_per_sec is combined hot-path throughput.
        probe.steps += phase.ops;
    }
    report.print();

    // Cells are deterministic counts only; throughput lives in the meta.
    for (phase, outcome, label, unit) in [
        (&decide, denies, "non-allow outcomes", "denies"),
        (&equeue, drained, "events drained", "events"),
        (&record, symbols, "interned symbols", "symbols"),
        (&observe, hooked, "dispatched counter", "events"),
    ] {
        reporter.cell(jsk_bench::record::CellRecord::value(
            phase.row,
            "ops",
            phase.ops as f64,
            "ops",
        ));
        reporter.cell(jsk_bench::record::CellRecord::value(
            phase.row,
            label,
            outcome as f64,
            unit,
        ));
    }
    reporter.absorb(&probe);
    // The regression gate diffs these counters exactly against the
    // committed baseline (deterministic under fixed knobs).
    reporter.observe(&obs_snapshot);
    reporter.finish().expect("write bench JSON");
}
