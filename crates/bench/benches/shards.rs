//! Sharded fleet serving under cross-shard fault injection — the chaos
//! matrix as a bench target.
//!
//! Serves the full 13-program attack corpus (twelve Table I CVE exploits
//! plus Listing 1) on **every** shard four times: fault-free, then once
//! per cross-shard fault class — per-shard clock skew, a directional
//! inter-shard partition, and a shard crash with supervised restart —
//! each aimed at a different shard. The matrix's own verifier runs first
//! (non-target shards bit-identical to baseline, target shards' verdicts
//! and metrics preserved, faults actually fired); the JSON record then
//! pins one verdict cell per (site@shard, scenario), so a single program
//! losing its defense on a single shard under a single fault class flips
//! a cell and fails the regression gate.
//!
//! Knobs: `JSK_SHARDS` (default 4), `JSK_JOBS` (pool worker threads —
//! never changes a byte of the record). The full matrix is also written
//! to `chaos_matrix.json` as the CI artifact.

use jsk_bench::record::{out_root, BenchReporter, CellRecord};
use jsk_bench::{pool, Report};
use jsk_shard::{run_chaos_matrix, ChaosKnobs, SiteOutcome};

fn main() {
    let shards = pool::shards();
    let jobs = pool::jobs();
    let mut reporter = BenchReporter::new("shards");
    reporter.knob("JSK_SHARDS", shards).set_jobs(jobs);

    let matrix = run_chaos_matrix(&ChaosKnobs {
        shards,
        workers: jobs,
        base_seed: 1,
        corpus: None,
    });
    matrix.verify().expect("chaos matrix isolation violated");

    let mut report = Report::new(
        "Cross-shard chaos matrix — corpus defended on every shard under every fault class",
        &[
            "Scenario",
            "target shard",
            "served",
            "defended",
            "restarts",
            "hb dropped",
        ],
    );
    for scenario in &matrix.scenarios {
        let mut defended = 0usize;
        let (served, _, _, restarts) = scenario.report.totals();
        let dropped: u64 = scenario
            .report
            .shards
            .iter()
            .map(|s| s.heartbeats_dropped)
            .sum();
        for shard in &scenario.report.shards {
            for site in &shard.sites {
                if let SiteOutcome::Served { defended: d, .. } = &site.outcome {
                    let ok = *d == Some(true);
                    reporter.cell(CellRecord::verdict(
                        format!("{}@s{}", site.site, shard.shard),
                        scenario.name.clone(),
                        ok,
                    ));
                    defended += usize::from(ok);
                }
            }
        }
        reporter.observe(
            &scenario
                .report
                .fleet_metrics
                .with_label("scenario", &scenario.name),
        );
        report.row(vec![
            scenario.name.clone(),
            scenario
                .target_shard
                .map_or_else(|| "-".to_owned(), |s| s.to_string()),
            served.to_string(),
            format!("{defended}/{served}"),
            restarts.to_string(),
            dropped.to_string(),
        ]);
        eprintln!("  finished scenario {}", scenario.name);
    }
    report.print();
    println!(
        "\nPaper reading: the kernel's isolation survives the fleet. Every \
         corpus program stays defended on every shard under every fault \
         class; shards the fault does not target reproduce the fault-free \
         run bit for bit, and the targeted shard's verdicts and metrics are \
         preserved through skewed clocks, a severed heartbeat ring, and a \
         supervised crash-restart."
    );

    let path = out_root().join("chaos_matrix.json");
    std::fs::write(&path, matrix.json()).expect("write chaos matrix artifact");
    println!("[chaos-json] full matrix written to {}", path.display());
    reporter.finish().expect("write bench JSON");
}
