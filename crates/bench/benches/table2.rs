//! Table II — averaged measured times under the SVG-filtering attack
//! (low/high resolution) and Loopscan (google/youtube), per defense.
//!
//! Run with `cargo bench -p jsk-bench --bench table2` (`JSK_JOBS=n` fans
//! the per-defense columns across workers; fixed seeds keep the output
//! bit-identical to a serial run).

use jsk_attacks::harness::run_timing_attack_observed;
use jsk_attacks::{Loopscan, SvgFiltering};
use jsk_bench::record::{BenchReporter, CellRecord, Probe};
use jsk_bench::{env_knob, pool, Report};
use jsk_defenses::registry::DefenseKind;

/// Table II's published cells: (defense, svg low, svg high, loopscan
/// google, loopscan youtube), in ms.
const PAPER: [(&str, f64, f64, f64, f64); 7] = [
    ("Chrome", 16.66, 18.85, 4.5, 8.8),
    ("Firefox", 16.27, 17.12, 50.0, 74.0),
    ("Edge", 23.85, 25.66, 20.8, 21.1),
    ("Fuzzyfox", 109.09, 145.45, 200.0, 500.0),
    ("Tor Browser", 16.63, 17.81, 500.0, 600.0),
    ("Chrome Zero", 15.71, 21.63, 12.8, 8.1),
    ("JSKernel", 10.0, 10.0, 1.0, 1.0),
];

fn main() {
    let trials = env_knob("JSK_TRIALS", 25);
    let jobs = pool::jobs();
    let mut reporter = BenchReporter::new("table2");
    reporter.knob("JSK_TRIALS", trials);
    let columns = [
        DefenseKind::LegacyChrome,
        DefenseKind::LegacyFirefox,
        DefenseKind::LegacyEdge,
        DefenseKind::Fuzzyfox,
        DefenseKind::TorBrowser,
        DefenseKind::ChromeZero,
        DefenseKind::JsKernel,
    ];
    let mut report = Report::new(
        format!("Table II — Averaged Measured Time of Different Targets ({trials} runs; measured / paper, ms)"),
        &[
            "Defense",
            "SVG low-res",
            "SVG high-res",
            "Loopscan google",
            "Loopscan youtube",
        ],
    );

    let measured: Vec<([f64; 4], Probe)> = pool::run_indexed(columns.len(), jobs, |i| {
        let col = columns[i];
        let mut probe = Probe::default();
        let svg =
            run_timing_attack_observed(&SvgFiltering::default(), col, trials, 0x7AB1E2, &mut |b| {
                probe.observe(b);
            });
        let loop_r = run_timing_attack_observed(
            &Loopscan::default(),
            col,
            trials.min(12),
            0x7AB1E3,
            &mut |b| probe.observe(b),
        );
        let (svg_low, svg_high) = svg.summaries();
        let (ls_google, ls_youtube) = loop_r.summaries();
        eprintln!("  finished {}", col.label());
        (
            [svg_low.mean, svg_high.mean, ls_google.mean, ls_youtube.mean],
            probe,
        )
    });

    const TARGETS: [&str; 4] = [
        "SVG low-res",
        "SVG high-res",
        "Loopscan google",
        "Loopscan youtube",
    ];
    for (i, col) in columns.iter().enumerate() {
        let (means, probe) = &measured[i];
        let paper = PAPER
            .iter()
            .find(|p| p.0 == col.label())
            .copied()
            .unwrap_or((col.label(), f64::NAN, f64::NAN, f64::NAN, f64::NAN));
        report.row(vec![
            col.label().to_owned(),
            format!("{:.2} / {:.2}", means[0], paper.1),
            format!("{:.2} / {:.2}", means[1], paper.2),
            format!("{:.2} / {:.1}", means[2], paper.3),
            format!("{:.2} / {:.1}", means[3], paper.4),
        ]);
        for (t, target) in TARGETS.iter().enumerate() {
            reporter.cell(CellRecord::value(*target, col.label(), means[t], "ms"));
        }
        reporter.absorb(probe);
    }
    report.print();
    println!(
        "\nShape checks: each legacy engine separates low/high SVG and \
         google/youtube; JSKernel's cells are constants, equal across \
         secrets. Known deviations are recorded in EXPERIMENTS.md."
    );
    reporter.finish().expect("write bench JSON");
}
