//! Figure 3 — cumulative distribution of loading times over the top-N
//! (default 500) sites, for the eight browser/defense configurations.
//!
//! The paper's reading: JSKernel's curves hug their host browsers (no
//! observable overhead); DeterFox ≈ Firefox; Chrome Zero visibly slower
//! than JSKernel-on-Chrome; Tor Browser and Fuzzyfox slowest.
//!
//! Run with `cargo bench -p jsk-bench --bench fig3` (`JSK_SITES=n`;
//! `JSK_JOBS=n` fans the configuration × site loads across workers —
//! per-site seeds are fixed, so the CDF is schedule-invariant).

use jsk_bench::record::{BenchReporter, CellRecord, Probe};
use jsk_bench::{env_knob, pool, Report};
use jsk_defenses::registry::DefenseKind;
use jsk_sim::stats::{percentile, Summary};
use jsk_workloads::site::{load_result, load_site, SiteProfile};

fn load_one(kind: DefenseKind, rank: usize, probe: &mut Probe) -> f64 {
    let profile = SiteProfile::generate(rank);
    let mut browser = kind.build(0xF16_003 + rank as u64);
    load_site(&mut browser, &profile);
    probe.observe(&browser);
    let r = load_result(&browser, &profile).expect("site records load");
    // Loading time: whichever lands later of onload and the hero
    // element (modern sites keep loading after onload, §V-A3).
    r.onload_ms.max(r.hero_ms)
}

fn main() {
    let sites = env_knob("JSK_SITES", 500);
    let jobs = pool::jobs();
    let mut reporter = BenchReporter::new("fig3");
    reporter.knob("JSK_SITES", sites);
    let configs = [
        DefenseKind::LegacyChrome,
        DefenseKind::JsKernel,
        DefenseKind::ChromeZero,
        DefenseKind::LegacyFirefox,
        DefenseKind::JsKernelFirefox,
        DefenseKind::DeterFox,
        DefenseKind::TorBrowser,
        DefenseKind::Fuzzyfox,
    ];
    let mut report = Report::new(
        format!("Figure 3 — CDF of loading time, top {sites} sites (ms at percentile)"),
        &["Config", "p10", "p25", "p50", "p75", "p90", "mean"],
    );

    // One work item per (configuration, site): 8 × N fully independent
    // loads, the finest useful grain for the pool.
    let loads: Vec<(f64, Probe)> = pool::run_indexed(configs.len() * sites, jobs, |i| {
        let (c, rank) = (i / sites, i % sites);
        let mut probe = Probe::default();
        let t = load_one(configs[c], rank, &mut probe);
        (t, probe)
    });

    let mut medians = Vec::new();
    for (c, kind) in configs.iter().enumerate() {
        let mut times = Vec::with_capacity(sites);
        for rank in 0..sites {
            let (t, probe) = &loads[c * sites + rank];
            times.push(*t);
            reporter.absorb(probe);
        }
        let s = Summary::of(&times);
        for (name, v) in [
            ("p10", percentile(&times, 10.0)),
            ("p25", percentile(&times, 25.0)),
            ("p50", percentile(&times, 50.0)),
            ("p75", percentile(&times, 75.0)),
            ("p90", percentile(&times, 90.0)),
            ("mean", s.mean),
        ] {
            reporter.cell(CellRecord::value(kind.label(), name, v, "ms"));
        }
        report.row(vec![
            kind.label().to_owned(),
            format!("{:.0}", percentile(&times, 10.0)),
            format!("{:.0}", percentile(&times, 25.0)),
            format!("{:.0}", percentile(&times, 50.0)),
            format!("{:.0}", percentile(&times, 75.0)),
            format!("{:.0}", percentile(&times, 90.0)),
            format!("{:.0}", s.mean),
        ]);
        medians.push((kind.label(), s.median));
        eprintln!("  finished {} ({} sites)", kind.label(), sites);
    }
    report.print();

    let get = |label: &str| {
        medians
            .iter()
            .find(|(l, _)| *l == label)
            .map_or(f64::NAN, |(_, m)| *m)
    };
    println!("\nShape checks (medians):");
    println!(
        "  JSKernel(C) vs Chrome: {:+.1}%  (paper: no observable overhead)",
        (get("JSKernel") / get("Chrome") - 1.0) * 100.0
    );
    println!(
        "  JSKernel(F) vs Firefox: {:+.1}%  (paper: no observable overhead)",
        (get("JSKernel (F)") / get("Firefox") - 1.0) * 100.0
    );
    println!(
        "  Chrome Zero vs JSKernel(C): {:+.1}%  (paper: Chrome Zero slower)",
        (get("Chrome Zero") / get("JSKernel") - 1.0) * 100.0
    );
    println!(
        "  Tor Browser vs Firefox: {:+.1}%  (paper: Tor much slower)",
        (get("Tor Browser") / get("Firefox") - 1.0) * 100.0
    );
    reporter.finish().expect("write bench JSON");
}
