//! Figure 3 — cumulative distribution of loading times over the top-N
//! (default 500) sites, for the eight browser/defense configurations.
//!
//! The paper's reading: JSKernel's curves hug their host browsers (no
//! observable overhead); DeterFox ≈ Firefox; Chrome Zero visibly slower
//! than JSKernel-on-Chrome; Tor Browser and Fuzzyfox slowest.
//!
//! Run with `cargo bench -p jsk-bench --bench fig3` (`JSK_SITES=n`).

use jsk_bench::{env_knob, Report};
use jsk_defenses::registry::DefenseKind;
use jsk_sim::stats::{percentile, Summary};
use jsk_workloads::site::{load_result, load_site, SiteProfile};

fn loading_times(kind: DefenseKind, sites: usize) -> Vec<f64> {
    let mut times = Vec::with_capacity(sites);
    for rank in 0..sites {
        let profile = SiteProfile::generate(rank);
        let mut browser = kind.build(0xF16_003 + rank as u64);
        load_site(&mut browser, &profile);
        let r = load_result(&browser, &profile).expect("site records load");
        // Loading time: whichever lands later of onload and the hero
        // element (modern sites keep loading after onload, §V-A3).
        times.push(r.onload_ms.max(r.hero_ms));
    }
    times
}

fn main() {
    let sites = env_knob("JSK_SITES", 500);
    let configs = [
        DefenseKind::LegacyChrome,
        DefenseKind::JsKernel,
        DefenseKind::ChromeZero,
        DefenseKind::LegacyFirefox,
        DefenseKind::JsKernelFirefox,
        DefenseKind::DeterFox,
        DefenseKind::TorBrowser,
        DefenseKind::Fuzzyfox,
    ];
    let mut report = Report::new(
        format!("Figure 3 — CDF of loading time, top {sites} sites (ms at percentile)"),
        &["Config", "p10", "p25", "p50", "p75", "p90", "mean"],
    );
    let mut medians = Vec::new();
    for kind in configs {
        let times = loading_times(kind, sites);
        let s = Summary::of(&times);
        report.row(vec![
            kind.label().to_owned(),
            format!("{:.0}", percentile(&times, 10.0)),
            format!("{:.0}", percentile(&times, 25.0)),
            format!("{:.0}", percentile(&times, 50.0)),
            format!("{:.0}", percentile(&times, 75.0)),
            format!("{:.0}", percentile(&times, 90.0)),
            format!("{:.0}", s.mean),
        ]);
        medians.push((kind.label(), s.median));
        eprintln!("  finished {} ({} sites)", kind.label(), sites);
    }
    report.print();

    let get = |label: &str| {
        medians
            .iter()
            .find(|(l, _)| *l == label)
            .map_or(f64::NAN, |(_, m)| *m)
    };
    println!("\nShape checks (medians):");
    println!(
        "  JSKernel(C) vs Chrome: {:+.1}%  (paper: no observable overhead)",
        (get("JSKernel") / get("Chrome") - 1.0) * 100.0
    );
    println!(
        "  JSKernel(F) vs Firefox: {:+.1}%  (paper: no observable overhead)",
        (get("JSKernel (F)") / get("Firefox") - 1.0) * 100.0
    );
    println!(
        "  Chrome Zero vs JSKernel(C): {:+.1}%  (paper: Chrome Zero slower)",
        (get("Chrome Zero") / get("JSKernel") - 1.0) * 100.0
    );
    println!(
        "  Tor Browser vs Firefox: {:+.1}%  (paper: Tor much slower)",
        (get("Tor Browser") / get("Firefox") - 1.0) * 100.0
    );
}
