//! The wire front door as a bench target: the 13-program corpus served
//! over `LoopbackTransport` by several concurrent client connections.
//!
//! Each connection submits the full corpus under the kernel policy in
//! queue-capacity-sized chunks and flushes between chunks; every verdict
//! becomes a cell, so a single program losing its defense behind the
//! wire flips a cell and fails the regression gate. The harness also
//! verifies the tentpole invariant inline — connection 0's verdict
//! frames are diffed byte-for-byte against direct `ShardPool` submission
//! of the same chunks — and exercises queue backpressure (shed fires
//! exactly past capacity).
//!
//! Knobs: `JSK_SERVE_CONNS` (client connections, default 4),
//! `JSK_SERVE_QUEUE` (per-connection queue bound, default 8),
//! `JSK_SHARDS` (default 4), `JSK_JOBS` (pool worker threads — never
//! changes a byte of the record). Wall-clock requests/sec goes to stdout
//! only; the JSON record stays deterministic.

use jsk_bench::record::{BenchReporter, CellRecord};
use jsk_bench::{env_knob, pool, Report};
use jsk_serve::protocol::Response;
use jsk_serve::{submission_job, Client, LoopbackTransport, Server, ServerConfig, Submission};
use jsk_shard::serve::{ServeConfig, ShardPool, SiteOutcome};
use jsk_workloads::schedule::{corpus_schedules, Schedule};

/// The corpus under the kernel policy, seeded per connection.
fn corpus_submissions(conn: usize) -> Vec<Submission> {
    corpus_schedules()
        .into_iter()
        .enumerate()
        .map(|(i, s)| Submission {
            site: s.name.clone(),
            seed: (conn as u64 + 1) * 1_000_003 + i as u64,
            policy: "kernel".into(),
            schedule: s,
            deadline_ms: 0,
        })
        .collect()
}

/// Serves `subs` through `client` in `chunk`-sized flushes; returns the
/// serialized per-site response frames in submission order.
fn serve_chunked(client: &mut Client, subs: &[Submission], chunk: usize) -> Vec<String> {
    let mut frames = Vec::with_capacity(subs.len());
    for batch in subs.chunks(chunk.max(1)) {
        for sub in batch {
            let resp = client.submit(sub).expect("submit");
            assert!(matches!(resp, Response::Queued { .. }), "{resp:?}");
        }
        let mut results = client.flush().expect("flush");
        let summary = results.pop().expect("flush summary");
        assert!(
            matches!(summary, Response::FlushOk { served, .. } if served == batch.len() as u64),
            "{summary:?}"
        );
        frames.extend(
            results
                .iter()
                .map(|r| serde_json::to_string(r).expect("response serializes")),
        );
    }
    frames
}

/// Direct `ShardPool` submission of the same chunk partition: the frames
/// the wire path must reproduce byte for byte.
fn serve_direct(subs: &[Submission], chunk: usize, shards: usize, workers: usize) -> Vec<String> {
    let pool = ShardPool::new(ServeConfig::new(shards, workers));
    let mut frames = Vec::with_capacity(subs.len());
    for batch in subs.chunks(chunk.max(1)) {
        let report = pool.serve(batch.iter().map(submission_job).collect());
        let n = report.shards.len();
        let mut cursors = vec![0usize; n];
        for (i, sub) in batch.iter().enumerate() {
            let s = i % n;
            let row = &report.shards[s].sites[cursors[s]];
            cursors[s] += 1;
            let SiteOutcome::Served {
                defended,
                detail,
                wedged,
            } = &row.outcome
            else {
                panic!("corpus site {} not served: {:?}", row.site, row.outcome)
            };
            frames.push(
                serde_json::to_string(&Response::Verdict {
                    site: row.site.clone(),
                    seed: row.seed,
                    policy: sub.policy.clone(),
                    shard: s as u64,
                    defended: *defended,
                    detail: detail.clone(),
                    wedged: *wedged,
                    attempts: row.attempts,
                    completed_at_ms: row.completed_at_ms,
                })
                .expect("verdict serializes"),
            );
        }
    }
    frames
}

fn main() {
    let conns = env_knob("JSK_SERVE_CONNS", 4).max(1);
    let queue = env_knob("JSK_SERVE_QUEUE", 8).max(1);
    let shards = pool::shards();
    let jobs = pool::jobs();
    let mut reporter = BenchReporter::new("serve");
    reporter
        .knob("JSK_SERVE_CONNS", conns)
        .knob("JSK_SERVE_QUEUE", queue)
        .knob("JSK_SHARDS", shards)
        .set_jobs(jobs);

    let server = Server::new(ServerConfig::new(shards, jobs).with_queue_capacity(queue));
    let transport = LoopbackTransport::new(server.clone());

    let mut report = Report::new(
        "Corpus served over the wire front door — every verdict behind the protocol",
        &["Connection", "served", "defended", "wire == direct"],
    );
    let start = std::time::Instant::now();
    for conn in 0..conns {
        let subs = corpus_submissions(conn);
        let mut client = Client::connect(&transport).expect("loopback connects");
        let frames = serve_chunked(&mut client, &subs, queue);
        client.bye().expect("clean close");
        assert_eq!(frames.len(), subs.len());

        let mut defended = 0usize;
        for (sub, frame) in subs.iter().zip(&frames) {
            let ok = frame.contains("\"defended\":true");
            defended += usize::from(ok);
            reporter.cell(CellRecord::verdict(
                sub.site.clone(),
                format!("conn{conn}"),
                ok,
            ));
        }

        // The tentpole invariant, inline: connection 0's frames diff
        // byte-for-byte against direct pool submission of the same
        // chunks (workers = 1 on the direct side — worker count is
        // wall-clock, never content).
        let wire_matches = if conn == 0 {
            let direct = serve_direct(&subs, queue, shards, 1);
            assert_eq!(frames, direct, "wire diverged from direct submission");
            reporter.cell(CellRecord::verdict("wire", "byte-identical", true));
            "yes"
        } else {
            "-"
        };
        report.row(vec![
            format!("conn{conn}"),
            subs.len().to_string(),
            format!("{defended}/{}", subs.len()),
            wire_matches.to_owned(),
        ]);
        eprintln!("  finished connection {conn}");
    }

    // Backpressure: one more connection over-fills its queue with cheap
    // schedules; shed must fire exactly past capacity.
    let mut client = Client::connect(&transport).expect("loopback connects");
    let mut shed = 0usize;
    for i in 0..queue + 2 {
        let sub = Submission {
            site: format!("over-{i}"),
            seed: i as u64,
            policy: "legacy".into(),
            schedule: Schedule {
                name: format!("over-{i}"),
                private_mode: false,
                run_ms: 1,
                resources: Vec::new(),
                events: Vec::new(),
            },
            deadline_ms: 0,
        };
        if matches!(client.submit(&sub).expect("submit"), Response::Shed { .. }) {
            shed += 1;
        }
    }
    client.flush().expect("flush the survivors");
    client.bye().expect("clean close");
    reporter.cell(CellRecord::verdict(
        "backpressure",
        "shed-past-capacity",
        shed == 2,
    ));

    let stats = server.wire_stats();
    reporter.observe(&server.site_metrics());
    reporter.observe(&stats.snapshot());

    report.print();
    println!(
        "\nPaper reading: the kernel front door adds framing, backpressure, \
         and observability — and not one byte of semantics. Every corpus \
         program keeps its verdict behind the wire protocol, the loopback \
         stream diffs clean against direct shard-pool submission, and the \
         connection queue sheds explicitly instead of stalling."
    );
    // Wall-clock throughput goes to stdout only: the JSON record must
    // stay byte-identical across machines and JSK_JOBS settings.
    let wall = start.elapsed().as_secs_f64();
    if wall > 0.0 {
        println!(
            "[serve-wire] {} frames over {conns} connections ({:.0} requests/sec wall-clock)",
            stats.frames,
            f64::from(u32::try_from(stats.frames).unwrap_or(u32::MAX)) / wall
        );
    }
    reporter.finish().expect("write bench JSON");
}
