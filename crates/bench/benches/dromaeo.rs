//! §V-A1 — Dromaeo micro-benchmark overhead of JSKernel (and Chrome Zero
//! for comparison) on Chrome.
//!
//! Paper: mean 1.99 %, median 0.30 %, worst case DOM-attribute 21.15 %.
//!
//! Run with `cargo bench -p jsk-bench --bench dromaeo` (`JSK_JOBS=n` runs
//! the three configurations' suites concurrently).

use jsk_bench::record::{BenchReporter, CellRecord, Probe};
use jsk_bench::{pool, Report};
use jsk_defenses::registry::DefenseKind;
use jsk_sim::stats::percentile;
use jsk_workloads::dromaeo::{overhead_percent, run_suite, DromaeoResult};

fn main() {
    let jobs = pool::jobs();
    let mut reporter = BenchReporter::new("dromaeo");
    let configs = [
        DefenseKind::LegacyChrome,
        DefenseKind::JsKernel,
        DefenseKind::ChromeZero,
    ];
    let suites: Vec<(Vec<DromaeoResult>, Probe)> = pool::run_indexed(configs.len(), jobs, |i| {
        let mut browser = configs[i].build(0xD20);
        let results = run_suite(&mut browser);
        let mut probe = Probe::default();
        probe.observe(&browser);
        eprintln!("  finished {}", configs[i].label());
        (results, probe)
    });
    let (base, with_kernel, with_cz) = (&suites[0].0, &suites[1].0, &suites[2].0);
    for (_, probe) in &suites {
        reporter.absorb(probe);
    }

    let k_overhead = overhead_percent(base, with_kernel);
    let cz_overhead = overhead_percent(base, with_cz);

    let mut report = Report::new(
        "Dromaeo micro-benchmark (Chrome): per-test time and overhead",
        &[
            "Test",
            "Chrome (ms)",
            "JSKernel (ms)",
            "JSK overhead",
            "ChromeZero overhead",
        ],
    );
    for (i, b) in base.iter().enumerate() {
        report.row(vec![
            b.test.clone(),
            format!("{:.3}", b.ms),
            format!("{:.3}", with_kernel[i].ms),
            format!("{:+.2}%", k_overhead[i].1),
            format!("{:+.2}%", cz_overhead[i].1),
        ]);
        reporter.cell(CellRecord::value(&b.test, "Chrome", b.ms, "ms"));
        reporter.cell(CellRecord::value(
            &b.test,
            "JSKernel",
            with_kernel[i].ms,
            "ms",
        ));
        reporter.cell(CellRecord::value(
            &b.test,
            "JSK overhead",
            k_overhead[i].1,
            "%",
        ));
    }
    report.print();

    let pcts: Vec<f64> = k_overhead.iter().map(|(_, p)| *p).collect();
    let mean = pcts.iter().sum::<f64>() / pcts.len() as f64;
    let median = percentile(&pcts, 50.0);
    let worst = k_overhead
        .iter()
        .cloned()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty suite");
    println!(
        "\nJSKernel summary: mean {mean:+.2}% (paper 1.99%), median {median:+.2}% (paper 0.30%)"
    );
    println!(
        "worst case: {} {:+.2}% (paper: DOM-attribute 21.15%)",
        worst.0, worst.1
    );
    reporter.cell(CellRecord::value("summary", "mean overhead", mean, "%"));
    reporter.cell(CellRecord::value("summary", "median overhead", median, "%"));
    reporter.finish().expect("write bench JSON");
}
