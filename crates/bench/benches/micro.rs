//! Criterion micro-benchmarks of the kernel's data structures: the real
//! wall-clock cost of the structures the JSKernel interposes on every
//! asynchronous event.

use criterion::{criterion_group, BatchSize, Criterion};
use jsk_browser::event::AsyncKind;
use jsk_browser::ids::{EventToken, RequestId, ThreadId, WorkerId};
use jsk_browser::trace::ApiCall;
use jsk_core::equeue::{DrainScratch, KernelEventQueue};
use jsk_core::kclock::KernelClock;
use jsk_core::kevent::{KEventStatus, KernelEvent};
use jsk_core::policy::{cve, PolicyEngine};
use jsk_core::threads::ThreadManager;
use jsk_defenses::registry::DefenseKind;
use jsk_sim::time::{SimDuration, SimTime};
use std::hint::black_box;

fn bench_equeue(c: &mut Criterion) {
    // The scratch buffer lives across iterations, as it does in the
    // kernel's dispatch loop — steady state drains without allocating.
    let mut scratch = DrainScratch::new();
    c.bench_function("equeue push+confirm+drain (64 events)", |b| {
        b.iter_batched(
            KernelEventQueue::new,
            |mut q| {
                for i in 0..64u64 {
                    q.push(KernelEvent::pending(
                        EventToken::new(i),
                        ThreadId::new(0),
                        AsyncKind::Raf,
                        SimTime::from_millis(i),
                    ));
                }
                for i in 0..64u64 {
                    q.lookup_mut(EventToken::new(i)).unwrap().status = KEventStatus::Confirmed;
                }
                scratch.clear();
                q.drain_dispatchable_into(&mut scratch);
                black_box(scratch.len())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_kclock(c: &mut Criterion) {
    c.bench_function("kernel clock tick+display", |b| {
        let mut clock = KernelClock::new(SimDuration::from_micros(1));
        b.iter(|| {
            clock.tick();
            black_box(clock.display())
        });
    });
}

fn bench_policy_engine(c: &mut Criterion) {
    let engine = PolicyEngine::new(cve::all_cve_policies());
    let threads = ThreadManager::new();
    let call = ApiCall::TerminateWorker {
        worker: WorkerId::new(0),
        reason: jsk_browser::trace::TerminationReason::Explicit,
        during_dispatch: false,
        live_transfers: 1,
        pending_fetches: 0,
    };
    c.bench_function("policy engine decide (12 CVE policies)", |b| {
        b.iter(|| black_box(engine.decide(&call, &threads)));
    });
    let abort = ApiCall::DeliverAbort {
        req: RequestId::new(0),
        owner: ThreadId::new(1),
        owner_alive: false,
    };
    c.bench_function("policy engine decide (abort path)", |b| {
        b.iter(|| black_box(engine.decide(&abort, &threads)));
    });
}

fn bench_browser_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("browser-run");
    group.sample_size(20);
    for kind in [DefenseKind::LegacyChrome, DefenseKind::JsKernel] {
        group.bench_function(format!("timer storm under {}", kind.label()), |b| {
            b.iter(|| {
                let mut browser = kind.build(1);
                browser.boot(|scope| {
                    for i in 0..200 {
                        scope.set_timeout(f64::from(i), jsk_browser::task::cb(|_, _| {}));
                    }
                });
                browser.run_until_idle();
                black_box(browser.steps())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_equeue,
    bench_kclock,
    bench_policy_engine,
    bench_browser_run
);

/// Custom entry point: run the Criterion benches, then emit the
/// machine-readable record. Criterion's samples are wall-clock and
/// machine-dependent, so the JSON cells come from a deterministic timer
/// storm instead (step counts are pure simulation outputs) and the run's
/// wall-clock throughput lands in the BENCH_micro.json metadata.
fn main() {
    benches();

    let jobs = jsk_bench::pool::jobs();
    let mut reporter = jsk_bench::record::BenchReporter::new("micro");
    let configs = [DefenseKind::LegacyChrome, DefenseKind::JsKernel];
    let storms = jsk_bench::pool::run_indexed(configs.len(), jobs, |i| {
        let mut browser = configs[i].build(1);
        browser.boot(|scope| {
            for t in 0..200 {
                scope.set_timeout(f64::from(t), jsk_browser::task::cb(|_, _| {}));
            }
        });
        browser.run_until_idle();
        let mut probe = jsk_bench::record::Probe::default();
        probe.observe(&browser);
        (browser.steps(), probe)
    });
    for (i, (steps, probe)) in storms.iter().enumerate() {
        reporter.cell(jsk_bench::record::CellRecord::value(
            "timer storm (200 timers)",
            configs[i].label(),
            *steps as f64,
            "steps",
        ));
        reporter.absorb(probe);
    }
    reporter.finish().expect("write bench JSON");
}
