//! The CI regression gate: diffs the fresh `BENCH_<target>.json` runs
//! against the committed `bench_results/baseline.json` and exits non-zero
//! on any defense-matrix verdict flip or throughput regression beyond the
//! tolerance.
//!
//! * `cargo bench -p jsk-bench --bench regress` — check fresh runs against
//!   the baseline (run the other bench targets first).
//! * `JSK_REGRESS_WRITE=1 cargo bench -p jsk-bench --bench regress` —
//!   regenerate the baseline from the fresh runs instead of checking.
//! * `JSK_REGRESS_TOL=n` — throughput/value tolerance in percent
//!   (default 25; CI uses a wider band because wall-clock throughput is
//!   machine-dependent).

use jsk_bench::record::{out_root, run_path, BenchRun, SCHEMA_VERSION};
use jsk_bench::regress::{compare_runs, tolerance_pct, Baseline, ALL_TARGETS};
use std::path::Path;

fn read_run(path: &Path) -> Result<BenchRun, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn write_baseline(root: &Path) {
    let mut baseline = Baseline::new();
    for target in ALL_TARGETS {
        let path = run_path(root, target);
        match read_run(&path) {
            Ok(run) => {
                baseline.targets.insert(target.to_owned(), run);
            }
            Err(e) => eprintln!("warning: leaving `{target}` out of the baseline: {e}"),
        }
    }
    let path = root.join("bench_results").join("baseline.json");
    std::fs::create_dir_all(root.join("bench_results")).expect("create bench_results/");
    let mut json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    json.push('\n');
    std::fs::write(&path, json).expect("write baseline");
    println!(
        "wrote {} target(s) to {}",
        baseline.targets.len(),
        path.display()
    );
}

fn main() {
    let root = out_root();
    if std::env::var("JSK_REGRESS_WRITE").is_ok_and(|v| v == "1") {
        write_baseline(&root);
        return;
    }

    let baseline_path = root.join("bench_results").join("baseline.json");
    let baseline: Baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {}: {e}", baseline_path.display());
            std::process::exit(1);
        }),
        Err(e) => {
            eprintln!(
                "no baseline at {} ({e}); run the bench targets, then \
                 JSK_REGRESS_WRITE=1 cargo bench -p jsk-bench --bench regress",
                baseline_path.display()
            );
            std::process::exit(1);
        }
    };
    if baseline.schema != SCHEMA_VERSION {
        eprintln!(
            "baseline schema {} != current {}; regenerate it",
            baseline.schema, SCHEMA_VERSION
        );
        std::process::exit(1);
    }

    let tol = tolerance_pct();
    println!(
        "regression gate: {} baseline target(s), tolerance {tol:.0}%\n",
        baseline.targets.len()
    );
    let mut fatal = 0usize;
    let mut notes = 0usize;
    for (target, base) in &baseline.targets {
        let fresh = match read_run(&run_path(&root, target)) {
            Ok(run) => run,
            Err(e) => {
                println!("[FAIL] {target}: fresh run missing — {e}");
                fatal += 1;
                continue;
            }
        };
        let findings = compare_runs(base, &fresh, tol);
        if findings.is_empty() {
            println!(
                "[ok]   {target}: {} cells ({} verdicts) match; throughput within {tol:.0}%",
                base.record.cells.len(),
                base.record.verdict_count()
            );
        }
        for finding in findings {
            println!("{finding}");
            if finding.fatal {
                fatal += 1;
            } else {
                notes += 1;
            }
        }
    }
    println!("\nregression gate: {fatal} failure(s), {notes} note(s)");
    if fatal > 0 {
        std::process::exit(1);
    }
}
