//! The prove bench target: the bounded policy prover over the full
//! designated matrix, recorded for the regression gate.
//!
//! One verdict cell per (policy, pattern) row — `true` means *proved*:
//! no schedule of length ≤ depth fires the attack under the policy. Any
//! flip to `false` is a policy regression the gate catches immediately.
//! Depth and total states explored ride along as value cells; state
//! growth signals a model change worth reading.
//!
//! Run with `cargo bench -p jsk-bench --bench prove`. Knob:
//! `JSK_PROVE_DEPTH` (default 6).

use jsk_analyze::prove::{prove_all, prove_depth, Verdict};
use jsk_bench::record::{BenchReporter, CellRecord};
use jsk_bench::Report;

fn main() {
    let depth = prove_depth();
    let mut reporter = BenchReporter::new("prove");
    reporter.knob("JSK_PROVE_DEPTH", depth);

    let proof = prove_all(depth);

    let mut report = Report::new(
        "Bounded prover — policy × attack-pattern matrix",
        &["Policy", "Pattern", "Verdict", "States"],
    );
    for row in &proof.rows {
        report.row(vec![
            row.policy.clone(),
            row.pattern.clone(),
            match row.verdict {
                Verdict::Proved => format!("proved ≤{}", row.depth),
                Verdict::Refuted => "REFUTED".into(),
            },
            row.states_explored.to_string(),
        ]);
    }
    report.print();
    println!("{}", proof.summary());

    let mut states_total = 0usize;
    for row in &proof.rows {
        states_total += row.states_explored;
        reporter.cell(CellRecord::verdict(
            row.policy.clone(),
            row.pattern.clone(),
            row.verdict == Verdict::Proved,
        ));
    }
    reporter.cell(CellRecord::value("depth", "bound", depth as f64, "events"));
    reporter.cell(CellRecord::value(
        "states",
        "explored",
        states_total as f64,
        "count",
    ));
    reporter.finish().expect("write bench JSON");
}
