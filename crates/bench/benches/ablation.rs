//! Ablation: which half of the kernel stops what?
//!
//! The kernel has two separable components — the *deterministic scheduling
//! policy* (Listing 3) and the *per-CVE policies* (Listing 4). This harness
//! runs a representative attack set against `KernelConfig::full()`,
//! `timing_only()`, and `cve_only()`, showing that timing attacks fall to
//! the scheduler while the CVEs fall to the policies (§VI: "JSKERNEL can
//! defend against unknown timing attacks because the scheduler arranges all
//! asynchronous events in a deterministic order. At present, JSKERNEL only
//! defends against other web concurrency attacks on a case-by-case base").
//!
//! Run with `cargo bench -p jsk-bench --bench ablation` (`JSK_JOBS=n` fans
//! the attack × configuration cells across workers).

use jsk_attacks::cve_exploits::all_exploits;
use jsk_attacks::harness::{CveExploit, TimingAttack};
use jsk_attacks::{CacheAttack, ClockEdge, SvgFiltering};
use jsk_bench::record::{BenchReporter, CellRecord, Probe};
use jsk_bench::{env_knob, pool, verdict_cell, Report};
use jsk_browser::browser::Browser;
use jsk_core::{config::KernelConfig, kernel::JsKernel};
use jsk_defenses::registry::DefenseKind;

/// Builds a JSKernel browser with the given config on the Chrome profile.
fn build(cfg: &KernelConfig, seed: u64, exploit: Option<&dyn CveExploit>) -> Browser {
    let mut bcfg = DefenseKind::JsKernel.config(seed);
    if let Some(e) = exploit {
        e.configure(&mut bcfg);
    }
    Browser::new(bcfg, Box::new(JsKernel::new(cfg.clone())))
}

/// One ablation row.
enum Row<'a> {
    Timing(&'a dyn TimingAttack),
    Cve(&'a dyn CveExploit),
}

impl Row<'_> {
    fn name(&self) -> String {
        match self {
            Row::Timing(a) => a.name().to_owned(),
            Row::Cve(e) => e.cve().id().to_owned(),
        }
    }
}

/// Evaluates one (row, config) cell; returns whether the config defends.
fn run_cell(row: &Row<'_>, cfg: &KernelConfig, trials: usize, probe: &mut Probe) -> bool {
    match row {
        Row::Timing(attack) => {
            let mut a = Vec::new();
            let mut b = Vec::new();
            for t in 0..trials {
                for (secret, bucket) in [
                    (jsk_attacks::Secret::A, &mut a),
                    (jsk_attacks::Secret::B, &mut b),
                ] {
                    let seed =
                        31 + t as u64 * 2 + u64::from(matches!(secret, jsk_attacks::Secret::B));
                    let mut browser = build(cfg, seed, None);
                    attack.prepare(&mut browser, secret);
                    bucket.push(attack.measure(&mut browser, secret));
                    probe.observe(&browser);
                }
            }
            let verdict = jsk_sim::stats::distinguishable(&a, &b, attack.min_rel_gap());
            !verdict.is_distinguishable()
        }
        Row::Cve(exploit) => {
            let mut browser = build(cfg, 77, Some(*exploit));
            exploit.run(&mut browser);
            probe.observe(&browser);
            let report = jsk_vuln::oracle::scan(browser.trace());
            !report.is_triggered(exploit.cve())
        }
    }
}

fn main() {
    let trials = env_knob("JSK_TRIALS", 25).min(15);
    let jobs = pool::jobs();
    let mut reporter = BenchReporter::new("ablation");
    reporter.knob("JSK_TRIALS", trials);
    let configs: [(&str, KernelConfig); 3] = [
        ("full", KernelConfig::full()),
        ("timing-only", KernelConfig::timing_only()),
        ("cve-only", KernelConfig::cve_only()),
    ];
    let mut report = Report::new(
        "Ablation — deterministic scheduler vs CVE policies (✓ = defends)",
        &["Attack", "full", "timing-only", "cve-only"],
    );

    let timing_attacks: Vec<Box<dyn TimingAttack>> = vec![
        Box::new(CacheAttack),
        Box::new(ClockEdge::default()),
        Box::new(SvgFiltering::default()),
    ];
    let exploits = all_exploits();
    let rows: Vec<Row<'_>> = timing_attacks
        .iter()
        .map(|a| Row::Timing(a.as_ref()))
        .chain(exploits.iter().map(|e| Row::Cve(e.as_ref())))
        .collect();

    let ncfg = configs.len();
    let cells: Vec<(bool, Probe)> = pool::run_indexed(rows.len() * ncfg, jobs, |i| {
        let (r, c) = (i / ncfg, i % ncfg);
        let mut probe = Probe::default();
        let defended = run_cell(&rows[r], &configs[c].1, trials, &mut probe);
        eprintln!("  finished {} × {}", rows[r].name(), configs[c].0);
        (defended, probe)
    });

    for (r, row) in rows.iter().enumerate() {
        let mut text_cells = vec![row.name()];
        for (c, (cfg_name, _)) in configs.iter().enumerate() {
            let (defended, probe) = &cells[r * ncfg + c];
            text_cells.push(verdict_cell(*defended));
            reporter.cell(CellRecord::verdict(row.name(), *cfg_name, *defended));
            reporter.absorb(probe);
        }
        report.row(text_cells);
    }
    report.print();
    println!(
        "\nExpected split: timing rows need the deterministic scheduler \
         (timing-only ✓, cve-only ✗); CVE rows need the policies (cve-only \
         ✓, timing-only mostly ✗); full defends everything."
    );
    reporter.finish().expect("write bench JSON");
}
