//! Ablation: which half of the kernel stops what?
//!
//! The kernel has two separable components — the *deterministic scheduling
//! policy* (Listing 3) and the *per-CVE policies* (Listing 4). This harness
//! runs a representative attack set against `KernelConfig::full()`,
//! `timing_only()`, and `cve_only()`, showing that timing attacks fall to
//! the scheduler while the CVEs fall to the policies (§VI: "JSKERNEL can
//! defend against unknown timing attacks because the scheduler arranges all
//! asynchronous events in a deterministic order. At present, JSKERNEL only
//! defends against other web concurrency attacks on a case-by-case base").
//!
//! Run with `cargo bench -p jsk-bench --bench ablation`.

use jsk_attacks::cve_exploits::all_exploits;
use jsk_attacks::harness::{run_cve_attack, run_timing_attack, CveExploit, TimingAttack};
use jsk_attacks::{CacheAttack, ClockEdge, SvgFiltering};
use jsk_bench::{env_knob, verdict_cell, Report};
use jsk_browser::browser::Browser;
use jsk_core::{config::KernelConfig, kernel::JsKernel};
use jsk_defenses::registry::DefenseKind;

/// Builds a JSKernel browser with the given config on the Chrome profile.
fn build(cfg: &KernelConfig, seed: u64, exploit: Option<&dyn CveExploit>) -> Browser {
    let mut bcfg = DefenseKind::JsKernel.config(seed);
    if let Some(e) = exploit {
        e.configure(&mut bcfg);
    }
    Browser::new(bcfg, Box::new(JsKernel::new(cfg.clone())))
}

fn main() {
    let trials = env_knob("JSK_TRIALS", 25).min(15);
    let configs: [(&str, KernelConfig); 3] = [
        ("full", KernelConfig::full()),
        ("timing-only", KernelConfig::timing_only()),
        ("cve-only", KernelConfig::cve_only()),
    ];
    let mut report = Report::new(
        "Ablation — deterministic scheduler vs CVE policies (✓ = defends)",
        &["Attack", "full", "timing-only", "cve-only"],
    );

    let timing_attacks: Vec<Box<dyn TimingAttack>> = vec![
        Box::new(CacheAttack),
        Box::new(ClockEdge::default()),
        Box::new(SvgFiltering::default()),
    ];
    for attack in &timing_attacks {
        let mut cells = vec![attack.name().to_owned()];
        for (_, cfg) in &configs {
            // Run through the harness by substituting the mediator builder:
            // evaluate manually with per-config browsers.
            let mut a = Vec::new();
            let mut b = Vec::new();
            for t in 0..trials {
                for (secret, bucket) in [
                    (jsk_attacks::Secret::A, &mut a),
                    (jsk_attacks::Secret::B, &mut b),
                ] {
                    let seed =
                        31 + t as u64 * 2 + u64::from(matches!(secret, jsk_attacks::Secret::B));
                    let mut browser = build(cfg, seed, None);
                    attack.prepare(&mut browser, secret);
                    bucket.push(attack.measure(&mut browser, secret));
                }
            }
            let verdict = jsk_sim::stats::distinguishable(&a, &b, attack.min_rel_gap());
            cells.push(verdict_cell(!verdict.is_distinguishable()));
        }
        report.row(cells);
        eprintln!("  finished {}", attack.name());
    }

    for exploit in all_exploits() {
        let mut cells = vec![exploit.cve().id().to_owned()];
        for (_, cfg) in &configs {
            let mut browser = build(cfg, 77, Some(exploit.as_ref()));
            exploit.run(&mut browser);
            let report_v = jsk_vuln::oracle::scan(browser.trace());
            cells.push(verdict_cell(!report_v.is_triggered(exploit.cve())));
        }
        report.row(cells);
    }
    report.print();
    println!(
        "\nExpected split: timing rows need the deterministic scheduler \
         (timing-only ✓, cve-only ✗); CVE rows need the policies (cve-only \
         ✓, timing-only mostly ✗); full defends everything."
    );
    // Silence unused-import lint for the harness helpers used above.
    let _ = (run_timing_attack, run_cve_attack);
}
