//! §V-A1 — the worker-creation benchmark: 16 workers, 5 repeats, with and
//! without JSKernel. Paper: ~0.9 % average overhead.
//!
//! Run with `cargo bench -p jsk-bench --bench workerbench` (`JSK_JOBS=n`
//! fans the configuration × repeat runs across workers).

use jsk_bench::record::{BenchReporter, CellRecord, Probe};
use jsk_bench::{pool, Report};
use jsk_defenses::registry::DefenseKind;
use jsk_sim::stats::Summary;
use jsk_workloads::workerbench::run;

fn main() {
    let repeats = 5;
    let jobs = pool::jobs();
    let mut reporter = BenchReporter::new("workerbench");
    let configs = [DefenseKind::LegacyChrome, DefenseKind::JsKernel];

    // One work item per (configuration, repeat).
    let runs: Vec<(f64, Probe)> = pool::run_indexed(configs.len() * repeats, jobs, |i| {
        let (c, r) = (i / repeats, i % repeats);
        let mut browser = configs[c].build(0xB0B + r as u64);
        let total = run(&mut browser, 16).total_ms;
        let mut probe = Probe::default();
        probe.observe(&browser);
        (total, probe)
    });
    let series = |c: usize| -> Vec<f64> { (0..repeats).map(|r| runs[c * repeats + r].0).collect() };
    for (_, probe) in &runs {
        reporter.absorb(probe);
    }

    let legacy = series(0);
    let kernel = series(1);
    let sl = Summary::of(&legacy);
    let sk = Summary::of(&kernel);

    let mut report = Report::new(
        "Worker benchmark — time to create 16 workers (5 repeats)",
        &["Config", "mean (ms)", "std (ms)"],
    );
    report.row(vec![
        "Chrome".into(),
        format!("{:.3}", sl.mean),
        format!("{:.3}", sl.std),
    ]);
    report.row(vec![
        "JSKernel".into(),
        format!("{:.3}", sk.mean),
        format!("{:.3}", sk.std),
    ]);
    report.print();

    let overhead = (sk.mean / sl.mean - 1.0) * 100.0;
    println!("\nJSKernel worker-creation overhead: {overhead:+.2}% (paper: 0.9%)");
    reporter.cell(CellRecord::value("16 workers", "Chrome", sl.mean, "ms"));
    reporter.cell(CellRecord::value("16 workers", "JSKernel", sk.mean, "ms"));
    reporter.cell(CellRecord::value("16 workers", "overhead", overhead, "%"));
    reporter.finish().expect("write bench JSON");
}
