//! §V-A1 — the worker-creation benchmark: 16 workers, 5 repeats, with and
//! without JSKernel. Paper: ~0.9 % average overhead.
//!
//! Run with `cargo bench -p jsk-bench --bench workerbench`.

use jsk_bench::Report;
use jsk_defenses::registry::DefenseKind;
use jsk_sim::stats::Summary;
use jsk_workloads::workerbench::run;

fn times(kind: DefenseKind, repeats: usize) -> Vec<f64> {
    (0..repeats)
        .map(|i| {
            let mut b = kind.build(0xB0B + i as u64);
            run(&mut b, 16).total_ms
        })
        .collect()
}

fn main() {
    let repeats = 5;
    let legacy = times(DefenseKind::LegacyChrome, repeats);
    let kernel = times(DefenseKind::JsKernel, repeats);
    let sl = Summary::of(&legacy);
    let sk = Summary::of(&kernel);

    let mut report = Report::new(
        "Worker benchmark — time to create 16 workers (5 repeats)",
        &["Config", "mean (ms)", "std (ms)"],
    );
    report.row(vec![
        "Chrome".into(),
        format!("{:.3}", sl.mean),
        format!("{:.3}", sl.std),
    ]);
    report.row(vec![
        "JSKernel".into(),
        format!("{:.3}", sk.mean),
        format!("{:.3}", sk.std),
    ]);
    report.print();

    let overhead = (sk.mean / sl.mean - 1.0) * 100.0;
    println!("\nJSKernel worker-creation overhead: {overhead:+.2}% (paper: 0.9%)");
}
