//! Table I — the defense matrix: 10 implicit-clock attacks + 12 CVEs,
//! evaluated against every defense column. Every cell is computed by
//! running the attack; the "expected" annotations are the paper's cells as
//! reconstructed from its prose (see DESIGN.md §4).
//!
//! Run with `cargo bench -p jsk-bench --bench table1`
//! (`JSK_TRIALS=n` controls trials per secret; default 25).

use jsk_attacks::harness::{run_cve_attack, run_timing_attack};
use jsk_attacks::{all_timing_attacks, cve_exploits::all_exploits};
use jsk_bench::{env_knob, verdict_cell, Report};
use jsk_defenses::registry::DefenseKind;

/// The paper's expected cell (true = defends), reconstructed from §IV prose
/// per (attack row, defense column).
fn paper_expectation(row: &str, defense: DefenseKind) -> Option<bool> {
    use DefenseKind as D;
    let legacy = matches!(d(defense), "legacy");
    fn d(k: DefenseKind) -> &'static str {
        match k {
            D::LegacyChrome | D::LegacyFirefox | D::LegacyEdge => "legacy",
            D::Fuzzyfox => "fuzzyfox",
            D::DeterFox => "deterfox",
            D::TorBrowser => "tor",
            D::ChromeZero => "chromezero",
            D::JsKernel | D::JsKernelFirefox | D::JsKernelEdge => "jskernel",
        }
    }
    let name = d(defense);
    if name == "jskernel" {
        return Some(true); // JSKernel defends every row.
    }
    if legacy {
        return Some(false); // The legacy browsers defend nothing.
    }
    match (row, name) {
        // Timing rows, from §IV-A prose.
        ("Clock Edge", "fuzzyfox") => Some(true), // "Fuzzyfox does defend against the clock edge attack"
        // A fuzzy low-resolution clock also randomizes edges; the paper's
        // cell for Chrome Zero is not recoverable from prose.
        ("Clock Edge", "chromezero") => None,
        // Fuzzyfox's own video defense is not confirmed by the prose.
        ("Video/WebVTT", "fuzzyfox") => None,
        (_, "fuzzyfox") if is_timing(row) => Some(false),
        ("Loopscan", "deterfox") => Some(false), // "all other defenses are vulnerable to Loopscan"
        (_, "deterfox") if is_timing(row) => Some(true), // determinism defends same-context timing
        (_, "tor") if is_timing(row) => Some(false),
        (_, "chromezero") if is_timing(row) => Some(false),
        // CVE rows: only Chrome Zero's polyfill defends a subset
        // ("at the price of reduced functionalities") — the subset where a
        // real parallel worker thread is essential to the trigger.
        (cve, "chromezero") => Some(matches!(
            cve,
            "CVE-2018-5092"
                | "CVE-2014-1719"
                | "CVE-2014-1488"
                | "CVE-2013-5602"
                | "CVE-2013-1714"
                | "CVE-2011-1190"
        )),
        (_, "fuzzyfox" | "deterfox" | "tor") => Some(false), // timing-only defenses
        _ => Some(false),
    }
}

fn is_timing(row: &str) -> bool {
    !row.starts_with("CVE-")
}

fn main() {
    let trials = env_knob("JSK_TRIALS", 25);
    let columns = DefenseKind::table1_columns();
    let mut headers: Vec<&str> = vec!["Attack"];
    let labels: Vec<String> = columns.iter().map(|c| c.label().to_owned()).collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut report = Report::new(
        format!("Table I — Defenses against Web Concurrency Attacks ({trials} trials/secret; ✓ = defends, ✗ = vulnerable; [≠] marks deviation from the paper)"),
        &headers,
    );

    for attack in all_timing_attacks() {
        let mut cells = vec![format!("{} [{}]", attack.name(), attack.clock())];
        for &col in &columns {
            let result = run_timing_attack(attack.as_ref(), col, trials, 0xA77AC4);
            let defended = result.defended();
            let marker = match paper_expectation(attack.name(), col) {
                Some(expected) if expected != defended => " [≠]",
                _ => "",
            };
            cells.push(format!("{}{marker}", verdict_cell(defended)));
        }
        report.row(cells);
        eprintln!("  finished {}", attack.name());
    }

    for exploit in all_exploits() {
        let row_name = exploit.cve().id().to_owned();
        let mut cells = vec![row_name.clone()];
        for &col in &columns {
            let result = run_cve_attack(exploit.as_ref(), col, 0xC0FFEE);
            let defended = result.defended();
            let marker = match paper_expectation(&row_name, col) {
                Some(expected) if expected != defended => " [≠]",
                _ => "",
            };
            cells.push(format!("{}{marker}", verdict_cell(defended)));
        }
        report.row(cells);
        eprintln!("  finished {row_name}");
    }

    report.print();
    println!(
        "\nPaper ground truth: JSKernel defends every row; the legacy \
         browsers none; Fuzzyfox only Clock Edge (and its own Video/WebVTT \
         target); DeterFox all same-context timing rows but not Loopscan; \
         Tor none; Chrome Zero only the worker-parallelism CVEs via its \
         polyfill. Cells marked [≠] deviate — see EXPERIMENTS.md."
    );
}
