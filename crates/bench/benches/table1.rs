//! Table I — the defense matrix: 10 implicit-clock attacks + 12 CVEs,
//! evaluated against every defense column. Every cell is computed by
//! running the attack; the "expected" annotations are the paper's cells as
//! reconstructed from its prose (see DESIGN.md §4).
//!
//! Run with `cargo bench -p jsk-bench --bench table1`
//! (`JSK_TRIALS=n` controls trials per secret, default 25; `JSK_JOBS=n`
//! fans the 176 independent cells across worker threads — per-cell seeds
//! are fixed, so the output is bit-identical to a serial run).

use jsk_attacks::harness::{
    run_cve_attack_observed, run_timing_attack_observed, CveExploit, TimingAttack,
};
use jsk_attacks::{all_timing_attacks, cve_exploits::all_exploits};
use jsk_bench::record::{BenchReporter, CellRecord, Probe};
use jsk_bench::{env_knob, pool, verdict_cell, Report};
use jsk_defenses::registry::DefenseKind;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The paper's expected cell (true = defends), reconstructed from §IV prose
/// per (attack row, defense column).
fn paper_expectation(row: &str, defense: DefenseKind) -> Option<bool> {
    use DefenseKind as D;
    let legacy = matches!(d(defense), "legacy");
    fn d(k: DefenseKind) -> &'static str {
        match k {
            D::LegacyChrome | D::LegacyFirefox | D::LegacyEdge => "legacy",
            D::Fuzzyfox => "fuzzyfox",
            D::DeterFox => "deterfox",
            D::TorBrowser => "tor",
            D::ChromeZero => "chromezero",
            D::JsKernel | D::JsKernelFirefox | D::JsKernelEdge | D::JsKernelHardened => "jskernel",
        }
    }
    let name = d(defense);
    if name == "jskernel" {
        return Some(true); // JSKernel defends every row.
    }
    if legacy {
        return Some(false); // The legacy browsers defend nothing.
    }
    match (row, name) {
        // Timing rows, from §IV-A prose.
        ("Clock Edge", "fuzzyfox") => Some(true), // "Fuzzyfox does defend against the clock edge attack"
        // A fuzzy low-resolution clock also randomizes edges; the paper's
        // cell for Chrome Zero is not recoverable from prose.
        ("Clock Edge", "chromezero") => None,
        // Fuzzyfox's own video defense is not confirmed by the prose.
        ("Video/WebVTT", "fuzzyfox") => None,
        (_, "fuzzyfox") if is_timing(row) => Some(false),
        ("Loopscan", "deterfox") => Some(false), // "all other defenses are vulnerable to Loopscan"
        (_, "deterfox") if is_timing(row) => Some(true), // determinism defends same-context timing
        (_, "tor") if is_timing(row) => Some(false),
        (_, "chromezero") if is_timing(row) => Some(false),
        // CVE rows: only Chrome Zero's polyfill defends a subset
        // ("at the price of reduced functionalities") — the subset where a
        // real parallel worker thread is essential to the trigger.
        (cve, "chromezero") => Some(matches!(
            cve,
            "CVE-2018-5092"
                | "CVE-2014-1719"
                | "CVE-2014-1488"
                | "CVE-2013-5602"
                | "CVE-2013-1714"
                | "CVE-2011-1190"
        )),
        (_, "fuzzyfox" | "deterfox" | "tor") => Some(false), // timing-only defenses
        _ => Some(false),
    }
}

fn is_timing(row: &str) -> bool {
    !row.starts_with("CVE-")
}

/// One Table I row: a timing attack or a CVE exploit.
enum Row<'a> {
    Timing(&'a dyn TimingAttack),
    Cve(&'a dyn CveExploit),
}

impl Row<'_> {
    fn name(&self) -> String {
        match self {
            Row::Timing(a) => a.name().to_owned(),
            Row::Cve(e) => e.cve().id().to_owned(),
        }
    }

    fn display_label(&self) -> String {
        match self {
            Row::Timing(a) => format!("{} [{}]", a.name(), a.clock()),
            Row::Cve(e) => e.cve().id().to_owned(),
        }
    }
}

fn main() {
    let trials = env_knob("JSK_TRIALS", 25);
    let jobs = pool::jobs();
    let mut reporter = BenchReporter::new("table1");
    reporter.knob("JSK_TRIALS", trials);
    let columns = DefenseKind::table1_columns();
    let mut headers: Vec<&str> = vec!["Attack"];
    let labels: Vec<String> = columns.iter().map(|c| c.label().to_owned()).collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut report = Report::new(
        format!("Table I — Defenses against Web Concurrency Attacks ({trials} trials/secret; ✓ = defends, ✗ = vulnerable; [≠] marks deviation from the paper)"),
        &headers,
    );

    let attacks = all_timing_attacks();
    let exploits = all_exploits();
    let rows: Vec<Row<'_>> = attacks
        .iter()
        .map(|a| Row::Timing(a.as_ref()))
        .chain(exploits.iter().map(|e| Row::Cve(e.as_ref())))
        .collect();

    // Fan the 22×8 independent cells across the pool: each cell's seeds
    // depend only on its coordinates, so the matrix is schedule-invariant.
    let ncols = columns.len();
    let total = rows.len() * ncols;
    let done = AtomicUsize::new(0);
    let cells: Vec<(bool, Probe)> = pool::run_indexed(total, jobs, |i| {
        let (r, c) = (i / ncols, i % ncols);
        let col = columns[c];
        let mut probe = Probe::default();
        let defended = match rows[r] {
            Row::Timing(attack) => {
                run_timing_attack_observed(attack, col, trials, 0xA77AC4, &mut |b| {
                    probe.observe(b);
                })
                .defended()
            }
            Row::Cve(exploit) => {
                run_cve_attack_observed(exploit, col, 0xC0FFEE, &mut |b| probe.observe(b))
                    .defended()
            }
        };
        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!("  [{n}/{total}] {} × {}", rows[r].name(), col.label());
        (defended, probe)
    });

    for (r, row) in rows.iter().enumerate() {
        let mut text_cells = vec![row.display_label()];
        for (c, &col) in columns.iter().enumerate() {
            let (defended, probe) = &cells[r * ncols + c];
            let marker = match paper_expectation(&row.name(), col) {
                Some(expected) if expected != *defended => " [≠]",
                _ => "",
            };
            text_cells.push(format!("{}{marker}", verdict_cell(*defended)));
            reporter.cell(CellRecord::verdict(row.name(), col.label(), *defended));
            reporter.absorb(probe);
        }
        report.row(text_cells);
    }

    report.print();
    println!(
        "\nPaper ground truth: JSKernel defends every row; the legacy \
         browsers none; Fuzzyfox only Clock Edge (and its own Video/WebVTT \
         target); DeterFox all same-context timing rows but not Loopscan; \
         Tor none; Chrome Zero only the worker-parallelism CVEs via its \
         polyfill. Cells marked [≠] deviate — see EXPERIMENTS.md."
    );
    reporter.finish().expect("write bench JSON");
}
