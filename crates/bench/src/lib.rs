//! # jsk-bench — evaluation harnesses
//!
//! One benchmark target per table/figure of the paper (see DESIGN.md §4 for
//! the index), plus Criterion micro-benchmarks of the kernel's data
//! structures. Each harness prints the paper's reported values next to the
//! measured ones, and EXPERIMENTS.md records the comparison.
//!
//! Environment knobs: `JSK_TRIALS` (timing-attack trials per secret,
//! default 25), `JSK_SITES` (Figure 3 site count, default 500),
//! `JSK_COMPAT_SITES` (compatibility check population, default 100),
//! `JSK_JOBS` (bench worker threads, default: available parallelism),
//! `JSK_SHARDS` (serving shards for the `shards` target, default 4),
//! `JSK_HOTPATH_ROUNDS` (hot-path phase scaling, default 1 000 000),
//! `JSK_REGRESS_TOL` (regression-gate tolerance in percent, default 25),
//! `JSK_BENCH_OUT` (output root override for the JSON artifacts).
//!
//! Shared runtime: [`pool`] fans deterministic trials across worker
//! threads, [`record`] emits the machine-readable `BENCH_<target>.json`
//! perf artifacts, and [`regress`] gates fresh runs against the committed
//! `bench_results/baseline.json`.

use std::fmt::Write as _;

pub mod pool;
pub mod record;
pub mod regress;

// The knob parser moved to `jsk_sim::knob` so analysis crates can read
// environment knobs without a bench dependency; re-exported here so
// every existing `jsk_bench::env_knob` callsite keeps compiling.
pub use jsk_sim::knob::{env_knob, parse_knob};

/// A printable table with a title, column headers, and string rows.
#[derive(Debug, Clone)]
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates a report with headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Report {
        Report {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} ===", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a defended/vulnerable verdict cell like the paper's glyphs.
#[must_use]
pub fn verdict_cell(defended: bool) -> String {
    if defended {
        "✓".to_owned()
    } else {
        "✗".to_owned()
    }
}

/// Formats "measured (paper: expected)" cells.
#[must_use]
pub fn vs_paper(measured: f64, paper: f64, unit: &str) -> String {
    format!("{measured:.2}{unit} (paper {paper:.2}{unit})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned_rows() {
        let mut r = Report::new("T", &["a", "bbbb"]);
        r.row(vec!["x".into(), "y".into()]);
        r.row(vec!["long".into(), "z".into()]);
        let s = r.render();
        assert!(s.contains("=== T ==="));
        assert!(s.contains("long"));
        // Leading blank line + title + header + rule + 2 rows.
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn report_rejects_misaligned_rows() {
        let mut r = Report::new("T", &["a"]);
        r.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn knobs_parse_and_default() {
        assert_eq!(env_knob("JSK_DOES_NOT_EXIST", 7), 7);
    }

    #[test]
    fn knob_parses_valid_values() {
        assert_eq!(parse_knob("JSK_X", "12", 7), 12);
        assert_eq!(parse_knob("JSK_X", " 3 ", 7), 3, "whitespace tolerated");
    }

    #[test]
    fn knob_falls_back_on_garbage() {
        assert_eq!(parse_knob("JSK_X", "abc", 7), 7);
        assert_eq!(parse_knob("JSK_X", "", 7), 7);
        assert_eq!(parse_knob("JSK_X", "12.5", 7), 7);
    }

    #[test]
    fn knob_rejects_non_positive() {
        assert_eq!(parse_knob("JSK_X", "0", 7), 7);
        assert_eq!(parse_knob("JSK_X", "-3", 7), 7);
    }

    #[test]
    fn env_knob_reads_set_variables() {
        // Unique variable names per assertion: the test harness runs
        // tests concurrently and the environment is process-global.
        std::env::set_var("JSK_TEST_KNOB_VALID", "9");
        assert_eq!(env_knob("JSK_TEST_KNOB_VALID", 7), 9);
        std::env::set_var("JSK_TEST_KNOB_BAD", "abc");
        assert_eq!(env_knob("JSK_TEST_KNOB_BAD", 7), 7);
        std::env::set_var("JSK_TEST_KNOB_ZERO", "0");
        assert_eq!(env_knob("JSK_TEST_KNOB_ZERO", 7), 7);
    }

    #[test]
    fn cells_format() {
        assert_eq!(verdict_cell(true), "✓");
        assert_eq!(verdict_cell(false), "✗");
        assert!(vs_paper(1.5, 2.0, "ms").contains("paper 2.00ms"));
    }
}
