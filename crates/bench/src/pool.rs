//! A scoped thread-pool trial runner.
//!
//! Every simulated trial in the evaluation is an independent, seeded,
//! deterministic run, so the per-cell/per-site/per-trial loops of the
//! bench harnesses are embarrassingly parallel. [`run_indexed`] fans an
//! indexed work list across `JSK_JOBS` workers (default: available
//! parallelism) with [`std::thread::scope`] — no external thread-pool
//! dependency — and returns results **in index order**, so parallel output
//! is bit-identical to a serial run.
//!
//! Work is distributed dynamically through a shared atomic cursor (cells
//! vary wildly in cost: a Loopscan trial simulates far more events than a
//! clock-edge probe), but since every item's seed is a pure function of
//! its index, the schedule never influences the results.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of bench workers: the `JSK_JOBS` knob, defaulting to the
/// machine's available parallelism (1 if that cannot be determined).
#[must_use]
pub fn jobs() -> usize {
    let default = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    crate::env_knob("JSK_JOBS", default)
}

/// Number of serving shards for the sharded-fleet targets: the
/// `JSK_SHARDS` knob, default 4 (the chaos matrix's minimum — one shard
/// per fault class plus the baseline comparison). Invalid values warn and
/// fall back exactly like `JSK_JOBS`.
#[must_use]
pub fn shards() -> usize {
    crate::env_knob("JSK_SHARDS", 4)
}

/// Runs `f(0) .. f(n-1)` across `jobs` scoped worker threads and returns
/// the results in index order.
///
/// With `jobs <= 1` (or `n <= 1`) the work runs serially on the calling
/// thread; either way the returned vector is identical, because each item
/// depends only on its index.
///
/// # Panics
///
/// Propagates a panic from any worker (the first one joined).
pub fn run_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, v) in part {
            debug_assert!(slots[i].is_none(), "index {i} computed twice");
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_in_order() {
        let serial: Vec<usize> = (0..97).map(|i| i * i).collect();
        for jobs in [1, 2, 8, 200] {
            assert_eq!(run_indexed(97, jobs, |i| i * i), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_item_work() {
        assert_eq!(run_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn zero_jobs_is_clamped_to_serial() {
        assert_eq!(run_indexed(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let hits: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        let _ = run_indexed(50, 4, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn jobs_defaults_to_positive() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn shards_defaults_to_positive() {
        assert!(shards() >= 1);
    }

    #[test]
    fn invalid_shard_knob_falls_back_with_warning() {
        // `JSK_SHARDS` rides the same parse/fallback path as `JSK_JOBS`:
        // unparsable or non-positive values yield the default (the warning
        // itself goes to stderr).
        assert_eq!(crate::parse_knob("JSK_SHARDS", "abc", 4), 4);
        assert_eq!(crate::parse_knob("JSK_SHARDS", "0", 4), 4);
        assert_eq!(crate::parse_knob("JSK_SHARDS", "-3", 4), 4);
        assert_eq!(crate::parse_knob("JSK_SHARDS", "6", 4), 6);
    }
}
