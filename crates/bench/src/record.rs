//! Machine-readable bench records.
//!
//! Every harness feeds a [`BenchReporter`] alongside its human-readable
//! [`Report`](crate::Report) text. On [`BenchReporter::finish`] two JSON
//! files are written:
//!
//! * `bench_results/<target>.json` — the **deterministic** [`BenchRecord`]
//!   only (per-cell verdicts/values, merged kernel statistics, simulated
//!   step counts). This file is byte-identical across `JSK_JOBS` settings
//!   and across machines; the determinism test asserts it.
//! * `BENCH_<target>.json` at the repository top level — the full
//!   [`BenchRun`]: the record merged with the run's [`RunMeta`]
//!   (wall-clock, worker count, simulated events/sec throughput). This is
//!   the perf-trajectory artifact CI uploads and the regression checker
//!   consumes.
//!
//! Output lands under the repository root regardless of the working
//! directory (`cargo bench` runs harnesses from the package root);
//! `JSK_BENCH_OUT` overrides the root for sandboxed runs.

use jsk_browser::browser::Browser;
use jsk_core::stats::StatsSnapshot;
use jsk_core::JsKernel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Current schema version of all bench JSON files.
pub const SCHEMA_VERSION: u32 = 1;

/// One cell of a bench table: a row/column coordinate with a defense
/// verdict and/or a measured value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Row label (attack, site, test …).
    pub row: String,
    /// Column label (defense, configuration …).
    pub column: String,
    /// Defense verdict, when the cell is a ✓/✗ matrix cell
    /// (`true` = defends).
    #[serde(default)]
    pub verdict: Option<bool>,
    /// Measured value, when the cell is a magnitude.
    #[serde(default)]
    pub value: Option<f64>,
    /// Unit of `value` (`ms`, `%`, `steps` …).
    #[serde(default)]
    pub unit: Option<String>,
}

impl CellRecord {
    /// A verdict-only matrix cell.
    #[must_use]
    pub fn verdict(row: impl Into<String>, column: impl Into<String>, defended: bool) -> Self {
        CellRecord {
            row: row.into(),
            column: column.into(),
            verdict: Some(defended),
            value: None,
            unit: None,
        }
    }

    /// A measured-value cell.
    #[must_use]
    pub fn value(
        row: impl Into<String>,
        column: impl Into<String>,
        value: f64,
        unit: impl Into<String>,
    ) -> Self {
        CellRecord {
            row: row.into(),
            column: column.into(),
            verdict: None,
            value: Some(value),
            unit: Some(unit.into()),
        }
    }

    /// Coordinate key used by the regression checker.
    #[must_use]
    pub fn key(&self) -> (String, String) {
        (self.row.clone(), self.column.clone())
    }
}

/// Per-run observation harvested from simulated browsers: event-loop step
/// counts (every browser) and kernel statistics (browsers with a JSKernel
/// mediator installed). Probes are collected per work item inside pool
/// workers and merged in index order, so the totals are deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Probe {
    /// Browsers observed.
    pub browsers: u64,
    /// Total event-loop steps across observed browsers.
    pub steps: u64,
    /// Merged kernel statistics (zero for kernel-less configurations).
    pub stats: StatsSnapshot,
}

impl Probe {
    /// Harvests one browser's post-run state.
    pub fn observe(&mut self, browser: &Browser) {
        self.browsers += 1;
        self.steps += browser.steps();
        if let Some(kernel) = browser.mediator_as::<JsKernel>() {
            self.stats.merge(&kernel.stats().snapshot());
        }
    }

    /// Accumulates another probe.
    pub fn merge(&mut self, other: &Probe) {
        self.browsers += other.browsers;
        self.steps += other.steps;
        self.stats.merge(&other.stats);
    }
}

/// The deterministic portion of a bench run: identical across `JSK_JOBS`
/// settings and machines for fixed knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Schema version.
    pub schema: u32,
    /// Bench target name (`table1`, `fig3` …).
    pub target: String,
    /// The knobs the run was produced with (`JSK_TRIALS` …). Runs with
    /// different knobs are not comparable; the regression checker skips
    /// them.
    pub knobs: BTreeMap<String, usize>,
    /// Per-cell verdicts and values.
    pub cells: Vec<CellRecord>,
    /// Merged observation over all instrumented browsers.
    pub probe: Probe,
}

impl BenchRecord {
    /// Number of verdict cells.
    #[must_use]
    pub fn verdict_count(&self) -> usize {
        self.cells.iter().filter(|c| c.verdict.is_some()).count()
    }
}

/// Environment-dependent metadata of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMeta {
    /// Worker threads used (`JSK_JOBS`).
    pub jobs: usize,
    /// Wall-clock duration of the harness, milliseconds.
    pub wall_ms: f64,
    /// Simulated event-loop steps per wall-clock second (all browsers).
    pub steps_per_sec: f64,
    /// Simulated kernel events per wall-clock second (derived from
    /// [`StatsSnapshot::total_events`]; 0 when no kernel ran).
    pub kernel_events_per_sec: f64,
    /// Observability metrics harvested during the run (`None` when no
    /// observer was attached). Counters are deterministic; the regression
    /// checker compares them exactly when both sides carry a snapshot.
    #[serde(default)]
    pub observe: Option<jsk_observe::MetricsSnapshot>,
}

/// A full bench run: deterministic record + run metadata. This is the
/// shape of `BENCH_<target>.json` and of each entry in
/// `bench_results/baseline.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRun {
    /// The deterministic record.
    pub record: BenchRecord,
    /// The environment-dependent metadata.
    pub meta: RunMeta,
}

/// Resolves the repository root for bench output: `JSK_BENCH_OUT` when
/// set, else two levels above this crate's manifest.
#[must_use]
pub fn out_root() -> PathBuf {
    std::env::var_os("JSK_BENCH_OUT").map_or_else(
        || Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join(".."),
        PathBuf::from,
    )
}

/// Path of the deterministic record for `target`.
#[must_use]
pub fn record_path(root: &Path, target: &str) -> PathBuf {
    root.join("bench_results").join(format!("{target}.json"))
}

/// Path of the merged run artifact for `target`.
#[must_use]
pub fn run_path(root: &Path, target: &str) -> PathBuf {
    root.join(format!("BENCH_{target}.json"))
}

/// Collects cells and probes for one bench target and writes the JSON
/// artifacts on [`finish`](BenchReporter::finish).
#[derive(Debug)]
pub struct BenchReporter {
    record: BenchRecord,
    jobs: usize,
    start: Instant,
    observe: Option<jsk_observe::MetricsSnapshot>,
}

impl BenchReporter {
    /// Starts a reporter for `target`; the wall clock starts here, so
    /// construct it before the first trial.
    #[must_use]
    pub fn new(target: impl Into<String>) -> BenchReporter {
        BenchReporter {
            record: BenchRecord {
                schema: SCHEMA_VERSION,
                target: target.into(),
                knobs: BTreeMap::new(),
                cells: Vec::new(),
                probe: Probe::default(),
            },
            jobs: crate::pool::jobs(),
            start: Instant::now(),
            observe: None,
        }
    }

    /// Records a knob the run was produced with.
    pub fn knob(&mut self, name: impl Into<String>, value: usize) -> &mut Self {
        self.record.knobs.insert(name.into(), value);
        self
    }

    /// Overrides the recorded worker count (for tests pinning `jobs`).
    pub fn set_jobs(&mut self, jobs: usize) -> &mut Self {
        self.jobs = jobs;
        self
    }

    /// Appends a cell.
    pub fn cell(&mut self, cell: CellRecord) -> &mut Self {
        self.record.cells.push(cell);
        self
    }

    /// Merges a probe harvested from one work item.
    pub fn absorb(&mut self, probe: &Probe) -> &mut Self {
        self.record.probe.merge(probe);
        self
    }

    /// Merges an observability metrics snapshot into the run metadata.
    /// Merging is commutative, so worker snapshots may arrive in any
    /// order without perturbing the recorded totals.
    pub fn observe(&mut self, snapshot: &jsk_observe::MetricsSnapshot) -> &mut Self {
        match self.observe.as_mut() {
            Some(acc) => acc.merge(snapshot),
            None => self.observe = Some(snapshot.clone()),
        }
        self
    }

    /// Finalizes the run without writing files (used by tests).
    #[must_use]
    pub fn into_run(self) -> BenchRun {
        let wall = self.start.elapsed();
        let wall_secs = wall.as_secs_f64();
        let steps_per_sec = if wall_secs > 0.0 {
            self.record.probe.steps as f64 / wall_secs
        } else {
            0.0
        };
        let kernel_events_per_sec = self.record.probe.stats.events_per_sec(wall_secs);
        BenchRun {
            record: self.record,
            meta: RunMeta {
                jobs: self.jobs,
                wall_ms: wall_secs * 1e3,
                steps_per_sec,
                kernel_events_per_sec,
                observe: self.observe,
            },
        }
    }

    /// Finalizes the run, writes `bench_results/<target>.json` and
    /// `BENCH_<target>.json` under [`out_root`], and prints where they
    /// went plus a one-line throughput summary.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating `bench_results/` or
    /// writing either file.
    pub fn finish(self) -> io::Result<BenchRun> {
        let run = self.into_run();
        let root = out_root();
        std::fs::create_dir_all(root.join("bench_results"))?;
        let rec_path = record_path(&root, &run.record.target);
        let run_p = run_path(&root, &run.record.target);
        // Stable pretty JSON with a trailing newline: byte-identical
        // across jobs settings for the record file.
        let to_json = |v: String| {
            let mut s = v;
            s.push('\n');
            s
        };
        let rec_json = serde_json::to_string_pretty(&run.record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(&rec_path, to_json(rec_json))?;
        let run_json = serde_json::to_string_pretty(&run)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(&run_p, to_json(run_json))?;
        println!(
            "\n[bench-json] {} cells={} verdicts={} jobs={} wall={:.0}ms \
             sim-steps/s={:.0} kernel-events/s={:.0}",
            run.record.target,
            run.record.cells.len(),
            run.record.verdict_count(),
            run.meta.jobs,
            run.meta.wall_ms,
            run.meta.steps_per_sec,
            run.meta.kernel_events_per_sec,
        );
        println!(
            "[bench-json] wrote {} and {}",
            rec_path.display(),
            run_p.display()
        );
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_roundtrip_and_key() {
        let v = CellRecord::verdict("Loopscan", "JSKernel", true);
        assert_eq!(v.key(), ("Loopscan".to_owned(), "JSKernel".to_owned()));
        let m = CellRecord::value("amazon", "Chrome", 107.2, "ms");
        let json = serde_json::to_string(&m).unwrap();
        let back: CellRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn probe_merges() {
        let mut a = Probe {
            browsers: 1,
            steps: 10,
            ..Probe::default()
        };
        let b = Probe {
            browsers: 2,
            steps: 5,
            ..Probe::default()
        };
        a.merge(&b);
        assert_eq!(a.browsers, 3);
        assert_eq!(a.steps, 15);
    }

    #[test]
    fn reporter_builds_deterministic_record() {
        let mut r = BenchReporter::new("unit");
        r.knob("JSK_TRIALS", 3).set_jobs(4);
        r.cell(CellRecord::verdict("row", "col", false));
        r.absorb(&Probe {
            browsers: 1,
            steps: 100,
            ..Probe::default()
        });
        let run = r.into_run();
        assert_eq!(run.record.target, "unit");
        assert_eq!(run.record.knobs["JSK_TRIALS"], 3);
        assert_eq!(run.meta.jobs, 4);
        assert_eq!(run.record.verdict_count(), 1);
        assert_eq!(run.record.probe.steps, 100);
        let json = serde_json::to_string(&run).unwrap();
        let back: BenchRun = serde_json::from_str(&json).unwrap();
        assert_eq!(run, back);
    }

    #[test]
    fn probe_observes_kernel_stats() {
        use jsk_defenses::registry::DefenseKind;
        let mut browser = DefenseKind::JsKernel.build(7);
        browser.boot(|scope| {
            scope.set_timeout(1.0, jsk_browser::task::cb(|_, _| {}));
        });
        browser.run_until_idle();
        let mut probe = Probe::default();
        probe.observe(&browser);
        assert_eq!(probe.browsers, 1);
        assert!(probe.steps > 0);
        assert!(probe.stats.total_events() > 0, "{:?}", probe.stats);

        // A legacy browser contributes steps but no kernel stats.
        let mut legacy = DefenseKind::LegacyChrome.build(7);
        legacy.boot(|scope| {
            scope.set_timeout(1.0, jsk_browser::task::cb(|_, _| {}));
        });
        legacy.run_until_idle();
        let mut lp = Probe::default();
        lp.observe(&legacy);
        assert!(lp.steps > 0);
        assert_eq!(lp.stats.total_events(), 0);
    }

    #[test]
    fn paths_are_rooted() {
        let root = Path::new("/tmp/x");
        assert_eq!(
            record_path(root, "table1"),
            Path::new("/tmp/x/bench_results/table1.json")
        );
        assert_eq!(
            run_path(root, "table1"),
            Path::new("/tmp/x/BENCH_table1.json")
        );
    }
}
