//! The perf/correctness regression gate.
//!
//! A committed `bench_results/baseline.json` maps every bench target to
//! the [`BenchRun`] it produced at the CI smoke knobs. The `regress` bench
//! target re-reads the fresh `BENCH_<target>.json` files and diffs them
//! against the baseline:
//!
//! * a **defense-matrix verdict flip** (a ✓ becoming ✗ or vice versa) is
//!   always fatal — that is the paper's Table I changing under your feet;
//! * a **throughput regression** beyond the tolerance (default 25 %,
//!   `JSK_REGRESS_TOL` percent overrides — CI uses a wider band because
//!   wall-clock throughput is machine-dependent) is fatal;
//! * runs produced with different knobs (`JSK_TRIALS` …) are incomparable
//!   and are skipped with a warning rather than diffed — a 3-trial verdict
//!   is not a 25-trial verdict.
//!
//! Regenerate the baseline with `JSK_REGRESS_WRITE=1` (see EXPERIMENTS.md).

use crate::record::{BenchRun, SCHEMA_VERSION};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Every JSON-emitting bench target, in run order.
pub const ALL_TARGETS: [&str; 16] = [
    "table1",
    "table2",
    "table3",
    "fig2",
    "fig3",
    "dromaeo",
    "workerbench",
    "compat",
    "codepen",
    "ablation",
    "micro",
    "hotpath",
    "shards",
    "fuzz",
    "prove",
    "serve",
];

/// The committed baseline: one [`BenchRun`] per target.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    /// Schema version.
    pub schema: u32,
    /// Target name → the run it is held to.
    pub targets: BTreeMap<String, BenchRun>,
}

impl Baseline {
    /// An empty baseline at the current schema.
    #[must_use]
    pub fn new() -> Baseline {
        Baseline {
            schema: SCHEMA_VERSION,
            targets: BTreeMap::new(),
        }
    }
}

/// One comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Target the finding is about.
    pub target: String,
    /// Whether this finding fails the gate.
    pub fatal: bool,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.fatal { "FAIL" } else { "note" };
        write!(f, "[{tag}] {}: {}", self.target, self.message)
    }
}

impl Finding {
    fn fatal(target: &str, message: String) -> Finding {
        Finding {
            target: target.to_owned(),
            fatal: true,
            message,
        }
    }

    fn note(target: &str, message: String) -> Finding {
        Finding {
            target: target.to_owned(),
            fatal: false,
            message,
        }
    }
}

fn glyph(defended: bool) -> &'static str {
    if defended {
        "✓ (defends)"
    } else {
        "✗ (vulnerable)"
    }
}

/// Minimum baseline wall-clock (ms) for the throughput gate to engage: a
/// sub-quarter-second run measures scheduler jitter, not throughput, so
/// only the substantial targets (table1, ablation, …) are throughput-gated.
pub const MIN_THROUGHPUT_WALL_MS: f64 = 250.0;

/// The throughput tolerance in percent: `JSK_REGRESS_TOL`, default 25.
#[must_use]
pub fn tolerance_pct() -> f64 {
    crate::env_knob("JSK_REGRESS_TOL", 25) as f64
}

/// Diffs a fresh run against its baseline. `tol_pct` is the allowed
/// throughput (and measured-value) drop in percent.
#[must_use]
pub fn compare_runs(baseline: &BenchRun, fresh: &BenchRun, tol_pct: f64) -> Vec<Finding> {
    let target = baseline.record.target.as_str();
    let mut findings = Vec::new();

    if baseline.record.knobs != fresh.record.knobs {
        findings.push(Finding::note(
            target,
            format!(
                "knob mismatch (baseline {:?} vs fresh {:?}); runs are \
                 incomparable, skipping",
                baseline.record.knobs, fresh.record.knobs
            ),
        ));
        return findings;
    }

    let fresh_cells: BTreeMap<(String, String), &crate::record::CellRecord> =
        fresh.record.cells.iter().map(|c| (c.key(), c)).collect();

    for cell in &baseline.record.cells {
        let Some(expected) = cell.verdict else {
            // Value cells: deterministic under fixed knobs, so drift means
            // simulated behavior changed — surface it, but only the verdict
            // matrix gates.
            if let (Some(base_v), Some(f)) = (cell.value, fresh_cells.get(&cell.key())) {
                if let Some(fresh_v) = f.value {
                    let scale = base_v.abs().max(1e-9);
                    let drift = (fresh_v - base_v).abs() / scale * 100.0;
                    if drift > tol_pct {
                        findings.push(Finding::note(
                            target,
                            format!(
                                "value drift at ({}, {}): {base_v:.3} -> {fresh_v:.3} \
                                 ({drift:.1}% > {tol_pct:.0}%)",
                                cell.row, cell.column
                            ),
                        ));
                    }
                }
            }
            continue;
        };
        match fresh_cells.get(&cell.key()) {
            None => findings.push(Finding::fatal(
                target,
                format!(
                    "verdict cell ({}, {}) missing from fresh run",
                    cell.row, cell.column
                ),
            )),
            Some(f) => match f.verdict {
                Some(got) if got != expected => findings.push(Finding::fatal(
                    target,
                    format!(
                        "verdict flip at ({}, {}): baseline {} -> fresh {}",
                        cell.row,
                        cell.column,
                        glyph(expected),
                        glyph(got)
                    ),
                )),
                Some(_) => {}
                None => findings.push(Finding::fatal(
                    target,
                    format!(
                        "cell ({}, {}) lost its verdict in the fresh run",
                        cell.row, cell.column
                    ),
                )),
            },
        }
    }

    let baseline_keys: std::collections::BTreeSet<_> = baseline
        .record
        .cells
        .iter()
        .map(crate::record::CellRecord::key)
        .collect();
    let new_cells = fresh
        .record
        .cells
        .iter()
        .filter(|c| c.verdict.is_some() && !baseline_keys.contains(&c.key()))
        .count();
    if new_cells > 0 {
        findings.push(Finding::note(
            target,
            format!("{new_cells} verdict cell(s) not in baseline — regenerate it"),
        ));
    }

    compare_metrics(target, baseline, fresh, &mut findings);

    if baseline.meta.wall_ms < MIN_THROUGHPUT_WALL_MS {
        // A run this short measures scheduler jitter, not throughput.
        return findings;
    }
    for (name, base_tp, fresh_tp) in [
        (
            "sim-steps/s",
            baseline.meta.steps_per_sec,
            fresh.meta.steps_per_sec,
        ),
        (
            "kernel-events/s",
            baseline.meta.kernel_events_per_sec,
            fresh.meta.kernel_events_per_sec,
        ),
    ] {
        if base_tp > 0.0 && fresh_tp < base_tp * (1.0 - tol_pct / 100.0) {
            findings.push(Finding::fatal(
                target,
                format!(
                    "throughput regression ({name}): {base_tp:.0} -> {fresh_tp:.0} \
                     ({:+.1}% < -{tol_pct:.0}% tolerance)",
                    (fresh_tp / base_tp - 1.0) * 100.0
                ),
            ));
        }
    }

    findings
}

/// Diffs the observability counters. The knobs already matched by the
/// time this runs, so the counters are deterministic: any drift means
/// simulated kernel behavior changed, which is fatal — the counter gate
/// is the regression check the tracing layer buys us.
fn compare_metrics(target: &str, baseline: &BenchRun, fresh: &BenchRun, out: &mut Vec<Finding>) {
    match (&baseline.meta.observe, &fresh.meta.observe) {
        (Some(base), Some(new)) => {
            for (name, base_v) in &base.counters {
                match new.counters.get(name) {
                    None => out.push(Finding::fatal(
                        target,
                        format!("metric counter `{name}` missing from fresh run"),
                    )),
                    Some(new_v) if new_v != base_v => out.push(Finding::fatal(
                        target,
                        format!("metric counter drift `{name}`: {base_v} -> {new_v}"),
                    )),
                    Some(_) => {}
                }
            }
            for name in new.counters.keys() {
                if !base.counters.contains_key(name) {
                    out.push(Finding::note(
                        target,
                        format!("metric counter `{name}` not in baseline — regenerate it"),
                    ));
                }
            }
        }
        (Some(_), None) => out.push(Finding::note(
            target,
            "baseline carries observe metrics but fresh run has none \
             (observe feature off?)"
                .to_owned(),
        )),
        (None, Some(_)) => out.push(Finding::note(
            target,
            "fresh run carries observe metrics but baseline has none — \
             regenerate the baseline to gate them"
                .to_owned(),
        )),
        (None, None) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BenchRecord, CellRecord, Probe, RunMeta};

    fn run(cells: Vec<CellRecord>, steps_per_sec: f64) -> BenchRun {
        BenchRun {
            record: BenchRecord {
                schema: SCHEMA_VERSION,
                target: "t".into(),
                knobs: [("JSK_TRIALS".to_owned(), 3)].into_iter().collect(),
                cells,
                probe: Probe::default(),
            },
            meta: RunMeta {
                jobs: 1,
                wall_ms: 1000.0,
                steps_per_sec,
                kernel_events_per_sec: 0.0,
                observe: None,
            },
        }
    }

    #[test]
    fn identical_runs_pass() {
        let a = run(vec![CellRecord::verdict("r", "c", true)], 1000.0);
        assert!(compare_runs(&a, &a.clone(), 25.0).is_empty());
    }

    #[test]
    fn verdict_flip_is_fatal() {
        let base = run(vec![CellRecord::verdict("r", "c", true)], 1000.0);
        let fresh = run(vec![CellRecord::verdict("r", "c", false)], 1000.0);
        let f = compare_runs(&base, &fresh, 25.0);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].fatal);
        assert!(f[0].message.contains("verdict flip"), "{}", f[0].message);
    }

    #[test]
    fn missing_verdict_cell_is_fatal() {
        let base = run(vec![CellRecord::verdict("r", "c", true)], 1000.0);
        let fresh = run(vec![], 1000.0);
        let f = compare_runs(&base, &fresh, 25.0);
        assert!(f.iter().any(|x| x.fatal && x.message.contains("missing")));
    }

    #[test]
    fn throughput_regression_gates_but_speedup_passes() {
        let base = run(vec![], 1000.0);
        let slow = run(vec![], 700.0);
        let f = compare_runs(&base, &slow, 25.0);
        assert!(f
            .iter()
            .any(|x| x.fatal && x.message.contains("throughput")));
        let fast = run(vec![], 4000.0);
        assert!(compare_runs(&base, &fast, 25.0).is_empty());
        let within = run(vec![], 800.0);
        assert!(compare_runs(&base, &within, 25.0).is_empty());
    }

    #[test]
    fn tiny_runs_skip_the_throughput_gate() {
        let mut base = run(vec![], 1000.0);
        base.meta.wall_ms = 5.0; // measures jitter, not throughput
        let slow = run(vec![], 10.0);
        assert!(compare_runs(&base, &slow, 25.0).is_empty());
    }

    #[test]
    fn knob_mismatch_skips_comparison() {
        let base = run(vec![CellRecord::verdict("r", "c", true)], 1000.0);
        let mut fresh = run(vec![CellRecord::verdict("r", "c", false)], 10.0);
        fresh.record.knobs.insert("JSK_TRIALS".into(), 25);
        let f = compare_runs(&base, &fresh, 25.0);
        assert_eq!(f.len(), 1);
        assert!(!f[0].fatal);
        assert!(f[0].message.contains("knob mismatch"));
    }

    #[test]
    fn value_drift_is_a_note_not_a_failure() {
        let base = run(vec![CellRecord::value("r", "c", 100.0, "ms")], 1000.0);
        let fresh = run(vec![CellRecord::value("r", "c", 160.0, "ms")], 1000.0);
        let f = compare_runs(&base, &fresh, 25.0);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(!f[0].fatal);
        assert!(f[0].message.contains("value drift"));
    }

    fn metrics(pairs: &[(&str, u64)]) -> jsk_observe::MetricsSnapshot {
        let mut reg = jsk_observe::MetricsRegistry::default();
        let mut strings = jsk_observe::Interner::default();
        for (name, v) in pairs {
            reg.counter_add(strings.intern(name), *v);
        }
        reg.snapshot(&strings)
    }

    #[test]
    fn metric_counter_drift_is_fatal() {
        let mut base = run(vec![], 1000.0);
        base.meta.observe = Some(metrics(&[("kernel.dispatched", 100)]));
        let mut fresh = base.clone();
        fresh.meta.observe = Some(metrics(&[("kernel.dispatched", 99)]));
        let f = compare_runs(&base, &fresh, 25.0);
        assert!(
            f.iter()
                .any(|x| x.fatal && x.message.contains("metric counter drift")),
            "{f:?}"
        );
        // Identical snapshots pass clean.
        assert!(compare_runs(&base, &base.clone(), 25.0).is_empty());
    }

    #[test]
    fn missing_metric_counter_is_fatal_but_new_one_is_a_note() {
        let mut base = run(vec![], 1000.0);
        base.meta.observe = Some(metrics(&[("kernel.dispatched", 100)]));
        let mut fresh = base.clone();
        fresh.meta.observe = Some(metrics(&[("kernel.registered", 100)]));
        let f = compare_runs(&base, &fresh, 25.0);
        assert!(
            f.iter().any(|x| x.fatal && x.message.contains("missing")),
            "{f:?}"
        );
        assert!(
            f.iter()
                .any(|x| !x.fatal && x.message.contains("not in baseline")),
            "{f:?}"
        );
    }

    #[test]
    fn one_sided_metrics_are_notes() {
        let mut base = run(vec![], 1000.0);
        base.meta.observe = Some(metrics(&[("kernel.dispatched", 100)]));
        let fresh = run(vec![], 1000.0);
        let f = compare_runs(&base, &fresh, 25.0);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(!f[0].fatal);
        let g = compare_runs(&fresh, &base, 25.0);
        assert_eq!(g.len(), 1, "{g:?}");
        assert!(!g[0].fatal && g[0].message.contains("regenerate"));
    }

    #[test]
    fn baseline_roundtrips() {
        let mut b = Baseline::new();
        b.targets.insert(
            "t".into(),
            run(vec![CellRecord::verdict("r", "c", true)], 1.0),
        );
        let json = serde_json::to_string_pretty(&b).unwrap();
        let back: Baseline = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
