//! The hotpath bench knobs (`JSK_HOTPATH_ROUNDS`, `JSK_HOTPATH_STEADY`)
//! go through the shared `jsk_sim` knob parser, so an invalid value falls
//! back to the default with a warning instead of silently skewing the
//! committed baseline. These tests pin the exact fallback semantics the
//! bench binary sees.

use jsk_bench::{env_knob, parse_knob};

#[test]
fn hotpath_knobs_fall_back_on_invalid_values() {
    // The defaults the hotpath bench passes for each knob.
    assert_eq!(
        parse_knob("JSK_HOTPATH_ROUNDS", "nope", 1_000_000),
        1_000_000
    );
    assert_eq!(parse_knob("JSK_HOTPATH_ROUNDS", "0", 1_000_000), 1_000_000);
    assert_eq!(parse_knob("JSK_HOTPATH_STEADY", "-4", 250_000), 250_000);
    assert_eq!(parse_knob("JSK_HOTPATH_STEADY", "1e6", 250_000), 250_000);
}

#[test]
fn hotpath_knobs_accept_positive_integers() {
    assert_eq!(parse_knob("JSK_HOTPATH_ROUNDS", "5000", 1_000_000), 5_000);
    assert_eq!(parse_knob("JSK_HOTPATH_STEADY", " 250000 ", 1), 250_000);
}

#[test]
fn hotpath_knobs_read_the_environment() {
    // Unique names: the environment is process-global and tests run
    // concurrently.
    std::env::set_var("JSK_HOTPATH_STEADY_TEST", "123");
    assert_eq!(env_knob("JSK_HOTPATH_STEADY_TEST", 250_000), 123);
    assert_eq!(env_knob("JSK_HOTPATH_STEADY_UNSET", 250_000), 250_000);
}
