//! Parallelism must not change results: a bench cell evaluated with
//! `JSK_JOBS=1` and `JSK_JOBS=8` must produce identical [`BenchRecord`]s —
//! same verdicts, same kernel-stat counters, byte-identical JSON. This is
//! the contract that lets the JSON artifacts double as regression
//! baselines regardless of the machine's core count.

use jsk_attacks::harness::run_timing_attack_observed;
use jsk_attacks::{all_timing_attacks, CacheAttack};
use jsk_bench::pool;
use jsk_bench::record::{BenchRecord, BenchReporter, CellRecord, Probe};
use jsk_defenses::registry::DefenseKind;

const COLUMNS: [DefenseKind; 3] = [
    DefenseKind::LegacyChrome,
    DefenseKind::JsKernel,
    DefenseKind::DeterFox,
];

/// Builds a miniature table1-style record with the given worker count,
/// exactly the way the bench targets do it: fan cells through the pool,
/// then assemble in index order.
fn build_record(jobs: usize, trials: usize) -> BenchRecord {
    let mut reporter = BenchReporter::new("determinism-test");
    reporter.knob("JSK_TRIALS", trials).set_jobs(jobs);
    let cells: Vec<(bool, Probe)> = pool::run_indexed(COLUMNS.len(), jobs, |i| {
        let mut probe = Probe::default();
        let result =
            run_timing_attack_observed(&CacheAttack, COLUMNS[i], trials, 0xA77AC4, &mut |b| {
                probe.observe(b);
            });
        (result.defended(), probe)
    });
    for (i, (defended, probe)) in cells.iter().enumerate() {
        reporter.cell(CellRecord::verdict(
            "Cache Attack",
            COLUMNS[i].label(),
            *defended,
        ));
        reporter.absorb(probe);
    }
    reporter.into_run().record
}

#[test]
fn parallel_record_is_bit_identical_to_serial() {
    let serial = build_record(1, 3);
    let parallel = build_record(8, 3);
    assert_eq!(
        serial, parallel,
        "JSK_JOBS=8 must reproduce JSK_JOBS=1 exactly"
    );
    // The deterministic record file must match byte-for-byte.
    let a = serde_json::to_string_pretty(&serial).unwrap();
    let b = serde_json::to_string_pretty(&parallel).unwrap();
    assert_eq!(a, b);
    // And it must actually contain work: verdicts and kernel counters.
    assert_eq!(serial.verdict_count(), COLUMNS.len());
    assert!(serial.probe.steps > 0);
    assert!(
        serial.probe.stats.total_events() > 0,
        "the JSKernel column must contribute kernel stats: {:?}",
        serial.probe.stats
    );
}

#[test]
fn repeated_serial_runs_are_stable() {
    // Guards the premise of the whole scheme: the simulation itself is
    // deterministic for fixed seeds, independent of wall-clock.
    assert_eq!(build_record(1, 2), build_record(1, 2));
}

/// Analysis reports for the whole corpus (raw + deterministic-kernel mode
/// per program), fanned through the pool at the given width.
fn corpus_reports(jobs: usize) -> Vec<String> {
    use jsk_analyze::corpus::{program_names, run_program, CorpusMode};
    use jsk_core::policy::deterministic_policy;

    let names = program_names();
    let kernel = CorpusMode::Kernel(deterministic_policy());
    let modes: Vec<(String, CorpusMode)> = names
        .iter()
        .flat_map(|n| [(n.clone(), CorpusMode::Raw), (n.clone(), kernel.clone())])
        .collect();
    pool::run_indexed(modes.len(), jobs, |i| {
        let (name, mode) = &modes[i];
        run_program(name, mode, 7).to_json()
    })
}

#[test]
fn analysis_reports_are_bit_identical_under_pool() {
    // The analyzer rides the same contract as the bench records: the race
    // report for every corpus program must not depend on JSK_JOBS.
    let serial = corpus_reports(1);
    let parallel = corpus_reports(8);
    assert_eq!(serial, parallel, "JSK_JOBS must not change analysis output");
    assert_eq!(serial.len(), 26); // 13 programs × {raw, kernel}
    assert!(serial.iter().any(|json| json.contains("\"races\": [\n")));
}

/// Full serialized traces — symbol table included — from kernel browsers
/// fanned through the pool. Interner symbols are assigned by first
/// occurrence in record order, so worker width must not reassign them.
fn worker_page_traces(jobs: usize) -> Vec<String> {
    pool::run_indexed(4, jobs, |i| {
        let mut browser = DefenseKind::JsKernel.build(i as u64 + 1);
        browser.boot(|scope| {
            let _w = scope.create_worker(
                "worker.js",
                jsk_browser::task::worker_script(|scope| {
                    scope.fetch(
                        "https://a.example/x",
                        None,
                        jsk_browser::task::cb(|_, _| {}),
                    );
                    scope.post_message(jsk_browser::value::JsValue::from("done"));
                }),
            );
            scope.fetch(
                "https://b.example/y",
                None,
                jsk_browser::task::cb(|_, _| {}),
            );
        });
        browser.run_until_idle();
        serde_json::to_string_pretty(browser.trace()).expect("trace serializes")
    })
}

#[test]
fn trace_symbol_tables_identical_under_pool() {
    let serial = worker_page_traces(1);
    let parallel = worker_page_traces(8);
    assert_eq!(
        serial, parallel,
        "JSK_JOBS must not change interned traces or their symbol tables"
    );
    assert!(
        serial[0].contains("worker.js") && serial[0].contains("https://a.example/x"),
        "the symbol table must travel with the trace"
    );
}

#[test]
fn fuzz_reports_are_bit_identical_under_pool() {
    // The fuzzer rides the same pool contract as everything above: a
    // whole coverage-guided run — corpus evolution, minimization, report
    // serialization — must not depend on JSK_JOBS.
    use jsk_fuzz::{run_fuzz, FuzzConfig};
    let cfg = |jobs| FuzzConfig {
        iters: 16,
        seed: 9,
        jobs,
        mutations: true,
    };
    let serial = run_fuzz(&cfg(1)).to_json();
    let parallel = run_fuzz(&cfg(8)).to_json();
    assert_eq!(serial, parallel, "JSK_JOBS must not change the fuzz report");
    assert!(
        serial.contains("\"recall\""),
        "report must carry recall data"
    );
}

/// Every designated (policy, pattern) proof row, fanned through the pool
/// at the given width and serialized. The rows are independent searches,
/// so worker count must not change a single byte.
fn prove_rows(jobs: usize) -> Vec<String> {
    use jsk_analyze::prove::{prove_policy, DEFAULT_PROVE_DEPTH};
    use jsk_core::policy::{attack_models, cve, deterministic_policy, families, PolicySpec};
    let mut policies: Vec<PolicySpec> = cve::all_cve_policies();
    policies.push(deterministic_policy());
    policies.extend(families::all_family_policies());
    let models = attack_models();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (mi, model) in models.iter().enumerate() {
        for name in model.defeated_by {
            let pi = policies
                .iter()
                .position(|p| p.name == *name)
                .expect("designated policy exists");
            pairs.push((mi, pi));
        }
    }
    pool::run_indexed(pairs.len(), jobs, |i| {
        let (mi, pi) = pairs[i];
        serde_json::to_string_pretty(&prove_policy(
            &policies[pi],
            &models[mi],
            DEFAULT_PROVE_DEPTH,
        ))
        .expect("proof row serializes")
    })
}

#[test]
fn prover_rows_are_bit_identical_under_pool() {
    let serial = prove_rows(1);
    let parallel = prove_rows(8);
    assert_eq!(serial, parallel, "JSK_JOBS must not change proof rows");
    assert_eq!(serial.len(), 15, "the full designated matrix");
    assert!(serial.iter().all(|json| json.contains("\"proved\"")));
}

/// Predictive reports for every seed schedule, fanned through the pool.
fn predict_reports(jobs: usize) -> Vec<String> {
    use jsk_analyze::predict::predict_schedule;
    use jsk_workloads::schedule::seed_schedules;
    let seeds = seed_schedules();
    pool::run_indexed(seeds.len(), jobs, |i| predict_schedule(&seeds[i]).to_json())
}

#[test]
fn predictive_reports_are_bit_identical_under_pool() {
    let serial = predict_reports(1);
    let parallel = predict_reports(8);
    assert_eq!(
        serial, parallel,
        "JSK_JOBS must not change predictive findings"
    );
    assert_eq!(serial.len(), 15);
    // And the serial pass must agree with the corpus driver's own output.
    let corpus: Vec<String> = jsk_analyze::predict::predict_corpus()
        .iter()
        .map(jsk_analyze::predict::PredictReport::to_json)
        .collect();
    assert_eq!(serial, corpus);
}

#[test]
fn timing_attack_results_identical_under_pool() {
    // The full attack-result payload (both sample vectors), not just the
    // verdict, must be schedule-invariant.
    let attacks = all_timing_attacks();
    let attack = attacks.first().expect("suite non-empty").as_ref();
    let serial = pool::run_indexed(COLUMNS.len(), 1, |i| {
        run_timing_attack_observed(attack, COLUMNS[i], 2, 7, &mut |_| {})
    });
    let parallel = pool::run_indexed(COLUMNS.len(), 8, |i| {
        run_timing_attack_observed(attack, COLUMNS[i], 2, 7, &mut |_| {})
    });
    assert_eq!(serial, parallel);
}

/// Fast-subset corpus outcomes from a sharded serve, flattened and sorted
/// so reports from different shard counts are comparable.
fn fast_corpus_outcomes(shards: usize, workers: usize) -> Vec<(String, u64, String)> {
    use jsk_shard::{corpus_job, ServeConfig, ShardPool};
    // The cheap programs only (three exploits simulate minutes of virtual
    // time; the release-profile `shards` bench target covers those).
    const FAST: [usize; 8] = [1, 2, 4, 5, 6, 8, 9, 10];
    let jobs: Vec<_> = FAST.iter().map(|&k| corpus_job(k, 5)).collect();
    let report = ShardPool::new(ServeConfig::new(shards, workers)).serve(jobs);
    let mut rows: Vec<(String, u64, String)> = report
        .shards
        .iter()
        .flat_map(|sh| {
            sh.sites.iter().map(|s| {
                (
                    s.site.clone(),
                    s.seed,
                    serde_json::to_string(&s.outcome).expect("outcome serializes"),
                )
            })
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn served_verdicts_are_shard_count_invariant() {
    // Site seeds are a pure function of the corpus index — never of shard
    // placement — so resharding a fleet (or changing `JSK_SHARDS`) must
    // not change a single served verdict or its measurement detail.
    let one = fast_corpus_outcomes(1, 1);
    let four = fast_corpus_outcomes(4, 8);
    assert_eq!(one, four, "JSK_SHARDS must not change served outcomes");
    assert_eq!(one.len(), 8);
    for (site, _, outcome) in &one {
        assert!(
            outcome.contains("\"defended\":true"),
            "{site} lost its defense: {outcome}"
        );
    }
}
