//! `/metrics`-style text exposition of a [`MetricsSnapshot`].
//!
//! A long-running server cannot hand every scrape a JSON blob and ask the
//! operator to diff `BTreeMap`s; it needs the one-line-per-series text
//! format every metrics stack already speaks. This module renders a
//! snapshot in that shape:
//!
//! ```text
//! # TYPE site.runs counter
//! site.runs{policy="JSKernel",shard="0",site="CVE-2018-5092"} 1
//! ```
//!
//! Series names arrive with **appended label groups** — labelling a
//! snapshot twice nests (`name{site=x}{shard=0}`, see
//! [`MetricsSnapshot::with_label`]) — and the exposition normalizes every
//! group chain into a single label set with keys sorted and values
//! quoted. Counters render as one line; gauges render their last value
//! plus a `_max` high-water series; histograms render cumulative
//! `_bucket{le=...}` lines over the registry's power-of-two buckets plus
//! `_sum`, `_count`, and `_max`.
//!
//! The output is a pure function of the snapshot: maps are `BTreeMap`s,
//! label keys are sorted, and nothing reads a clock — so two scrapes of
//! equal snapshots are byte-identical, which is how the serve-layer tests
//! diff a wire-scraped page against a directly-harvested one.

use crate::metrics::{base_name, MetricsSnapshot, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;

/// Splits a series name into its base name and a flattened, sorted label
/// list: `"site.runs{site=a,policy=b}{shard=0}"` becomes
/// `("site.runs", [(policy,b), (shard,0), (site,a)])`. Malformed label
/// text (no `=`) is kept as a valueless pair rather than dropped, so no
/// series can hide from the page.
#[must_use]
pub fn split_labels(name: &str) -> (String, Vec<(String, String)>) {
    let base = base_name(name).to_owned();
    let mut labels = Vec::new();
    for group in name[base.len()..].split('}') {
        let group = group.trim_start_matches('{');
        if group.is_empty() {
            continue;
        }
        for pair in group.split(',') {
            match pair.split_once('=') {
                Some((k, v)) => labels.push((k.to_owned(), v.to_owned())),
                None => labels.push((pair.to_owned(), String::new())),
            }
        }
    }
    labels.sort();
    (base, labels)
}

/// Renders a normalized label set, `le` (when given) first-class among
/// the sorted keys: `{le="7",shard="0"}`. Empty sets render as nothing.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    let mut pairs: Vec<(String, String)> = labels.to_vec();
    if let Some(bound) = le {
        pairs.push(("le".to_owned(), bound.to_owned()));
        pairs.sort();
    }
    if pairs.is_empty() {
        return String::new();
    }
    let body = pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{body}}}")
}

/// Emits a `# TYPE` header when `base` differs from the previous series'
/// base name, so each metric family is introduced exactly once per
/// contiguous run.
fn type_header(out: &mut String, last: &mut String, base: &str, kind: &str) {
    if last != base {
        let _ = writeln!(out, "# TYPE {base} {kind}");
        last.clear();
        last.push_str(base);
    }
}

/// The inclusive upper bound of histogram bucket `i` in the registry's
/// power-of-two scheme (`v < 2^i`), rendered for a `le` label; the final
/// overflow bucket is `+Inf`.
fn bucket_bound(i: usize) -> String {
    if i + 1 >= HISTOGRAM_BUCKETS {
        "+Inf".to_owned()
    } else {
        ((1u64 << i) - 1).to_string()
    }
}

/// Renders the snapshot as a `/metrics`-style text page. See the module
/// docs for the exact shape; the page always ends with a newline and an
/// empty snapshot renders to the bare header line.
#[must_use]
pub fn render_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("# jsk-observe text exposition v1\n");
    let mut last = String::new();
    for (name, value) in &snap.counters {
        let (base, labels) = split_labels(name);
        type_header(&mut out, &mut last, &base, "counter");
        let _ = writeln!(out, "{base}{} {value}", render_labels(&labels, None));
    }
    last.clear();
    for (name, g) in &snap.gauges {
        let (base, labels) = split_labels(name);
        type_header(&mut out, &mut last, &base, "gauge");
        let set = render_labels(&labels, None);
        let _ = writeln!(out, "{base}{set} {}", g.last);
        let _ = writeln!(out, "{base}_max{set} {}", g.max);
    }
    last.clear();
    for (name, h) in &snap.histograms {
        let (base, labels) = split_labels(name);
        type_header(&mut out, &mut last, &base, "histogram");
        let set = render_labels(&labels, None);
        let mut cumulative = 0u64;
        for (i, count) in h.buckets.iter().enumerate() {
            cumulative += count;
            let _ = writeln!(
                out,
                "{base}_bucket{} {cumulative}",
                render_labels(&labels, Some(&bucket_bound(i)))
            );
        }
        let _ = writeln!(out, "{base}_sum{set} {}", h.sum);
        let _ = writeln!(out, "{base}_count{set} {}", h.count);
        let _ = writeln!(out, "{base}_max{set} {}", h.max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::GaugeSnapshot;

    #[test]
    fn splits_nested_label_groups_into_one_sorted_set() {
        let (base, labels) = split_labels("site.runs{site=a,policy=b}{shard=0}");
        assert_eq!(base, "site.runs");
        assert_eq!(
            labels,
            vec![
                ("policy".to_owned(), "b".to_owned()),
                ("shard".to_owned(), "0".to_owned()),
                ("site".to_owned(), "a".to_owned()),
            ]
        );
        assert_eq!(split_labels("plain").0, "plain");
        assert!(split_labels("plain").1.is_empty());
    }

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("a.runs{shard=1}{site=x}".into(), 3);
        snap.counters.insert("a.runs{shard=2}{site=x}".into(), 4);
        snap.gauges
            .insert("a.depth".into(), GaugeSnapshot { last: 2, max: 9 });
        let page = render_text(&snap);
        assert!(page.starts_with("# jsk-observe text exposition v1\n"));
        assert!(page.contains("# TYPE a.runs counter\n"));
        assert!(page.contains("a.runs{shard=\"1\",site=\"x\"} 3\n"));
        assert!(page.contains("a.runs{shard=\"2\",site=\"x\"} 4\n"));
        // The family header appears once for the two series.
        assert_eq!(page.matches("# TYPE a.runs counter").count(), 1);
        assert!(page.contains("a.depth 2\n"));
        assert!(page.contains("a.depth_max 9\n"));
        assert!(page.ends_with('\n'));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let mut reg = crate::MetricsRegistry::new();
        let mut strings = crate::Interner::new();
        let h = strings.intern("lat");
        reg.histogram_record(h, 1);
        reg.histogram_record(h, 1000);
        let page = render_text(&reg.snapshot(&strings));
        assert!(page.contains("lat_bucket{le=\"1\"} 1\n"));
        assert!(page.contains("lat_bucket{le=\"+Inf\"} 2\n"));
        assert!(page.contains("lat_sum 1001\n"));
        assert!(page.contains("lat_count 2\n"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("x{shard=0}".into(), 1);
        a.counters.insert("x{shard=1}".into(), 2);
        let mut b = MetricsSnapshot::default();
        b.counters.insert("x{shard=1}".into(), 2);
        b.counters.insert("x{shard=0}".into(), 1);
        assert_eq!(render_text(&a), render_text(&b));
    }
}
