//! The hook interface instrumented code talks to.
//!
//! `jsk-core` and `jsk-browser` never see a concrete observer; they hold an
//! [`ObsHandle`] (a shared, interior-mutable `dyn Subscriber`) behind their
//! `observe` cargo feature and call these hooks at the instrumentation
//! points. Each hook takes a pre-interned [`Sym`] plus plain integers —
//! nothing allocates — and timestamps come from the deterministic
//! simulation clock ([`SimTime`]), never from the host's wall clock, so a
//! recorded trace is a pure function of the run's seed.

use crate::sym::Sym;
use jsk_sim::time::SimTime;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Receiver of instrumentation hooks.
///
/// Implementations decide what to retain: the bundled [`crate::Observer`]
/// keeps a metrics registry and (optionally) a Chrome trace-event buffer;
/// tests install tiny recorders. All hooks have empty-body semantics by
/// contract when the receiver does not care — instrumented code calls them
/// unconditionally once an observer is attached.
pub trait Subscriber {
    /// Interns a name, returning the symbol to pass to later hooks.
    /// Instrumented code calls this once per name at attach time.
    fn intern(&mut self, name: &str) -> Sym;

    /// A synchronous span opened on thread `tid` at sim-time `at`.
    fn span_enter(&mut self, name: Sym, tid: u64, at: SimTime);

    /// The matching close of [`Subscriber::span_enter`].
    fn span_exit(&mut self, name: Sym, tid: u64, at: SimTime);

    /// A zero-duration point event.
    fn instant(&mut self, name: Sym, tid: u64, at: SimTime);

    /// Opens an asynchronous span correlated by `id` (e.g. an event
    /// token's register→dispatch round trip, which starts and ends in
    /// different tasks).
    fn async_begin(&mut self, name: Sym, id: u64, tid: u64, at: SimTime);

    /// Closes the asynchronous span opened with the same `name` and `id`.
    fn async_end(&mut self, name: Sym, id: u64, tid: u64, at: SimTime);

    /// Adds `delta` to a monotonically increasing counter.
    fn counter_add(&mut self, name: Sym, delta: u64);

    /// Sets the current value of a gauge (the registry also tracks the max).
    fn gauge_set(&mut self, name: Sym, value: u64);

    /// Records one observation into a fixed-bucket histogram.
    fn histogram_record(&mut self, name: Sym, value: u64);
}

/// A cloneable, shareable subscriber handle.
///
/// The simulated browser is single-threaded and `Rc`-based, so the handle
/// is an `Rc<RefCell<dyn Subscriber>>`: the browser, its mediator, and the
/// harness that exports results all hold clones of the same observer. Each
/// forwarding method borrows for exactly the duration of one hook call, so
/// nesting instrumented code (a mediator hook inside a browser task span)
/// never double-borrows.
#[derive(Clone)]
pub struct ObsHandle(Rc<RefCell<dyn Subscriber>>);

impl fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ObsHandle(..)")
    }
}

impl ObsHandle {
    /// Wraps a shared subscriber.
    #[must_use]
    pub fn new(sub: Rc<RefCell<dyn Subscriber>>) -> ObsHandle {
        ObsHandle(sub)
    }

    /// Forwards [`Subscriber::intern`].
    #[must_use]
    pub fn intern(&self, name: &str) -> Sym {
        self.0.borrow_mut().intern(name)
    }

    /// Forwards [`Subscriber::span_enter`].
    pub fn span_enter(&self, name: Sym, tid: u64, at: SimTime) {
        self.0.borrow_mut().span_enter(name, tid, at);
    }

    /// Forwards [`Subscriber::span_exit`].
    pub fn span_exit(&self, name: Sym, tid: u64, at: SimTime) {
        self.0.borrow_mut().span_exit(name, tid, at);
    }

    /// Forwards [`Subscriber::instant`].
    pub fn instant(&self, name: Sym, tid: u64, at: SimTime) {
        self.0.borrow_mut().instant(name, tid, at);
    }

    /// Forwards [`Subscriber::async_begin`].
    pub fn async_begin(&self, name: Sym, id: u64, tid: u64, at: SimTime) {
        self.0.borrow_mut().async_begin(name, id, tid, at);
    }

    /// Forwards [`Subscriber::async_end`].
    pub fn async_end(&self, name: Sym, id: u64, tid: u64, at: SimTime) {
        self.0.borrow_mut().async_end(name, id, tid, at);
    }

    /// Forwards [`Subscriber::counter_add`].
    pub fn counter_add(&self, name: Sym, delta: u64) {
        self.0.borrow_mut().counter_add(name, delta);
    }

    /// Forwards [`Subscriber::gauge_set`].
    pub fn gauge_set(&self, name: Sym, value: u64) {
        self.0.borrow_mut().gauge_set(name, value);
    }

    /// Forwards [`Subscriber::histogram_record`].
    pub fn histogram_record(&self, name: Sym, value: u64) {
        self.0.borrow_mut().histogram_record(name, value);
    }
}
