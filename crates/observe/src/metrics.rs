//! The metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Storage is keyed by [`Sym`], so a hook call on a warm registry is a
//! `BTreeMap` lookup plus an integer update — no hashing of strings, no
//! allocation (histograms use a fixed inline bucket array). Export
//! resolves symbols back to names and produces a [`MetricsSnapshot`] whose
//! JSON is deterministic: `BTreeMap<String, _>` keys serialize sorted, and
//! every value is an exact integer.
//!
//! Snapshots [`merge`](MetricsSnapshot::merge) commutatively and
//! associatively (counters and histogram buckets add, gauges keep the
//! maximum), so per-browser observers harvested by a `JSK_JOBS`-parallel
//! bench pool fold to the same totals in any order — the same discipline
//! the bench records follow.

use crate::sym::{Interner, Sym};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of histogram buckets: bucket `i < 16` counts values `v` with
/// `v < 2^i` (and `v >= 2^(i-1)` for `i > 0`); bucket 16 is the overflow.
pub const HISTOGRAM_BUCKETS: usize = 17;

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`, capped.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Strips any `{key=value}` label sets from a metric name:
/// `kernel.equeue_depth{shard=3}` → `kernel.equeue_depth`. Names without
/// labels pass through unchanged.
#[must_use]
pub fn base_name(name: &str) -> &str {
    match name.find('{') {
        Some(i) => &name[..i],
        None => name,
    }
}

/// A gauge's retained state: the most recent set and the high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Gauge {
    last: u64,
    max: u64,
}

/// A histogram's retained state: fixed power-of-two buckets plus exact
/// count/sum/max, all updated without allocating.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Histogram {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

/// Sym-keyed metric storage (see the module docs for the cost model).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<Sym, u64>,
    gauges: BTreeMap<Sym, Gauge>,
    histograms: BTreeMap<Sym, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name` (saturating).
    pub fn counter_add(&mut self, name: Sym, delta: u64) {
        let c = self.counters.entry(name).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Sets gauge `name` to `value`, tracking the maximum ever set.
    pub fn gauge_set(&mut self, name: Sym, value: u64) {
        let g = self.gauges.entry(name).or_default();
        g.last = value;
        g.max = g.max.max(value);
    }

    /// Records one observation into histogram `name`.
    pub fn histogram_record(&mut self, name: Sym, value: u64) {
        let h = self.histograms.entry(name).or_default();
        h.count = h.count.saturating_add(1);
        h.sum = h.sum.saturating_add(value);
        h.max = h.max.max(value);
        h.buckets[bucket_index(value)] += 1;
    }

    /// Current value of counter `name` (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: Sym) -> u64 {
        self.counters.get(&name).copied().unwrap_or(0)
    }

    /// Resolves every metric through `strings` into a name-keyed snapshot.
    #[must_use]
    pub fn snapshot(&self, strings: &Interner) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(s, v)| (strings.resolve(*s).to_owned(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(s, g)| {
                    (
                        strings.resolve(*s).to_owned(),
                        GaugeSnapshot {
                            last: g.last,
                            max: g.max,
                        },
                    )
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(s, h)| {
                    (
                        strings.resolve(*s).to_owned(),
                        HistogramSnapshot {
                            count: h.count,
                            sum: h.sum,
                            max: h.max,
                            buckets: h.buckets.to_vec(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Exported gauge state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// The most recently set value.
    pub last: u64,
    /// The high-water mark across the run.
    pub max: u64,
}

/// Exported histogram state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Power-of-two bucket counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
}

/// A name-keyed, serializable, mergeable export of a registry.
///
/// This is the shape that lands in `BENCH_<target>.json` run metadata and
/// in the example's metrics file; its JSON is deterministic because every
/// map is a `BTreeMap` and every value an integer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (last value + high-water mark).
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`, commutatively: counters and histogram
    /// buckets/counts/sums add, gauges and histogram maxima keep the max
    /// (a merged gauge's `last` is the max of the parts — "most recent"
    /// has no meaning across parallel runs).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            let c = self.counters.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (k, g) in &other.gauges {
            let mine = self
                .gauges
                .entry(k.clone())
                .or_insert(GaugeSnapshot { last: 0, max: 0 });
            mine.last = mine.last.max(g.last);
            mine.max = mine.max.max(g.max);
        }
        for (k, h) in &other.histograms {
            let mine = self
                .histograms
                .entry(k.clone())
                .or_insert_with(|| HistogramSnapshot {
                    count: 0,
                    sum: 0,
                    max: 0,
                    buckets: vec![0; HISTOGRAM_BUCKETS],
                });
            mine.count = mine.count.saturating_add(h.count);
            mine.sum = mine.sum.saturating_add(h.sum);
            mine.max = mine.max.max(h.max);
            for (b, v) in mine.buckets.iter_mut().zip(&h.buckets) {
                *b = b.saturating_add(*v);
            }
        }
    }

    /// Counter value by name (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A copy of this snapshot with a `{key=value}` label set appended to
    /// every metric name (Prometheus text-format style):
    /// `kernel.equeue_depth` becomes `kernel.equeue_depth{shard=3}`.
    /// Labelled snapshots from different shards then
    /// [`merge`](MetricsSnapshot::merge) into one registry without their
    /// series colliding, which is how per-shard kernel metrics stay
    /// separable in a fleet-wide export. Labelling twice nests:
    /// `name{a=1}{b=2}` — label once, at harvest time.
    #[must_use]
    pub fn with_label(&self, key: &str, value: &str) -> MetricsSnapshot {
        let relabel = |name: &str| format!("{name}{{{key}={value}}}");
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (relabel(k), *v))
                .collect(),
            gauges: self.gauges.iter().map(|(k, v)| (relabel(k), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (relabel(k), v.clone()))
                .collect(),
        }
    }

    /// Like [`with_label`](MetricsSnapshot::with_label) but appends one
    /// `{k1=v1,k2=v2,...}` group carrying every pair at once — the shape a
    /// serving layer wants for its `{site,policy}` dimensions, with the
    /// fleet's `{shard}` group nested on top at harvest time. Pairs keep
    /// the given order inside the group; the text exposition
    /// ([`crate::text::render_text`]) sorts keys when it normalizes. An
    /// empty slice returns the snapshot unchanged.
    #[must_use]
    pub fn with_labels(&self, labels: &[(&str, &str)]) -> MetricsSnapshot {
        if labels.is_empty() {
            return self.clone();
        }
        let set = labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",");
        let relabel = |name: &str| format!("{name}{{{set}}}");
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (relabel(k), *v))
                .collect(),
            gauges: self.gauges.iter().map(|(k, v)| (relabel(k), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (relabel(k), v.clone()))
                .collect(),
        }
    }

    /// Sums every labelled variant of `counter` across label sets: the
    /// fleet-wide total of a per-shard counter.
    #[must_use]
    pub fn counter_across_labels(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| base_name(k) == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn registry_snapshot_resolves_names() {
        let mut strings = Interner::new();
        let c = strings.intern("kernel.dispatched");
        let g = strings.intern("kernel.equeue_depth");
        let h = strings.intern("kernel.dispatch_latency_ticks");
        let mut reg = MetricsRegistry::new();
        reg.counter_add(c, 2);
        reg.counter_add(c, 3);
        reg.gauge_set(g, 7);
        reg.gauge_set(g, 4);
        reg.histogram_record(h, 5);
        let snap = reg.snapshot(&strings);
        assert_eq!(snap.counter("kernel.dispatched"), 5);
        let gauge = &snap.gauges["kernel.equeue_depth"];
        assert_eq!((gauge.last, gauge.max), (4, 7));
        let hist = &snap.histograms["kernel.dispatch_latency_ticks"];
        assert_eq!((hist.count, hist.sum, hist.max), (1, 5, 5));
        assert_eq!(hist.buckets[bucket_index(5)], 1);
    }

    #[test]
    fn merge_is_commutative() {
        let mut strings = Interner::new();
        let c = strings.intern("c");
        let g = strings.intern("g");
        let h = strings.intern("h");
        let mut a = MetricsRegistry::new();
        a.counter_add(c, 1);
        a.gauge_set(g, 9);
        a.histogram_record(h, 2);
        let mut b = MetricsRegistry::new();
        b.counter_add(c, 10);
        b.gauge_set(g, 3);
        b.histogram_record(h, 100);
        let (sa, sb) = (a.snapshot(&strings), b.snapshot(&strings));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), 11);
        assert_eq!(ab.gauges["g"].max, 9);
        assert_eq!(ab.histograms["h"].count, 2);
    }

    #[test]
    fn labelled_snapshots_merge_without_colliding() {
        let mut strings = Interner::new();
        let c = strings.intern("kernel.dispatched");
        let g = strings.intern("kernel.equeue_depth");
        let h = strings.intern("kernel.dispatch_latency_ticks");
        let mut reg = MetricsRegistry::new();
        reg.counter_add(c, 5);
        reg.gauge_set(g, 3);
        reg.histogram_record(h, 8);
        let snap = reg.snapshot(&strings);
        let mut fleet = snap.with_label("shard", "0");
        fleet.merge(&snap.with_label("shard", "1"));
        // Series stay separate per shard...
        assert_eq!(fleet.counter("kernel.dispatched{shard=0}"), 5);
        assert_eq!(fleet.counter("kernel.dispatched{shard=1}"), 5);
        assert_eq!(fleet.counter("kernel.dispatched"), 0);
        assert_eq!(fleet.gauges["kernel.equeue_depth{shard=1}"].max, 3);
        assert_eq!(
            fleet.histograms["kernel.dispatch_latency_ticks{shard=0}"].count,
            1
        );
        // ...and still aggregate across the label dimension.
        assert_eq!(fleet.counter_across_labels("kernel.dispatched"), 10);
    }

    #[test]
    fn base_name_strips_label_sets() {
        assert_eq!(
            base_name("kernel.equeue_depth{shard=3}"),
            "kernel.equeue_depth"
        );
        assert_eq!(base_name("kernel.equeue_depth"), "kernel.equeue_depth");
        assert_eq!(base_name("a{b=1}{c=2}"), "a");
    }

    #[test]
    fn labelling_preserves_merge_commutativity() {
        let mut strings = Interner::new();
        let c = strings.intern("c");
        let mut reg = MetricsRegistry::new();
        reg.counter_add(c, 2);
        let s0 = reg.snapshot(&strings).with_label("shard", "0");
        let s1 = reg.snapshot(&strings).with_label("shard", "1");
        let mut ab = s0.clone();
        ab.merge(&s1);
        let mut ba = s1;
        ba.merge(&s0);
        assert_eq!(ab, ba);
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let mut strings = Interner::new();
        let c = strings.intern("kernel.registered");
        let mut reg = MetricsRegistry::new();
        reg.counter_add(c, 42);
        let snap = reg.snapshot(&strings);
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
