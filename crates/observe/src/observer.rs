//! The bundled [`Subscriber`]: metrics registry + optional trace buffer.

use crate::chrome::{self, Phase, TraceEvent, TraceSummary};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::subscriber::{ObsHandle, Subscriber};
use crate::sym::{Interner, Sym};
use jsk_sim::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// The standard observer: always maintains a [`MetricsRegistry`]; with
/// [`Observer::with_trace`] it additionally buffers every span/instant as
/// a [`TraceEvent`] for Chrome trace-event export. Metrics-only is the
/// bench configuration (hook cost is a map update, no buffer growth);
/// tracing is the profiling configuration.
#[derive(Debug, Clone, Default)]
pub struct Observer {
    strings: Interner,
    metrics: MetricsRegistry,
    record_events: bool,
    events: Vec<TraceEvent>,
    capacity: Option<usize>,
    dropped: u64,
}

impl Observer {
    /// A metrics-only observer (spans and instants update nothing).
    #[must_use]
    pub fn new() -> Observer {
        Observer::default()
    }

    /// An observer that also buffers trace events for Perfetto export.
    /// The buffer is unbounded; long simulations should prefer
    /// [`Observer::with_trace_capacity`].
    #[must_use]
    pub fn with_trace() -> Observer {
        Observer {
            record_events: true,
            ..Observer::default()
        }
    }

    /// A tracing observer whose event buffer stops growing at `capacity`
    /// events. Recording is prefix-truncating: the first `capacity` events
    /// are kept (registration, first dispatches, policy denials — the part
    /// a profiling session reads first) and later ones are counted in
    /// [`Observer::dropped_events`]. Metrics are unaffected by the cap.
    #[must_use]
    pub fn with_trace_capacity(capacity: usize) -> Observer {
        Observer {
            record_events: true,
            capacity: Some(capacity),
            ..Observer::default()
        }
    }

    /// How many trace events the capacity cap discarded (0 when unbounded).
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Wraps the observer for sharing. Keep one clone to harvest results
    /// and pass an [`ObsHandle`] made from the other to the browser:
    ///
    /// ```
    /// use jsk_observe::{handle_of, Observer};
    /// let shared = Observer::with_trace().shared();
    /// let handle = handle_of(&shared);   // goes to BrowserConfig
    /// // ... run ...
    /// let json = shared.borrow().chrome_trace_json();
    /// assert!(jsk_observe::chrome::validate(&json).is_ok());
    /// ```
    #[must_use]
    pub fn shared(self) -> Rc<RefCell<Observer>> {
        Rc::new(RefCell::new(self))
    }

    /// Name-resolved snapshot of the metrics recorded so far.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(&self.strings)
    }

    /// Deterministic pretty JSON of the metrics snapshot.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.metrics()).expect("metrics serialize");
        s.push('\n');
        s
    }

    /// The buffered trace events (empty unless built [`Observer::with_trace`]).
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Renders the buffered events as Chrome trace-event JSON.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        chrome::chrome_trace_json(&self.events, &self.strings)
    }

    /// Validates this observer's own export (used by smoke tests).
    pub fn validate_trace(&self) -> Result<TraceSummary, String> {
        chrome::validate(&self.chrome_trace_json())
    }

    fn push(&mut self, ph: Phase, name: Sym, tid: u64, ts: SimTime, id: Option<u64>) {
        if !self.record_events {
            return;
        }
        if let Some(cap) = self.capacity {
            if self.events.len() >= cap {
                self.dropped += 1;
                return;
            }
        }
        self.events.push(TraceEvent {
            ph,
            name,
            tid,
            ts,
            id,
        });
    }
}

impl Subscriber for Observer {
    fn intern(&mut self, name: &str) -> Sym {
        self.strings.intern(name)
    }

    fn span_enter(&mut self, name: Sym, tid: u64, at: SimTime) {
        self.push(Phase::Begin, name, tid, at, None);
    }

    fn span_exit(&mut self, name: Sym, tid: u64, at: SimTime) {
        self.push(Phase::End, name, tid, at, None);
    }

    fn instant(&mut self, name: Sym, tid: u64, at: SimTime) {
        self.push(Phase::Instant, name, tid, at, None);
    }

    fn async_begin(&mut self, name: Sym, id: u64, tid: u64, at: SimTime) {
        self.push(Phase::AsyncBegin, name, tid, at, Some(id));
    }

    fn async_end(&mut self, name: Sym, id: u64, tid: u64, at: SimTime) {
        self.push(Phase::AsyncEnd, name, tid, at, Some(id));
    }

    fn counter_add(&mut self, name: Sym, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    fn gauge_set(&mut self, name: Sym, value: u64) {
        self.metrics.gauge_set(name, value);
    }

    fn histogram_record(&mut self, name: Sym, value: u64) {
        self.metrics.histogram_record(name, value);
    }
}

/// An [`ObsHandle`] onto a shared observer (the form `BrowserConfig`
/// accepts), leaving the caller's `Rc` free to harvest results later.
#[must_use]
pub fn handle_of(observer: &Rc<RefCell<Observer>>) -> ObsHandle {
    ObsHandle::new(observer.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_only_observer_ignores_spans() {
        let mut o = Observer::new();
        let s = o.intern("kernel.dispatch");
        o.span_enter(s, 0, SimTime::ZERO);
        o.span_exit(s, 0, SimTime::from_micros(1));
        o.counter_add(s, 1);
        assert!(o.events().is_empty());
        assert_eq!(o.metrics().counter("kernel.dispatch"), 1);
    }

    #[test]
    fn capacity_cap_truncates_prefix_and_counts_drops() {
        let mut o = Observer::with_trace_capacity(2);
        let s = o.intern("kernel.dispatch");
        for i in 0..5u64 {
            o.instant(s, 0, SimTime::from_micros(i));
            o.counter_add(s, 1);
        }
        assert_eq!(o.events().len(), 2);
        assert_eq!(o.dropped_events(), 3);
        // Metrics ignore the cap.
        assert_eq!(o.metrics().counter("kernel.dispatch"), 5);
    }

    #[test]
    fn tracing_observer_exports_through_handle() {
        let shared = Observer::with_trace().shared();
        let h = handle_of(&shared);
        let s = h.intern("browser.task");
        h.span_enter(s, 0, SimTime::ZERO);
        h.span_exit(s, 0, SimTime::from_micros(3));
        let summary = shared.borrow().validate_trace().expect("valid");
        assert_eq!(summary.events, 2);
        assert_eq!(summary.spans, 1);
    }
}
