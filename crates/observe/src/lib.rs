//! Kernel-wide tracing, metrics, and profiling for the JSKernel
//! reproduction.
//!
//! The paper's evaluation (§VI) rests on *seeing* what the kernel did —
//! which events were deferred, reordered, or confirmed, and what that
//! cost. This crate is the layer that makes that visible without
//! perturbing it:
//!
//! * [`Subscriber`] / [`ObsHandle`] — the hook interface `jsk-core` and
//!   `jsk-browser` call (behind their `observe` cargo feature) at span,
//!   instant, and metric sites. Names are [`Sym`]-interned once at attach
//!   time; hooks pass integers only.
//! * [`MetricsRegistry`] / [`MetricsSnapshot`] — counters, gauges, and
//!   fixed-bucket histograms with deterministic JSON export and
//!   commutative merge (so `JSK_JOBS`-parallel harvests fold
//!   bit-identically).
//! * [`chrome`] — Chrome trace-event JSON (Perfetto-loadable) export of
//!   the buffered spans, plus the schema [`chrome::validate`] check CI
//!   runs.
//! * [`Observer`] — the bundled subscriber combining all of the above;
//!   attach it via `BrowserConfig::with_observer(handle_of(&shared))`.
//!
//! Everything is timestamped from the **deterministic simulation clock**
//! — there is no `Date::now` anywhere in this crate — so every export is
//! a pure function of the run's seed.
//!
//! `examples/observe_run.rs` records an attack scenario end-to-end and
//! writes `trace.perfetto.json`; `docs/BOOK.md` walks through reading the
//! result.

#![deny(missing_docs)]

pub mod chrome;
pub mod metrics;
pub mod observer;
pub mod subscriber;
pub mod sym;
pub mod text;

pub use chrome::{Phase, TraceEvent, TraceSummary};
pub use metrics::{base_name, GaugeSnapshot, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use observer::{handle_of, Observer};
pub use subscriber::{ObsHandle, Subscriber};
pub use sym::{Interner, Sym};
pub use text::render_text;

/// Whether observation is enabled by the environment: `JSK_OBSERVE`
/// unset, `1`, or `true` → on; `0` or `false` → off. Examples and
/// harnesses consult this before attaching an observer, so a run can be
/// de-instrumented without rebuilding.
#[must_use]
pub fn enabled_from_env() -> bool {
    match std::env::var("JSK_OBSERVE") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off"),
        Err(_) => true,
    }
}
