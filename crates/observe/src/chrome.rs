//! Chrome trace-event export (the JSON Array Format Perfetto loads).
//!
//! The observer buffers [`TraceEvent`]s (symbols + sim-times, 32 bytes
//! each) and this module renders them to the trace-event JSON object
//! format: `{"displayTimeUnit": "ms", "traceEvents": [...]}` with one
//! object per event carrying `name`/`cat`/`ph`/`ts`/`pid`/`tid` (and `id`
//! for asynchronous spans). Timestamps are **simulation** microseconds —
//! a trace is a pure function of the run's seed and loads identically on
//! any machine. Synchronous kernel spans are zero-width in sim-time (the
//! kernel decides "instantaneously" between simulated instants); the
//! spans with real extent are the asynchronous event-lifecycle spans
//! (register → dispatch, correlated by event token) and browser task
//! spans, whose widths are the simulated costs the attacks measure.
//!
//! [`validate`] is the small schema check the CI `observe-smoke` step and
//! the tests run over emitted files.

use crate::sym::{Interner, Sym};
use jsk_sim::time::SimTime;
use serde::Value;

/// Trace-event phase codes this exporter emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Synchronous span open (`"B"`).
    Begin,
    /// Synchronous span close (`"E"`).
    End,
    /// Point event (`"i"`).
    Instant,
    /// Asynchronous (id-correlated) span open (`"b"`).
    AsyncBegin,
    /// Asynchronous span close (`"e"`).
    AsyncEnd,
}

impl Phase {
    /// The single-character `ph` code.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
            Phase::AsyncBegin => "b",
            Phase::AsyncEnd => "e",
        }
    }
}

/// One buffered event, still symbol-keyed (resolved at export).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event phase.
    pub ph: Phase,
    /// Interned event name.
    pub name: Sym,
    /// Simulated thread the event is attributed to.
    pub tid: u64,
    /// Simulation time of the event.
    pub ts: SimTime,
    /// Correlation id for asynchronous phases (`None` otherwise).
    pub id: Option<u64>,
}

/// The `pid` every event carries: there is one simulated browser process.
pub const TRACE_PID: u64 = 1;

fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or("misc")
}

/// Sim-time → trace-event microseconds, exact while sim-times stay below
/// 2^53 ns (~104 days — far past any simulated run).
fn ts_micros(t: SimTime) -> Value {
    let ns = t.as_nanos();
    if ns.is_multiple_of(1_000) {
        Value::U64(ns / 1_000)
    } else {
        Value::F64(ns as f64 / 1_000.0)
    }
}

/// Renders events to the trace-event JSON object format as a [`Value`].
#[must_use]
pub fn chrome_trace_value(events: &[TraceEvent], strings: &Interner) -> Value {
    let rendered = events
        .iter()
        .map(|e| {
            let name = strings.resolve(e.name);
            let mut obj = vec![
                ("name".to_owned(), Value::Str(name.to_owned())),
                ("cat".to_owned(), Value::Str(category(name).to_owned())),
                ("ph".to_owned(), Value::Str(e.ph.code().to_owned())),
                ("ts".to_owned(), ts_micros(e.ts)),
                ("pid".to_owned(), Value::U64(TRACE_PID)),
                ("tid".to_owned(), Value::U64(e.tid)),
            ];
            if let Some(id) = e.id {
                obj.push(("id".to_owned(), Value::U64(id)));
            }
            if e.ph == Phase::Instant {
                // Thread-scoped instants render as small arrows in Perfetto.
                obj.push(("s".to_owned(), Value::Str("t".to_owned())));
            }
            Value::Obj(obj)
        })
        .collect();
    Value::Obj(vec![
        ("displayTimeUnit".to_owned(), Value::Str("ms".to_owned())),
        ("traceEvents".to_owned(), Value::Arr(rendered)),
    ])
}

/// Renders events to a pretty-printed trace-event JSON string (with a
/// trailing newline, like every other artifact this repo writes).
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent], strings: &Interner) -> String {
    let mut s = serde_json::to_string_pretty(&chrome_trace_value(events, strings))
        .expect("trace value serializes");
    s.push('\n');
    s
}

/// Counts from a validated trace, for smoke-test assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Total events.
    pub events: usize,
    /// Synchronous span opens (`"B"`).
    pub spans: usize,
    /// Asynchronous span opens (`"b"`).
    pub async_spans: usize,
    /// Point events (`"i"`).
    pub instants: usize,
}

/// The small schema check: parses `json`, verifies the envelope and that
/// every event has the required fields with the right types (async phases
/// must carry an `id`), and returns event counts. `Err` is a description
/// of the first violation.
pub fn validate(json: &str) -> Result<TraceSummary, String> {
    let v: Value = serde_json::from_str(json).map_err(|e| format!("not JSON: {e}"))?;
    let events = v
        .get_field("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    match v.get_field("displayTimeUnit") {
        Some(Value::Str(u)) if u == "ms" || u == "ns" => {}
        _ => return Err("displayTimeUnit missing or invalid".to_owned()),
    }
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    for (i, e) in events.iter().enumerate() {
        let field = |k: &str| e.get_field(k).ok_or(format!("event {i}: missing {k}"));
        let Value::Str(ph) = field("ph")? else {
            return Err(format!("event {i}: ph is not a string"));
        };
        let Value::Str(_) = field("name")? else {
            return Err(format!("event {i}: name is not a string"));
        };
        for k in ["ts", "pid", "tid"] {
            match field(k)? {
                Value::U64(_) | Value::I64(_) | Value::F64(_) => {}
                _ => return Err(format!("event {i}: {k} is not numeric")),
            }
        }
        match ph.as_str() {
            "B" => summary.spans += 1,
            "b" | "e" => {
                if e.get_field("id").is_none() {
                    return Err(format!("event {i}: async phase {ph:?} without id"));
                }
                if ph == "b" {
                    summary.async_spans += 1;
                }
            }
            "i" => summary.instants += 1,
            "E" | "C" | "M" => {}
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_validates_and_counts() {
        let mut strings = Interner::new();
        let task = strings.intern("browser.task");
        let ev = strings.intern("kevent.timeout");
        let mark = strings.intern("kernel.watchdog_expired");
        let events = [
            TraceEvent {
                ph: Phase::AsyncBegin,
                name: ev,
                tid: 0,
                ts: SimTime::from_micros(10),
                id: Some(3),
            },
            TraceEvent {
                ph: Phase::Begin,
                name: task,
                tid: 0,
                ts: SimTime::from_micros(15),
                id: None,
            },
            TraceEvent {
                ph: Phase::End,
                name: task,
                tid: 0,
                ts: SimTime::from_micros(40),
                id: None,
            },
            TraceEvent {
                ph: Phase::AsyncEnd,
                name: ev,
                tid: 0,
                ts: SimTime::from_micros(15),
                id: Some(3),
            },
            TraceEvent {
                ph: Phase::Instant,
                name: mark,
                tid: 1,
                ts: SimTime::from_nanos(1_500),
                id: None,
            },
        ];
        let json = chrome_trace_json(&events, &strings);
        let summary = validate(&json).expect("valid trace");
        assert_eq!(summary.events, 5);
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.async_spans, 1);
        assert_eq!(summary.instants, 1);
        assert!(json.contains("\"cat\": \"kevent\""), "{json}");
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn validate_rejects_async_without_id() {
        let bad = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"x","cat":"x","ph":"b","ts":1,"pid":1,"tid":0}]}"#;
        assert!(validate(bad).unwrap_err().contains("without id"));
    }

    #[test]
    fn validate_rejects_missing_envelope() {
        assert!(validate("{}").is_err());
        assert!(validate("not json").is_err());
    }
}
