//! Interned metric/span names.
//!
//! Every span, counter, gauge, and histogram is identified by a [`Sym`]: a
//! `u32` index into an [`Interner`] owned by the subscriber. Instrumented
//! code interns each name **once** (at attach time) and then passes the
//! copyable `Sym` on every hook call, so the hot path never hashes a
//! string or allocates. The design mirrors `jsk_browser::trace::Interner`,
//! but lives here so the observability layer sits *below* the browser in
//! the crate graph and can be depended on by any layer.
//!
//! Symbols are handed out in first-intern order, which is itself
//! deterministic (instrumented code interns its names in a fixed order at
//! attach time), so exports keyed by symbol index are bit-identical across
//! runs and `JSK_JOBS` settings.

use std::collections::HashMap;

/// An interned name: a cheap, copyable index into an [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// First-occurrence string interner: `intern` returns a stable [`Sym`] per
/// distinct string; `resolve` maps it back.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `s`, returning its symbol (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&i) = self.index.get(s) {
            return Sym(i);
        }
        let i = u32::try_from(self.strings.len()).expect("interner overflow");
        self.strings.push(s.to_owned());
        self.index.insert(s.to_owned(), i);
        Sym(i)
    }

    /// The string behind a symbol.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    #[must_use]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_first_occurrence_ordered() {
        let mut i = Interner::new();
        let a = i.intern("kernel.dispatch");
        let b = i.intern("policy.decide");
        assert_eq!(a, i.intern("kernel.dispatch"));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.resolve(b), "policy.decide");
        assert_eq!(i.len(), 2);
    }
}
