//! Tasks: units of JavaScript execution.
//!
//! A task pairs a callback with its argument and provenance. Callbacks are
//! `Rc<dyn Fn(&mut JsScope, JsValue)>` so the same handler (e.g. an
//! `onmessage` listener) can be invoked repeatedly, exactly like a
//! JavaScript function object.

use crate::ids::{EventToken, WorkerId};
use crate::scope::JsScope;
use crate::value::JsValue;
use std::fmt;
use std::rc::Rc;

/// A JavaScript callback: invoked with the thread's scope and one argument.
pub type Callback = Rc<dyn Fn(&mut JsScope<'_>, JsValue)>;

/// A worker's top-level script.
pub type WorkerScript = Rc<dyn Fn(&mut JsScope<'_>)>;

/// Wraps a closure into a [`Callback`].
///
/// # Examples
///
/// ```
/// use jsk_browser::task::{cb, Callback};
///
/// let logged = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
/// let logged2 = logged.clone();
/// let _callback: Callback = cb(move |_scope, arg| {
///     logged2.borrow_mut().push(arg);
/// });
/// ```
pub fn cb<F>(f: F) -> Callback
where
    F: Fn(&mut JsScope<'_>, JsValue) + 'static,
{
    Rc::new(f)
}

/// Wraps a closure into a [`WorkerScript`].
pub fn worker_script<F>(f: F) -> WorkerScript
where
    F: Fn(&mut JsScope<'_>) + 'static,
{
    Rc::new(f)
}

/// Where a task came from — used for tracing and for defenses that treat
/// sources differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskSource {
    /// Top-level script execution (page load or worker start).
    Script,
    /// A `setTimeout`/`setInterval` firing.
    Timer,
    /// An `onmessage` delivery.
    Message,
    /// A `requestAnimationFrame` callback.
    Animation,
    /// A network callback (`fetch` resolution, `onload`/`onerror`).
    Net,
    /// A media (video frame / WebVTT cue) callback.
    Media,
    /// A CSS animation tick.
    CssAnimation,
    /// Kernel housekeeping (dispatcher pump, kernel messages).
    Kernel,
}

/// A scheduled unit of JavaScript execution on one thread.
pub struct Task {
    /// The function to invoke.
    pub callback: Callback,
    /// The single argument (JavaScript event objects collapse to one value).
    pub arg: JsValue,
    /// Provenance.
    pub source: TaskSource,
    /// The asynchronous event this task materializes, if any.
    pub token: Option<EventToken>,
    /// Timer nesting depth (for the HTML spec's nested-timer clamp).
    pub nesting: u32,
    /// The worker whose message this task dispatches, if any (used by the
    /// CVE-2014-1719 mid-dispatch window and close-time accounting).
    pub from_worker: Option<WorkerId>,
    /// The polyfill worker context this task executes in, if any.
    pub polyfill_worker: Option<WorkerId>,
    /// Whether the task runs in a sandboxed frame context.
    pub sandboxed: bool,
    /// Thread epoch at enqueue; the pump silently drops tasks from older
    /// epochs (how defenses cleanly cancel doc-bound work).
    pub epoch: u64,
    /// Browsing-context tag (0 = the default context). Cross-context tasks
    /// share the event loop but belong to different pages — the distinction
    /// DeterFox's per-context determinism hinges on.
    pub context: u32,
    /// The happens-before node of the task that created this one (the task
    /// running when the callback was registered / the message was sent).
    /// `None` for browser-initiated work with no JS ancestor.
    pub forked_from: Option<u64>,
}

impl Task {
    /// Creates a task with default context.
    #[must_use]
    pub fn new(callback: Callback, arg: JsValue, source: TaskSource) -> Task {
        Task {
            callback,
            arg,
            source,
            token: None,
            nesting: 0,
            from_worker: None,
            polyfill_worker: None,
            sandboxed: false,
            epoch: 0,
            context: 0,
            forked_from: None,
        }
    }

    /// Attaches the originating event token.
    #[must_use]
    pub fn with_token(mut self, token: EventToken) -> Task {
        self.token = Some(token);
        self
    }

    /// Sets the timer nesting depth.
    #[must_use]
    pub fn with_nesting(mut self, nesting: u32) -> Task {
        self.nesting = nesting;
        self
    }

    /// Marks the task as dispatching a message from `worker`.
    #[must_use]
    pub fn via_worker(mut self, worker: WorkerId) -> Task {
        self.from_worker = Some(worker);
        self
    }

    /// Marks the task as running inside a polyfill worker context.
    #[must_use]
    pub fn in_polyfill(mut self, worker: WorkerId) -> Task {
        self.polyfill_worker = Some(worker);
        self
    }

    /// Records the HB node of the task that created this one.
    #[must_use]
    pub fn forked_from(mut self, node: Option<u64>) -> Task {
        self.forked_from = node;
        self
    }
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("arg", &self.arg)
            .field("source", &self.source)
            .field("token", &self.token)
            .field("nesting", &self.nesting)
            .field("from_worker", &self.from_worker)
            .field("epoch", &self.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_builder_sets_fields() {
        let t = Task::new(cb(|_, _| {}), JsValue::from(1.0), TaskSource::Timer)
            .with_token(EventToken::new(3))
            .with_nesting(2)
            .via_worker(WorkerId::new(4));
        assert_eq!(t.source, TaskSource::Timer);
        assert_eq!(t.token, Some(EventToken::new(3)));
        assert_eq!(t.nesting, 2);
        assert_eq!(t.from_worker, Some(WorkerId::new(4)));
        assert_eq!(t.arg, JsValue::from(1.0));
        assert_eq!(t.epoch, 0);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let t = Task::new(cb(|_, _| {}), JsValue::Null, TaskSource::Script);
        assert!(format!("{t:?}").contains("Script"));
    }
}
