//! Identifier newtypes for browser entities.

use jsk_sim::define_id_with_gen;

define_id_with_gen!(
    ThreadId,
    "Identifies a JavaScript thread (the main thread or a worker thread)."
);
define_id_with_gen!(
    WorkerId,
    "Identifies a `Worker` object as seen from its owner."
);
define_id_with_gen!(EventToken, "Identifies one registered asynchronous event (timer, message delivery, animation frame, network callback, …) across its registration → raw-trigger → confirmation → invocation lifecycle.");
define_id_with_gen!(
    TimerId,
    "Handle returned by `setTimeout`/`setInterval`, accepted by `clearTimeout`."
);
define_id_with_gen!(RafId, "Handle returned by `requestAnimationFrame`.");
define_id_with_gen!(
    RequestId,
    "Identifies a network request (`fetch`, XHR, resource load)."
);
define_id_with_gen!(NodeId, "Identifies a DOM node.");
define_id_with_gen!(BufferId, "Identifies an `ArrayBuffer` (transferable).");
define_id_with_gen!(SignalId, "Identifies an `AbortController`'s signal.");
define_id_with_gen!(SabId, "Identifies a `SharedArrayBuffer`.");

/// The main thread always has id 0.
pub const MAIN_THREAD: ThreadId = ThreadId::new(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_thread_is_zero() {
        assert_eq!(MAIN_THREAD.index(), 0);
    }

    #[test]
    fn distinct_id_types_do_not_unify() {
        // Compile-time property; keep a runtime touch so the ids are used.
        let t = ThreadId::new(1);
        let w = WorkerId::new(1);
        assert_eq!(t.index(), w.index());
    }
}
