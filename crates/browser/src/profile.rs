//! Per-engine timing profiles.
//!
//! The paper evaluates three commercial engines (Chrome, Firefox, Edge). In
//! the simulator an engine is a bundle of timing constants: clock precision,
//! scheduler behaviour, CPU cost model for the operations the attacks
//! measure, and a network model. The constants are **calibrated to the
//! paper's reported measurements** (Table II, Figure 2, §V) — see DESIGN.md
//! §5; the attack *verdicts* never depend on the exact values, only the
//! reproduced magnitudes do.
//!
//! All stochastic draws made from these constants use the browser's seeded
//! RNG, so runs are reproducible.

use jsk_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// The browser engine being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Engine {
    /// Google Chrome (Blink/V8).
    Chrome,
    /// Mozilla Firefox (Gecko/SpiderMonkey).
    Firefox,
    /// Microsoft Edge (EdgeHTML/Chakra, the version evaluated in 2019).
    Edge,
}

impl Engine {
    /// Human-readable engine name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Chrome => "Chrome",
            Engine::Firefox => "Firefox",
            Engine::Edge => "Edge",
        }
    }
}

/// Explicit-clock behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockSpec {
    /// Quantization of `performance.now()` (Chrome ships 5 µs, Firefox and
    /// Edge 1 ms in the evaluated versions).
    pub perf_precision: SimDuration,
    /// Quantization of `Date.now()`.
    pub date_precision: SimDuration,
    /// CPU cost of one clock read (a builtin call).
    pub call_cost: SimDuration,
}

/// Event-loop and timer behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedSpec {
    /// Minimum `setTimeout` delay.
    pub timer_min_clamp: SimDuration,
    /// Minimum delay once timers nest deeper than
    /// [`nesting_threshold`](Self::nesting_threshold) (the HTML spec's 4 ms).
    pub timer_nested_clamp: SimDuration,
    /// Nesting depth beyond which the nested clamp applies.
    pub nesting_threshold: u32,
    /// Fixed event-loop cost of dispatching one task.
    pub dispatch_overhead: SimDuration,
    /// Base cross-thread `postMessage` delivery latency.
    pub message_latency: SimDuration,
    /// Relative jitter on message latency.
    pub message_jitter: f64,
    /// Relative jitter on timer firing.
    pub timer_jitter: f64,
    /// Display refresh interval driving `requestAnimationFrame`.
    pub vsync: SimDuration,
    /// Cost of spawning a worker thread.
    pub worker_spawn: SimDuration,
}

/// CPU cost model for the operations the attacks measure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Cost of one cheap scripted operation (`i++`).
    pub op_cost: SimDuration,
    /// Relative jitter applied to compute costs.
    pub jitter: f64,
    /// Fixed part of applying an SVG filter.
    pub svg_filter_base: SimDuration,
    /// Per-pixel part of applying an SVG filter.
    pub svg_filter_per_px: SimDuration,
    /// Script parsing cost per megabyte (drives Figure 2).
    pub parse_per_mb: SimDuration,
    /// Image decoding cost per megabyte.
    pub decode_per_mb: SimDuration,
    /// Cost of one normal-range floating-point operation.
    pub float_normal: SimDuration,
    /// Cost of one subnormal floating-point operation (the timing channel of
    /// the floating-point attack).
    pub float_subnormal: SimDuration,
    /// Repaint cost of a *visited* link (history sniffing channel).
    pub visited_paint: SimDuration,
    /// Repaint cost of an *unvisited* link.
    pub unvisited_paint: SimDuration,
    /// Cost of `appendChild`.
    pub dom_append: SimDuration,
    /// Cost of one attribute get/set (drives the Dromaeo DOM-attribute test).
    pub dom_attr: SimDuration,
    /// Cost of opening an IndexedDB database.
    pub idb_open: SimDuration,
    /// Access cost when content is in the shared cache.
    pub cache_hit: SimDuration,
    /// Access cost when content has been flushed from the cache.
    pub cache_miss: SimDuration,
}

/// Network model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Base round-trip latency.
    pub latency: SimDuration,
    /// Relative jitter on latency.
    pub jitter: f64,
    /// Throughput (the paper's testbed: an ADSL line at 9.5 Mbit/s).
    pub bytes_per_ms: u64,
    /// Latency of an HTTP-cache hit (no network).
    pub cache_hit_latency: SimDuration,
}

/// A complete engine timing profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrowserProfile {
    /// Which engine these constants model.
    pub engine: Engine,
    /// Clock behaviour.
    pub clock: ClockSpec,
    /// Scheduler behaviour.
    pub sched: SchedSpec,
    /// CPU cost model.
    pub cpu: CpuSpec,
    /// Network model.
    pub net: NetSpec,
    /// Whether `SharedArrayBuffer` is enabled (disabled in most evaluated
    /// browsers post-Spectre).
    pub sab_enabled: bool,
    /// Multiplier applied to site-workload task durations (per-engine
    /// event-loop pacing; calibrated against the Loopscan row of Table II).
    pub site_task_scale: f64,
}

const US: u64 = 1_000;
const MS: u64 = 1_000_000;

fn ns(v: u64) -> SimDuration {
    SimDuration::from_nanos(v)
}

impl BrowserProfile {
    /// The Chrome profile.
    #[must_use]
    pub fn chrome() -> Self {
        BrowserProfile {
            engine: Engine::Chrome,
            clock: ClockSpec {
                perf_precision: ns(5 * US),
                date_precision: ns(MS),
                // A clock read crosses the binding layer and queries
                // TimeTicks — a few hundred nanoseconds end to end.
                call_cost: ns(150),
            },
            sched: SchedSpec {
                timer_min_clamp: ns(MS),
                timer_nested_clamp: ns(4 * MS),
                nesting_threshold: 5,
                dispatch_overhead: ns(4 * US),
                message_latency: ns(80 * US),
                message_jitter: 0.15,
                timer_jitter: 0.05,
                vsync: ns(16_667 * US),
                worker_spawn: ns(900 * US),
            },
            cpu: CpuSpec {
                op_cost: ns(14),
                jitter: 0.08,
                // Calibrated: 256² px → 16.66 ms, 512² px → 18.85 ms (Table II).
                svg_filter_base: ns(15_930 * US),
                svg_filter_per_px: ns(11),
                parse_per_mb: ns(1_250 * US),
                decode_per_mb: ns(2_100 * US),
                float_normal: ns(2),
                float_subnormal: ns(42),
                visited_paint: ns(620 * US),
                unvisited_paint: ns(410 * US),
                dom_append: ns(9 * US),
                dom_attr: ns(350),
                idb_open: ns(2 * MS),
                cache_hit: ns(180 * US),
                cache_miss: ns(4_600 * US),
            },
            net: NetSpec {
                latency: ns(22 * MS),
                jitter: 0.30,
                bytes_per_ms: 1_187, // 9.5 Mbit/s ADSL
                cache_hit_latency: ns(250 * US),
            },
            sab_enabled: false,
            site_task_scale: 1.0,
        }
    }

    /// The Firefox profile.
    #[must_use]
    pub fn firefox() -> Self {
        let mut p = BrowserProfile::chrome();
        p.engine = Engine::Firefox;
        p.clock.perf_precision = ns(MS);
        p.cpu.op_cost = ns(18);
        // Calibrated: 256² px → 16.27 ms, 512² px → 17.12 ms (Table II).
        p.cpu.svg_filter_base = ns(15_990 * US);
        p.cpu.svg_filter_per_px = ns(4);
        p.cpu.parse_per_mb = ns(1_400 * US);
        p.cpu.decode_per_mb = ns(2_400 * US);
        p.cpu.float_subnormal = ns(55);
        p.sched.message_latency = ns(110 * US);
        p.sched.worker_spawn = ns(1_100 * US);
        // Firefox's event loop paces site tasks much more coarsely in the
        // Loopscan measurements (50/74 ms vs Chrome's 4.5/8.8 ms).
        p.site_task_scale = 7.0;
        p
    }

    /// The (EdgeHTML) Edge profile.
    #[must_use]
    pub fn edge() -> Self {
        let mut p = BrowserProfile::chrome();
        p.engine = Engine::Edge;
        p.clock.perf_precision = ns(MS);
        p.cpu.op_cost = ns(22);
        // Calibrated: 256² px → 23.85 ms, 512² px → 25.66 ms (Table II).
        p.cpu.svg_filter_base = ns(23_250 * US);
        p.cpu.svg_filter_per_px = ns(9);
        p.cpu.parse_per_mb = ns(1_600 * US);
        p.cpu.decode_per_mb = ns(2_800 * US);
        p.cpu.float_subnormal = ns(60);
        p.sched.message_latency = ns(140 * US);
        p.sched.worker_spawn = ns(1_400 * US);
        p.site_task_scale = 4.3;
        p
    }

    /// The profile for the engine `e`.
    #[must_use]
    pub fn for_engine(e: Engine) -> Self {
        match e {
            Engine::Chrome => Self::chrome(),
            Engine::Firefox => Self::firefox(),
            Engine::Edge => Self::edge(),
        }
    }

    /// SVG-filter cost for an image of `px` pixels (before jitter).
    #[must_use]
    pub fn svg_filter_cost(&self, px: u64) -> SimDuration {
        self.cpu.svg_filter_base + self.cpu.svg_filter_per_px * px
    }

    /// Script-parse cost for `bytes` of source (before jitter).
    #[must_use]
    pub fn parse_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(self.cpu.parse_per_mb.as_nanos() * bytes / (1 << 20))
    }

    /// Image-decode cost for `bytes` of data (before jitter).
    #[must_use]
    pub fn decode_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(self.cpu.decode_per_mb.as_nanos() * bytes / (1 << 20))
    }

    /// Network transfer duration for `bytes` (before jitter, excluding
    /// latency).
    #[must_use]
    pub fn transfer_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes / self.net.bytes_per_ms.max(1) * MS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_costs_match_table2_calibration() {
        let c = BrowserProfile::chrome();
        let low = c.svg_filter_cost(256 * 256).as_millis_f64();
        let high = c.svg_filter_cost(512 * 512).as_millis_f64();
        assert!((low - 16.66).abs() < 0.3, "chrome low {low}");
        assert!((high - 18.85).abs() < 0.3, "chrome high {high}");

        let f = BrowserProfile::firefox();
        assert!((f.svg_filter_cost(256 * 256).as_millis_f64() - 16.27).abs() < 0.3);
        let e = BrowserProfile::edge();
        assert!((e.svg_filter_cost(256 * 256).as_millis_f64() - 23.85).abs() < 0.3);
    }

    #[test]
    fn parse_cost_scales_linearly_with_size() {
        let c = BrowserProfile::chrome();
        let two = c.parse_cost(2 << 20);
        let ten = c.parse_cost(10 << 20);
        assert_eq!(ten.as_nanos(), two.as_nanos() * 5);
    }

    #[test]
    fn transfer_matches_adsl_bandwidth() {
        let c = BrowserProfile::chrome();
        // 1 MB at 9.5 Mbit/s ≈ 880 ms.
        let d = c.transfer_cost(1 << 20).as_millis_f64();
        assert!((d - 883.0).abs() < 10.0, "{d}");
    }

    #[test]
    fn engine_lookup_and_names() {
        for e in [Engine::Chrome, Engine::Firefox, Engine::Edge] {
            assert_eq!(BrowserProfile::for_engine(e).engine, e);
            assert!(!e.name().is_empty());
        }
    }

    #[test]
    fn subnormal_floats_are_slower() {
        for e in [Engine::Chrome, Engine::Firefox, Engine::Edge] {
            let p = BrowserProfile::for_engine(e);
            assert!(p.cpu.float_subnormal > p.cpu.float_normal);
        }
    }

    #[test]
    fn visited_paint_differs_from_unvisited() {
        let p = BrowserProfile::chrome();
        assert!(p.cpu.visited_paint > p.cpu.unvisited_paint);
    }
}
