//! Worker objects, transferable buffers, abort signals, and the
//! SharedArrayBuffer table.
//!
//! A [`WorkerRecord`] is the browser-internal view of a user-visible
//! `Worker` object; its lifecycle states mirror the paper's thread manager
//! (§III-E1: "started", "ready", "closed"). Transferable
//! [`BufferRecord`]s model the `ArrayBuffer` semantics behind
//! CVE-2014-1488; [`SignalRecord`]s model `AbortController` signals behind
//! CVE-2018-5092.

use crate::ids::{BufferId, RequestId, SignalId, ThreadId, WorkerId};
use crate::task::Callback;
use std::collections::HashSet;

/// Lifecycle state of a worker (paper §III-E1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// The kernel thread exists but the user script has not run yet.
    Started,
    /// The user script ran; the worker processes messages.
    Ready,
    /// Teardown has begun (the CVE-2013-5602 window).
    Closing,
    /// Fully torn down.
    Closed,
}

/// Browser-internal record of one `Worker` object.
pub struct WorkerRecord {
    /// The worker's id (the user-visible handle).
    pub id: WorkerId,
    /// The thread executing it (equals the owner's thread for polyfill
    /// workers).
    pub thread: ThreadId,
    /// The creating thread.
    pub owner: ThreadId,
    /// Lifecycle state.
    pub state: WorkerState,
    /// The script URL it was created from.
    pub src: String,
    /// Whether this is a Chrome-Zero-style polyfill worker running
    /// cooperatively on the owner's thread.
    pub polyfill: bool,
    /// Whether user space terminated it while a defense kept the real
    /// thread alive (`ApiOutcome::DeferTermination`).
    pub user_terminated: bool,
    /// Buffers this worker transferred to other threads that are still
    /// backed by its allocator (freed when the worker dies — the native
    /// CVE-2014-1488 bug).
    pub transferred_out: Vec<BufferId>,
    /// Network requests this worker has in flight.
    pub pending_fetches: HashSet<RequestId>,
    /// Document generation of the owner at creation time (used for the
    /// freed-document message window, CVE-2014-3194).
    pub created_gen: u64,
    /// For polyfill workers: the "self.onmessage" handler, which cannot
    /// live on a thread of its own.
    pub poly_onmessage: Option<Callback>,
    /// `worker.onmessage` handler registered by the owner on the Worker
    /// object.
    pub owner_onmessage: Option<Callback>,
    /// `worker.onerror` handler registered by the owner on the Worker
    /// object.
    pub owner_onerror: Option<Callback>,
    /// `onerror` handler registered by the owner on the Worker object.
    pub onerror_set: bool,
    /// HB node of the task that created the worker (create→first-run edge).
    pub created_by_node: Option<u64>,
    /// HB node of the task that initiated teardown, when teardown is
    /// asynchronous (the synthetic teardown node forks from it).
    pub closed_by_node: Option<u64>,
}

impl WorkerRecord {
    /// Whether the user-visible worker accepts messages.
    #[must_use]
    pub fn user_alive(&self) -> bool {
        !self.user_terminated && !matches!(self.state, WorkerState::Closed)
    }
}

impl std::fmt::Debug for WorkerRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerRecord")
            .field("id", &self.id)
            .field("thread", &self.thread)
            .field("state", &self.state)
            .field("polyfill", &self.polyfill)
            .field("user_terminated", &self.user_terminated)
            .finish()
    }
}

/// A transferable `ArrayBuffer`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferRecord {
    /// The buffer's id.
    pub id: BufferId,
    /// Current owning thread (changes on transfer).
    pub owner: ThreadId,
    /// Length in bytes.
    pub len: usize,
    /// Whether the native backing store has been freed.
    pub freed: bool,
    /// The worker whose allocator still backs this buffer after a transfer
    /// out of it (the CVE-2014-1488 tie).
    pub backed_by_worker: Option<WorkerId>,
}

/// An `AbortController` signal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SignalRecord {
    /// Whether `abort()` has been called.
    pub aborted: bool,
    /// Requests listening on this signal.
    pub requests: Vec<RequestId>,
}

/// Lifecycle state of a network request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestState {
    /// In flight.
    Pending,
    /// Response (or network error) delivered.
    Settled,
    /// Aborted.
    Aborted,
}

/// A network request record.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// The request's id.
    pub id: RequestId,
    /// The issuing thread.
    pub thread: ThreadId,
    /// Target URL.
    pub url: String,
    /// State.
    pub state: RequestState,
    /// Attached abort signal, if any.
    pub signal: Option<SignalId>,
    /// Document generation at issue time.
    pub doc_generation: u64,
    /// Whether the issuing thread was still alive at last transition
    /// (cleared when the owner dies with the request pending — the
    /// dangling-request state of CVE-2018-5092).
    pub owner_alive: bool,
}

/// A SharedArrayBuffer: memory shared between threads.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedBuffer {
    /// Backing cells.
    pub cells: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> WorkerRecord {
        WorkerRecord {
            id: WorkerId::new(0),
            thread: ThreadId::new(1),
            owner: ThreadId::new(0),
            state: WorkerState::Ready,
            src: "worker.js".into(),
            polyfill: false,
            user_terminated: false,
            transferred_out: Vec::new(),
            pending_fetches: HashSet::new(),
            created_gen: 0,
            poly_onmessage: None,
            owner_onmessage: None,
            owner_onerror: None,
            onerror_set: false,
            created_by_node: None,
            closed_by_node: None,
        }
    }

    #[test]
    fn user_alive_tracks_state_and_user_termination() {
        let mut w = record();
        assert!(w.user_alive());
        w.user_terminated = true;
        assert!(!w.user_alive());
        let mut w2 = record();
        w2.state = WorkerState::Closed;
        assert!(!w2.user_alive());
        let mut w3 = record();
        w3.state = WorkerState::Closing;
        assert!(
            w3.user_alive(),
            "closing workers still accept (that's the 5602 window)"
        );
    }

    #[test]
    fn signal_default_is_unaborted() {
        let s = SignalRecord::default();
        assert!(!s.aborted);
        assert!(s.requests.is_empty());
    }
}
