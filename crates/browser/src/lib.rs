//! # jsk-browser — the event-driven browser substrate
//!
//! A deterministic discrete-event simulation of an event-driven web browser:
//! per-thread event loops, web workers, timers, `postMessage`,
//! `requestAnimationFrame`, `fetch` with a network/cache model, a minimal
//! DOM, and per-engine timing profiles (Chrome / Firefox / Edge).
//!
//! Everything user scripts can observe flows through the [`mediator`]
//! interposition seam — the place where the paper's defenses (including the
//! JSKernel in `jsk-core`) live. The "native" semantics include the bugs of
//! the vulnerable browser versions the paper evaluates; the trace they emit
//! feeds the vulnerability oracle in `jsk-vuln`.
//!
//! # Examples
//!
//! ```
//! use jsk_browser::browser::{Browser, BrowserConfig};
//! use jsk_browser::mediator::LegacyMediator;
//! use jsk_browser::profile::BrowserProfile;
//! use jsk_browser::task::{cb, worker_script};
//! use jsk_browser::value::JsValue;
//!
//! let cfg = BrowserConfig::new(BrowserProfile::chrome(), 7);
//! let mut browser = Browser::new(cfg, Box::new(LegacyMediator));
//! browser.boot(|scope| {
//!     // Listing 1's skeleton: a worker posts; the main thread counts.
//!     let worker = scope.create_worker("worker.js", worker_script(|scope| {
//!         scope.post_message(JsValue::from(1.0));
//!     }));
//!     scope.set_worker_onmessage(worker, cb(|scope, msg| {
//!         scope.record("got", msg);
//!     }));
//! });
//! browser.run_until_idle();
//! assert_eq!(browser.record_value("got"), Some(&JsValue::from(1.0)));
//! ```

pub mod browser;
pub mod dom;
pub mod event;
pub mod ids;
pub mod mediator;
pub mod net;
pub mod profile;
pub mod scope;
pub mod task;
pub mod thread;
pub mod trace;
pub mod value;
pub mod worker;

pub use browser::{Browser, BrowserConfig};
pub use ids::{ThreadId, WorkerId, MAIN_THREAD};
pub use mediator::{LegacyMediator, Mediator};
pub use profile::{BrowserProfile, Engine};
pub use scope::JsScope;
pub use task::{cb, worker_script, Callback, WorkerScript};
pub use value::JsValue;
