//! The API trace: what the vulnerability oracle observes.
//!
//! The browser records two kinds of entries:
//!
//! * [`ApiCall`] — a JavaScript built-in invocation *about to happen*
//!   (these are also what defense mediators intercept);
//! * [`Fact`] — a semantic consequence that *did happen* inside the
//!   "native" browser (a worker really terminated, an abort signal really
//!   reached a freed request, an error message really carried cross-origin
//!   data, …).
//!
//! The CVE detectors in `jsk-vuln` are state machines over this trace: a
//! vulnerability is *triggered* exactly when its documented sequence of
//! facts occurs. A defense succeeds by preventing the sequence, never by
//! muting the trace.

use crate::ids::{BufferId, NodeId, RequestId, SabId, ThreadId, WorkerId};
use jsk_sim::time::SimTime;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;

/// An interned string: an index into the owning [`Trace`]'s string table.
///
/// Trace records are hot-path appends — one per intercepted API call, fact,
/// task node, and shared-state access — so they store string payloads (URLs,
/// script names, error messages, call-site labels) as symbols instead of
/// owned `String`s. Interning makes every record `Copy` (appending never
/// allocates for a string the trace has seen before) and lets analysis
/// passes key dedup maps on a `u32` instead of cloning strings.
///
/// A symbol is only meaningful together with the [`Interner`] that issued
/// it; resolve through [`Trace::resolve`] (or [`Interner::resolve`]).
/// Serializes as its raw index; the table travels with the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Sym(u32);

impl Sym {
    /// The raw table index, for keying maps on an integer.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// A deterministic string table: the first occurrence of each distinct
/// string gets the next index, so identical record sequences always produce
/// identical symbol assignments (and thus byte-identical serialized traces)
/// regardless of how many analysis jobs run concurrently.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Returns the symbol for `s`, interning it on first sight.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&i) = self.index.get(s) {
            return Sym(i);
        }
        let i = u32::try_from(self.strings.len()).expect("interner overflow: > u32::MAX strings");
        self.strings.push(s.to_owned());
        self.index.insert(s.to_owned(), i);
        Sym(i)
    }

    /// The string behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol came from a different interner (index out of
    /// range). A foreign symbol with an in-range index resolves to the
    /// wrong string — symbols are only meaningful with their own table.
    #[must_use]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no strings have been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// Two interners are equal when their tables match; the lookup index is
/// derived state.
impl PartialEq for Interner {
    fn eq(&self, other: &Interner) -> bool {
        self.strings == other.strings
    }
}

/// Serializes as the bare string table (the index is rebuilt on read).
impl Serialize for Interner {
    fn to_value(&self) -> Value {
        self.strings.to_value()
    }
}

impl Deserialize for Interner {
    fn from_value(v: &Value) -> Result<Interner, DeError> {
        let strings = Vec::<String>::from_value(v)?;
        let index = strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), u32::try_from(i).expect("interner overflow")))
            .collect();
        Ok(Interner { strings, index })
    }
}

/// Which API produced an error message (disambiguates the two error-leak
/// CVEs, 2014-1487 vs 2015-7215).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorSource {
    /// Worker creation failed (`new Worker(...)` + `onerror`).
    WorkerCreation,
    /// `importScripts(...)` failed inside a worker.
    ImportScripts,
}

/// Why a worker is being torn down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TerminationReason {
    /// `worker.terminate()` from the owner.
    Explicit,
    /// `self.close()` from inside the worker.
    SelfClose,
    /// The owning document closed or navigated away — the paper's "false
    /// termination" path (Listing 2).
    DocumentTeardown,
    /// The worker's thread died abruptly (fault-injected crash).
    Crash,
}

/// A JavaScript built-in invocation, as seen by defense mediators and the
/// trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ApiCall {
    /// `new Worker(src)`.
    CreateWorker {
        /// The creating thread.
        parent: ThreadId,
        /// The worker handle being created.
        worker: WorkerId,
        /// Script name (the `src` URL), interned in the owning trace.
        src: Sym,
        /// Whether the creating context is a sandboxed frame.
        sandboxed: bool,
    },
    /// Worker teardown about to proceed.
    TerminateWorker {
        /// The worker being terminated.
        worker: WorkerId,
        /// Why.
        reason: TerminationReason,
        /// `true` when the owner thread is currently dispatching a message
        /// from this very worker (CVE-2014-1719's window).
        during_dispatch: bool,
        /// Number of buffers this worker transferred out that are still live.
        live_transfers: usize,
        /// Number of this worker's network requests still pending.
        pending_fetches: usize,
    },
    /// `postMessage` between threads.
    PostMessage {
        /// Sender.
        from: ThreadId,
        /// Receiver thread.
        to: ThreadId,
        /// Number of transferred buffers.
        transfer_count: usize,
        /// `true` when the receiving side's document has been freed
        /// (navigated/closed) — CVE-2014-3194's window.
        to_doc_freed: bool,
    },
    /// Assignment to `worker.onmessage` / `self.onmessage`.
    SetOnMessage {
        /// The assigning thread.
        thread: ThreadId,
        /// The worker object assigned to, when assigning from the owner.
        worker: Option<WorkerId>,
        /// `true` when that worker is in its closing state (CVE-2013-5602).
        worker_closing: bool,
    },
    /// `fetch(url, {signal})`.
    Fetch {
        /// The requesting thread.
        thread: ThreadId,
        /// Request id.
        req: RequestId,
        /// Target URL, interned in the owning trace.
        url: Sym,
        /// Whether an abort signal is attached.
        has_signal: bool,
    },
    /// An abort is about to be delivered to a request.
    DeliverAbort {
        /// The request being aborted.
        req: RequestId,
        /// The thread that issued the request.
        owner: ThreadId,
        /// Whether that thread is still alive.
        owner_alive: bool,
    },
    /// `XMLHttpRequest.send()`.
    XhrSend {
        /// The requesting thread.
        thread: ThreadId,
        /// `true` when issued from a worker.
        from_worker: bool,
        /// Target URL, interned in the owning trace.
        url: Sym,
        /// Whether the URL is cross-origin for the requesting context.
        cross_origin: bool,
    },
    /// `importScripts(url)` inside a worker.
    ImportScripts {
        /// The worker thread.
        thread: ThreadId,
        /// Target URL, interned in the owning trace.
        url: Sym,
        /// Whether the URL is cross-origin.
        cross_origin: bool,
    },
    /// An error event about to be delivered with a message string.
    ErrorEvent {
        /// Receiving thread.
        thread: ThreadId,
        /// The raw (native) message text, interned in the owning trace.
        message: Sym,
        /// Whether the message embeds cross-origin information.
        leaks_cross_origin: bool,
    },
    /// `indexedDB.open(...)`.
    IdbOpen {
        /// The requesting thread.
        thread: ThreadId,
        /// Whether the browsing session is in private mode.
        private_mode: bool,
        /// Whether the open requests durable persistence.
        persist: bool,
    },
    /// Document navigation (`location = …`).
    Navigate {
        /// The navigating thread (main).
        thread: ThreadId,
    },
    /// Document/window close.
    CloseDocument {
        /// The closing thread (main).
        thread: ThreadId,
        /// Worker-message tasks still queued on this thread.
        pending_worker_messages: usize,
    },
    /// An access to a (possibly transferred/freed) `ArrayBuffer`.
    BufferAccess {
        /// Accessing thread.
        thread: ThreadId,
        /// The buffer.
        buffer: BufferId,
        /// Whether the native buffer backing store has been freed.
        freed: bool,
    },
    /// A read of an instruction-level-parallelism racing counter (Hacky
    /// Racers): a timer built from superscalar execution-unit contention
    /// rather than any clock API, so timer coarsening never touches it.
    IlpCounterRead {
        /// Reading thread.
        thread: ThreadId,
        /// Parallel increment chains raced against the measured work.
        chains: u32,
    },
}

impl ApiCall {
    /// A human-readable one-line description with interned strings resolved
    /// — the text recorded as [`Fact::Denied`]'s `what`. Mirrors the
    /// derive-`Debug` struct-variant layout, with `Sym` fields shown as the
    /// quoted strings they stand for.
    #[must_use]
    pub fn describe(&self, strings: &Interner) -> String {
        let s = |sym: &Sym| strings.resolve(*sym);
        match self {
            ApiCall::CreateWorker {
                parent,
                worker,
                src,
                sandboxed,
            } => format!(
                "CreateWorker {{ parent: {parent:?}, worker: {worker:?}, src: {:?}, sandboxed: {sandboxed:?} }}",
                s(src)
            ),
            ApiCall::TerminateWorker {
                worker,
                reason,
                during_dispatch,
                live_transfers,
                pending_fetches,
            } => format!(
                "TerminateWorker {{ worker: {worker:?}, reason: {reason:?}, during_dispatch: {during_dispatch:?}, live_transfers: {live_transfers:?}, pending_fetches: {pending_fetches:?} }}"
            ),
            ApiCall::PostMessage {
                from,
                to,
                transfer_count,
                to_doc_freed,
            } => format!(
                "PostMessage {{ from: {from:?}, to: {to:?}, transfer_count: {transfer_count:?}, to_doc_freed: {to_doc_freed:?} }}"
            ),
            ApiCall::SetOnMessage {
                thread,
                worker,
                worker_closing,
            } => format!(
                "SetOnMessage {{ thread: {thread:?}, worker: {worker:?}, worker_closing: {worker_closing:?} }}"
            ),
            ApiCall::Fetch {
                thread,
                req,
                url,
                has_signal,
            } => format!(
                "Fetch {{ thread: {thread:?}, req: {req:?}, url: {:?}, has_signal: {has_signal:?} }}",
                s(url)
            ),
            ApiCall::DeliverAbort {
                req,
                owner,
                owner_alive,
            } => format!(
                "DeliverAbort {{ req: {req:?}, owner: {owner:?}, owner_alive: {owner_alive:?} }}"
            ),
            ApiCall::XhrSend {
                thread,
                from_worker,
                url,
                cross_origin,
            } => format!(
                "XhrSend {{ thread: {thread:?}, from_worker: {from_worker:?}, url: {:?}, cross_origin: {cross_origin:?} }}",
                s(url)
            ),
            ApiCall::ImportScripts {
                thread,
                url,
                cross_origin,
            } => format!(
                "ImportScripts {{ thread: {thread:?}, url: {:?}, cross_origin: {cross_origin:?} }}",
                s(url)
            ),
            ApiCall::ErrorEvent {
                thread,
                message,
                leaks_cross_origin,
            } => format!(
                "ErrorEvent {{ thread: {thread:?}, message: {:?}, leaks_cross_origin: {leaks_cross_origin:?} }}",
                s(message)
            ),
            ApiCall::IdbOpen {
                thread,
                private_mode,
                persist,
            } => format!(
                "IdbOpen {{ thread: {thread:?}, private_mode: {private_mode:?}, persist: {persist:?} }}"
            ),
            ApiCall::Navigate { thread } => format!("Navigate {{ thread: {thread:?} }}"),
            ApiCall::CloseDocument {
                thread,
                pending_worker_messages,
            } => format!(
                "CloseDocument {{ thread: {thread:?}, pending_worker_messages: {pending_worker_messages:?} }}"
            ),
            ApiCall::BufferAccess {
                thread,
                buffer,
                freed,
            } => format!(
                "BufferAccess {{ thread: {thread:?}, buffer: {buffer:?}, freed: {freed:?} }}"
            ),
            ApiCall::IlpCounterRead { thread, chains } => {
                format!("IlpCounterRead {{ thread: {thread:?}, chains: {chains:?} }}")
            }
        }
    }
}

/// A semantic consequence recorded after the "native" behaviour executed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fact {
    /// A fetch went on the wire.
    FetchStarted {
        /// Request id.
        req: RequestId,
        /// Issuing thread.
        thread: ThreadId,
        /// Whether an abort signal is attached.
        has_signal: bool,
    },
    /// A fetch settled (response or network error).
    FetchSettled {
        /// Request id.
        req: RequestId,
        /// `true` on success.
        ok: bool,
    },
    /// An abort signal reached a request.
    AbortDelivered {
        /// Request id.
        req: RequestId,
        /// The thread that issued the request.
        owner: ThreadId,
        /// Whether that thread was still alive — `false` is the
        /// CVE-2018-5092 use-after-free.
        owner_alive: bool,
    },
    /// A worker thread came up.
    WorkerStarted {
        /// Worker handle.
        worker: WorkerId,
        /// Its thread.
        thread: ThreadId,
        /// Owner thread.
        parent: ThreadId,
        /// Whether the creating context was sandboxed.
        sandboxed_parent: bool,
        /// Whether the worker inherited the parent's origin (`true` is the
        /// CVE-2011-1190 bug when `sandboxed_parent`).
        inherited_origin: bool,
    },
    /// A worker thread was torn down.
    WorkerTerminated {
        /// Worker handle.
        worker: WorkerId,
        /// Why.
        reason: TerminationReason,
        /// Whether teardown happened while its message was mid-dispatch on
        /// the owner (CVE-2014-1719).
        during_dispatch: bool,
        /// Transferred buffers freed by this teardown (CVE-2014-1488 when
        /// non-zero).
        freed_transfers: usize,
        /// `true` when only the user-visible object was closed and the
        /// kernel kept the real thread alive (a defense outcome).
        user_level_only: bool,
    },
    /// A message was delivered to a thread whose document had been freed
    /// (CVE-2014-3194 / CVE-2010-4576 family).
    MessageToFreedDoc {
        /// Sender.
        from: ThreadId,
        /// Receiver.
        to: ThreadId,
    },
    /// A network completion callback ran against a document generation that
    /// had been navigated away (CVE-2010-4576).
    StaleDocCallback {
        /// The thread it ran on.
        thread: ThreadId,
    },
    /// An `onmessage` assignment landed on a closing worker and the native
    /// setter dereferenced a null inner pointer (CVE-2013-5602).
    NullDerefOnAssign {
        /// The worker assigned to.
        worker: WorkerId,
    },
    /// A cross-origin request actually left a worker (CVE-2013-1714).
    CrossOriginWorkerRequest {
        /// The worker thread.
        thread: ThreadId,
        /// Target URL, interned in the owning trace.
        url: Sym,
    },
    /// An error message string was delivered to user code.
    ErrorMessageDelivered {
        /// Receiving thread.
        thread: ThreadId,
        /// Which API produced it.
        source: ErrorSource,
        /// The delivered text, interned in the owning trace.
        message: Sym,
        /// Whether it still carried cross-origin information
        /// (CVE-2014-1487 / CVE-2015-7215 when `true`).
        leaked_cross_origin: bool,
    },
    /// IndexedDB data persisted during a private-mode session
    /// (CVE-2017-7843).
    IdbPersistedInPrivateMode {
        /// The requesting thread.
        thread: ThreadId,
    },
    /// A request was issued by a worker that inherited a sandboxed parent's
    /// origin (CVE-2011-1190: second half of the trigger).
    InheritedOriginRequest {
        /// The worker thread.
        thread: ThreadId,
    },
    /// A transferred buffer's backing store was freed while still owned by
    /// a live thread.
    TransferFreed {
        /// The buffer.
        buffer: BufferId,
    },
    /// A buffer access hit a freed backing store (CVE-2014-1488 trigger).
    FreedBufferAccess {
        /// The buffer.
        buffer: BufferId,
        /// The accessing thread.
        thread: ThreadId,
    },
    /// A worker-message callback ran on a thread after its document closed
    /// (CVE-2013-6646).
    CallbackAfterClose {
        /// The thread it ran on.
        thread: ThreadId,
    },
    /// A worker was terminated mid-dispatch and the dispatch frame touched
    /// freed memory (CVE-2014-1719 trigger).
    DispatchUseAfterFree {
        /// The worker.
        worker: WorkerId,
    },
    /// A defense denied an API call.
    Denied {
        /// Short description of the denied call (see [`ApiCall::describe`]),
        /// interned in the owning trace.
        what: Sym,
        /// The defense's reason, interned in the owning trace.
        reason: Sym,
    },
}

/// One unit of concurrency in the happens-before graph: a single dispatched
/// callback execution (a "task node", EventRacer-style). Node ids are
/// assigned monotonically in dispatch order, so every happens-before edge
/// points from a lower id to a higher one — the trace order is already a
/// topological order of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeRecord {
    /// The node id (dense, starting at 0).
    pub node: u64,
    /// The thread the task ran on.
    pub thread: ThreadId,
    /// The node that registered this task's event (the *fork* edge source):
    /// timer arm → fire, `postMessage` send → deliver, fetch → completion,
    /// worker create → first run. `None` for roots (the boot task).
    pub forked_from: Option<u64>,
    /// Short label of why the task ran (task source / lifecycle step),
    /// interned in the owning trace.
    pub label: Sym,
}

/// Which ordering mechanism induced a happens-before edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Registration → invocation (implicit in [`NodeRecord::forked_from`];
    /// also used for synthesized edges in analysis).
    Fork,
    /// The kernel's serialized dispatcher released these two tasks
    /// consecutively on one thread — a schedule-invariant order under the
    /// deterministic scheduling policy.
    DispatchChain,
    /// A kernel-space overlay message (`jsk_core::comm`) carried the
    /// sender's node to the receiving thread's next dispatched task.
    KernelComm,
}

/// An explicit happens-before ordering edge recorded by a mediator (the
/// kernel). Fork edges are *not* recorded this way — they live on the
/// [`NodeRecord`] itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HbEdge {
    /// Source node (happens before).
    pub from: u64,
    /// Target node (happens after).
    pub to: u64,
    /// The ordering mechanism.
    pub kind: EdgeKind,
}

/// What a memory/state access touched — the conflict domain of the race
/// detector. Two accesses conflict when their targets are equal and at
/// least one is a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessTarget {
    /// A thread's current document (navigation/close write it; callback
    /// deliveries read it).
    Document {
        /// The owning thread.
        thread: ThreadId,
    },
    /// A network request's state (start/settle/abort all write it).
    Request {
        /// The request.
        req: RequestId,
    },
    /// A worker's lifecycle state (create/terminate write it).
    WorkerLifecycle {
        /// The worker handle.
        worker: WorkerId,
    },
    /// An `ArrayBuffer` backing store (transfer-free writes; reads read).
    Buffer {
        /// The buffer.
        buffer: BufferId,
    },
    /// One `SharedArrayBuffer` cell.
    Sab {
        /// The SAB.
        sab: SabId,
        /// Cell index.
        idx: u64,
    },
    /// A DOM node (mutations write; attribute reads read).
    Dom {
        /// The DOM node.
        node: NodeId,
    },
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Observation only.
    Read,
    /// State mutation.
    Write,
}

/// One recorded shared-state access, attributed to the task node that
/// performed it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessRecord {
    /// The task node performing the access.
    pub node: u64,
    /// The thread it ran on.
    pub thread: ThreadId,
    /// What was touched.
    pub target: AccessTarget,
    /// Read or write.
    pub kind: AccessKind,
    /// Call-site label (e.g. `"navigate"`, `"abort-deliver"`) — the leaf of
    /// the access stack the race report prints. Interned in the owning
    /// trace.
    pub what: Sym,
}

/// One trace record. `Copy`: every payload string is interned, so records
/// are a few plain words and appending one never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceItem {
    /// An intercepted built-in invocation.
    Api(ApiCall),
    /// A native semantic consequence.
    Fact(Fact),
    /// A dispatched task node (happens-before graph vertex + fork edge).
    Node(NodeRecord),
    /// A kernel-recorded ordering edge.
    Edge(HbEdge),
    /// A shared-state access.
    Access(AccessRecord),
}

/// A timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Virtual instant.
    pub time: SimTime,
    /// The record.
    pub item: TraceItem,
}

/// The full API/fact trace of a browser run, plus the string table its
/// records' [`Sym`] fields index into.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    /// Defaulted on deserialize so symbol-free traces (and pre-interning
    /// ones) still parse.
    #[serde(default)]
    strings: Interner,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Interns a string in this trace's table.
    pub fn intern(&mut self, s: &str) -> Sym {
        self.strings.intern(s)
    }

    /// Resolves a symbol previously interned in this trace.
    #[must_use]
    pub fn resolve(&self, sym: Sym) -> &str {
        self.strings.resolve(sym)
    }

    /// The trace's string table.
    #[must_use]
    pub fn strings(&self) -> &Interner {
        &self.strings
    }

    /// Appends an API record.
    pub fn api(&mut self, time: SimTime, call: ApiCall) {
        self.entries.push(TraceEntry {
            time,
            item: TraceItem::Api(call),
        });
    }

    /// Appends a fact record.
    pub fn fact(&mut self, time: SimTime, fact: Fact) {
        self.entries.push(TraceEntry {
            time,
            item: TraceItem::Fact(fact),
        });
    }

    /// Appends a task-node record.
    pub fn node(&mut self, time: SimTime, node: NodeRecord) {
        self.entries.push(TraceEntry {
            time,
            item: TraceItem::Node(node),
        });
    }

    /// Appends an ordering-edge record.
    pub fn edge(&mut self, time: SimTime, edge: HbEdge) {
        self.entries.push(TraceEntry {
            time,
            item: TraceItem::Edge(edge),
        });
    }

    /// Appends a shared-state access record.
    pub fn access(&mut self, time: SimTime, access: AccessRecord) {
        self.entries.push(TraceEntry {
            time,
            item: TraceItem::Access(access),
        });
    }

    /// All records in order.
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Iterates over the facts in order.
    pub fn facts(&self) -> impl Iterator<Item = (&SimTime, &Fact)> {
        self.entries.iter().filter_map(|e| match &e.item {
            TraceItem::Fact(f) => Some((&e.time, f)),
            _ => None,
        })
    }

    /// Iterates over the API calls in order.
    pub fn apis(&self) -> impl Iterator<Item = (&SimTime, &ApiCall)> {
        self.entries.iter().filter_map(|e| match &e.item {
            TraceItem::Api(a) => Some((&e.time, a)),
            _ => None,
        })
    }

    /// Iterates over the task nodes in dispatch order.
    pub fn nodes(&self) -> impl Iterator<Item = (&SimTime, &NodeRecord)> {
        self.entries.iter().filter_map(|e| match &e.item {
            TraceItem::Node(n) => Some((&e.time, n)),
            _ => None,
        })
    }

    /// Iterates over the kernel-recorded ordering edges in order.
    pub fn edges(&self) -> impl Iterator<Item = (&SimTime, &HbEdge)> {
        self.entries.iter().filter_map(|e| match &e.item {
            TraceItem::Edge(ed) => Some((&e.time, ed)),
            _ => None,
        })
    }

    /// Iterates over the shared-state accesses in order.
    pub fn accesses(&self) -> impl Iterator<Item = (&SimTime, &AccessRecord)> {
        self.entries.iter().filter_map(|e| match &e.item {
            TraceItem::Access(a) => Some((&e.time, a)),
            _ => None,
        })
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_orders_and_filters() {
        let mut t = Trace::new();
        t.api(
            SimTime::from_millis(1),
            ApiCall::Navigate {
                thread: ThreadId::new(0),
            },
        );
        t.fact(
            SimTime::from_millis(2),
            Fact::StaleDocCallback {
                thread: ThreadId::new(0),
            },
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.apis().count(), 1);
        assert_eq!(t.facts().count(), 1);
        let (time, _) = t.facts().next().unwrap();
        assert_eq!(*time, SimTime::from_millis(2));
    }

    #[test]
    fn empty_trace_reports_empty() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.entries().len(), 0);
    }

    #[test]
    fn hb_records_filter_and_round_trip() {
        let mut t = Trace::new();
        let boot = t.intern("boot");
        t.node(
            SimTime::from_millis(1),
            NodeRecord {
                node: 0,
                thread: ThreadId::new(0),
                forked_from: None,
                label: boot,
            },
        );
        t.edge(
            SimTime::from_millis(2),
            HbEdge {
                from: 0,
                to: 1,
                kind: EdgeKind::DispatchChain,
            },
        );
        let navigate = t.intern("navigate");
        t.access(
            SimTime::from_millis(3),
            AccessRecord {
                node: 0,
                thread: ThreadId::new(0),
                target: AccessTarget::Document {
                    thread: ThreadId::new(0),
                },
                kind: AccessKind::Write,
                what: navigate,
            },
        );
        assert_eq!(t.nodes().count(), 1);
        assert_eq!(t.edges().count(), 1);
        assert_eq!(t.accesses().count(), 1);
        // HB records are invisible to the fact/api views the oracle uses.
        assert_eq!(t.facts().count(), 0);
        assert_eq!(t.apis().count(), 0);
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.resolve(boot), "boot");
        assert_eq!(back.resolve(navigate), "navigate");
    }

    #[test]
    fn interner_reuses_symbols_and_round_trips() {
        let mut t = Trace::new();
        let a = t.intern("worker.js");
        let b = t.intern("other.js");
        let a2 = t.intern("worker.js");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.strings().len(), 2);
        assert_eq!(t.resolve(a), "worker.js");
        assert_eq!(t.resolve(b), "other.js");
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.strings(), t.strings());
        // The rebuilt lookup index keeps assigning the same symbols.
        let mut back = back;
        assert_eq!(back.intern("other.js"), b);
    }

    /// Old traces serialized before the string table existed still parse:
    /// the `strings` field defaults to an empty interner.
    #[test]
    fn traces_without_a_string_table_still_parse() {
        let t: Trace = serde_json::from_str(r#"{"entries": []}"#).unwrap();
        assert!(t.is_empty());
        assert!(t.strings().is_empty());
    }

    /// `describe` must stay in lockstep with derive-`Debug` (modulo symbol
    /// resolution): `Fact::Denied.what` relies on it for readable output.
    #[test]
    fn describe_matches_derive_debug_with_symbols_resolved() {
        let mut t = Trace::new();
        let src = t.intern("w.js");
        let call = ApiCall::CreateWorker {
            parent: ThreadId::new(0),
            worker: WorkerId::new(3),
            src,
            sandboxed: true,
        };
        let debug = format!("{call:?}");
        let described = call.describe(t.strings());
        // Same shape, with the symbol replaced by its quoted string.
        assert_eq!(described, debug.replace(&format!("{src:?}"), "\"w.js\""));
        assert!(described.contains("src: \"w.js\""), "{described}");

        let plain = ApiCall::Navigate {
            thread: ThreadId::new(7),
        };
        assert_eq!(plain.describe(t.strings()), format!("{plain:?}"));
    }
}
