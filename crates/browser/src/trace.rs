//! The API trace: what the vulnerability oracle observes.
//!
//! The browser records two kinds of entries:
//!
//! * [`ApiCall`] — a JavaScript built-in invocation *about to happen*
//!   (these are also what defense mediators intercept);
//! * [`Fact`] — a semantic consequence that *did happen* inside the
//!   "native" browser (a worker really terminated, an abort signal really
//!   reached a freed request, an error message really carried cross-origin
//!   data, …).
//!
//! The CVE detectors in `jsk-vuln` are state machines over this trace: a
//! vulnerability is *triggered* exactly when its documented sequence of
//! facts occurs. A defense succeeds by preventing the sequence, never by
//! muting the trace.

use crate::ids::{BufferId, NodeId, RequestId, SabId, ThreadId, WorkerId};
use jsk_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Which API produced an error message (disambiguates the two error-leak
/// CVEs, 2014-1487 vs 2015-7215).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorSource {
    /// Worker creation failed (`new Worker(...)` + `onerror`).
    WorkerCreation,
    /// `importScripts(...)` failed inside a worker.
    ImportScripts,
}

/// Why a worker is being torn down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TerminationReason {
    /// `worker.terminate()` from the owner.
    Explicit,
    /// `self.close()` from inside the worker.
    SelfClose,
    /// The owning document closed or navigated away — the paper's "false
    /// termination" path (Listing 2).
    DocumentTeardown,
    /// The worker's thread died abruptly (fault-injected crash).
    Crash,
}

/// A JavaScript built-in invocation, as seen by defense mediators and the
/// trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ApiCall {
    /// `new Worker(src)`.
    CreateWorker {
        /// The creating thread.
        parent: ThreadId,
        /// The worker handle being created.
        worker: WorkerId,
        /// Script name (the `src` URL).
        src: String,
        /// Whether the creating context is a sandboxed frame.
        sandboxed: bool,
    },
    /// Worker teardown about to proceed.
    TerminateWorker {
        /// The worker being terminated.
        worker: WorkerId,
        /// Why.
        reason: TerminationReason,
        /// `true` when the owner thread is currently dispatching a message
        /// from this very worker (CVE-2014-1719's window).
        during_dispatch: bool,
        /// Number of buffers this worker transferred out that are still live.
        live_transfers: usize,
        /// Number of this worker's network requests still pending.
        pending_fetches: usize,
    },
    /// `postMessage` between threads.
    PostMessage {
        /// Sender.
        from: ThreadId,
        /// Receiver thread.
        to: ThreadId,
        /// Number of transferred buffers.
        transfer_count: usize,
        /// `true` when the receiving side's document has been freed
        /// (navigated/closed) — CVE-2014-3194's window.
        to_doc_freed: bool,
    },
    /// Assignment to `worker.onmessage` / `self.onmessage`.
    SetOnMessage {
        /// The assigning thread.
        thread: ThreadId,
        /// The worker object assigned to, when assigning from the owner.
        worker: Option<WorkerId>,
        /// `true` when that worker is in its closing state (CVE-2013-5602).
        worker_closing: bool,
    },
    /// `fetch(url, {signal})`.
    Fetch {
        /// The requesting thread.
        thread: ThreadId,
        /// Request id.
        req: RequestId,
        /// Target URL.
        url: String,
        /// Whether an abort signal is attached.
        has_signal: bool,
    },
    /// An abort is about to be delivered to a request.
    DeliverAbort {
        /// The request being aborted.
        req: RequestId,
        /// The thread that issued the request.
        owner: ThreadId,
        /// Whether that thread is still alive.
        owner_alive: bool,
    },
    /// `XMLHttpRequest.send()`.
    XhrSend {
        /// The requesting thread.
        thread: ThreadId,
        /// `true` when issued from a worker.
        from_worker: bool,
        /// Target URL.
        url: String,
        /// Whether the URL is cross-origin for the requesting context.
        cross_origin: bool,
    },
    /// `importScripts(url)` inside a worker.
    ImportScripts {
        /// The worker thread.
        thread: ThreadId,
        /// Target URL.
        url: String,
        /// Whether the URL is cross-origin.
        cross_origin: bool,
    },
    /// An error event about to be delivered with a message string.
    ErrorEvent {
        /// Receiving thread.
        thread: ThreadId,
        /// The raw (native) message text.
        message: String,
        /// Whether the message embeds cross-origin information.
        leaks_cross_origin: bool,
    },
    /// `indexedDB.open(...)`.
    IdbOpen {
        /// The requesting thread.
        thread: ThreadId,
        /// Whether the browsing session is in private mode.
        private_mode: bool,
        /// Whether the open requests durable persistence.
        persist: bool,
    },
    /// Document navigation (`location = …`).
    Navigate {
        /// The navigating thread (main).
        thread: ThreadId,
    },
    /// Document/window close.
    CloseDocument {
        /// The closing thread (main).
        thread: ThreadId,
        /// Worker-message tasks still queued on this thread.
        pending_worker_messages: usize,
    },
    /// An access to a (possibly transferred/freed) `ArrayBuffer`.
    BufferAccess {
        /// Accessing thread.
        thread: ThreadId,
        /// The buffer.
        buffer: BufferId,
        /// Whether the native buffer backing store has been freed.
        freed: bool,
    },
}

/// A semantic consequence recorded after the "native" behaviour executed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fact {
    /// A fetch went on the wire.
    FetchStarted {
        /// Request id.
        req: RequestId,
        /// Issuing thread.
        thread: ThreadId,
        /// Whether an abort signal is attached.
        has_signal: bool,
    },
    /// A fetch settled (response or network error).
    FetchSettled {
        /// Request id.
        req: RequestId,
        /// `true` on success.
        ok: bool,
    },
    /// An abort signal reached a request.
    AbortDelivered {
        /// Request id.
        req: RequestId,
        /// The thread that issued the request.
        owner: ThreadId,
        /// Whether that thread was still alive — `false` is the
        /// CVE-2018-5092 use-after-free.
        owner_alive: bool,
    },
    /// A worker thread came up.
    WorkerStarted {
        /// Worker handle.
        worker: WorkerId,
        /// Its thread.
        thread: ThreadId,
        /// Owner thread.
        parent: ThreadId,
        /// Whether the creating context was sandboxed.
        sandboxed_parent: bool,
        /// Whether the worker inherited the parent's origin (`true` is the
        /// CVE-2011-1190 bug when `sandboxed_parent`).
        inherited_origin: bool,
    },
    /// A worker thread was torn down.
    WorkerTerminated {
        /// Worker handle.
        worker: WorkerId,
        /// Why.
        reason: TerminationReason,
        /// Whether teardown happened while its message was mid-dispatch on
        /// the owner (CVE-2014-1719).
        during_dispatch: bool,
        /// Transferred buffers freed by this teardown (CVE-2014-1488 when
        /// non-zero).
        freed_transfers: usize,
        /// `true` when only the user-visible object was closed and the
        /// kernel kept the real thread alive (a defense outcome).
        user_level_only: bool,
    },
    /// A message was delivered to a thread whose document had been freed
    /// (CVE-2014-3194 / CVE-2010-4576 family).
    MessageToFreedDoc {
        /// Sender.
        from: ThreadId,
        /// Receiver.
        to: ThreadId,
    },
    /// A network completion callback ran against a document generation that
    /// had been navigated away (CVE-2010-4576).
    StaleDocCallback {
        /// The thread it ran on.
        thread: ThreadId,
    },
    /// An `onmessage` assignment landed on a closing worker and the native
    /// setter dereferenced a null inner pointer (CVE-2013-5602).
    NullDerefOnAssign {
        /// The worker assigned to.
        worker: WorkerId,
    },
    /// A cross-origin request actually left a worker (CVE-2013-1714).
    CrossOriginWorkerRequest {
        /// The worker thread.
        thread: ThreadId,
        /// Target URL.
        url: String,
    },
    /// An error message string was delivered to user code.
    ErrorMessageDelivered {
        /// Receiving thread.
        thread: ThreadId,
        /// Which API produced it.
        source: ErrorSource,
        /// The delivered text.
        message: String,
        /// Whether it still carried cross-origin information
        /// (CVE-2014-1487 / CVE-2015-7215 when `true`).
        leaked_cross_origin: bool,
    },
    /// IndexedDB data persisted during a private-mode session
    /// (CVE-2017-7843).
    IdbPersistedInPrivateMode {
        /// The requesting thread.
        thread: ThreadId,
    },
    /// A request was issued by a worker that inherited a sandboxed parent's
    /// origin (CVE-2011-1190: second half of the trigger).
    InheritedOriginRequest {
        /// The worker thread.
        thread: ThreadId,
    },
    /// A transferred buffer's backing store was freed while still owned by
    /// a live thread.
    TransferFreed {
        /// The buffer.
        buffer: BufferId,
    },
    /// A buffer access hit a freed backing store (CVE-2014-1488 trigger).
    FreedBufferAccess {
        /// The buffer.
        buffer: BufferId,
        /// The accessing thread.
        thread: ThreadId,
    },
    /// A worker-message callback ran on a thread after its document closed
    /// (CVE-2013-6646).
    CallbackAfterClose {
        /// The thread it ran on.
        thread: ThreadId,
    },
    /// A worker was terminated mid-dispatch and the dispatch frame touched
    /// freed memory (CVE-2014-1719 trigger).
    DispatchUseAfterFree {
        /// The worker.
        worker: WorkerId,
    },
    /// A defense denied an API call.
    Denied {
        /// Short description of the denied call.
        what: String,
        /// The defense's reason.
        reason: String,
    },
}

/// One unit of concurrency in the happens-before graph: a single dispatched
/// callback execution (a "task node", EventRacer-style). Node ids are
/// assigned monotonically in dispatch order, so every happens-before edge
/// points from a lower id to a higher one — the trace order is already a
/// topological order of the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeRecord {
    /// The node id (dense, starting at 0).
    pub node: u64,
    /// The thread the task ran on.
    pub thread: ThreadId,
    /// The node that registered this task's event (the *fork* edge source):
    /// timer arm → fire, `postMessage` send → deliver, fetch → completion,
    /// worker create → first run. `None` for roots (the boot task).
    pub forked_from: Option<u64>,
    /// Short label of why the task ran (task source / lifecycle step).
    pub label: String,
}

/// Which ordering mechanism induced a happens-before edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Registration → invocation (implicit in [`NodeRecord::forked_from`];
    /// also used for synthesized edges in analysis).
    Fork,
    /// The kernel's serialized dispatcher released these two tasks
    /// consecutively on one thread — a schedule-invariant order under the
    /// deterministic scheduling policy.
    DispatchChain,
    /// A kernel-space overlay message (`jsk_core::comm`) carried the
    /// sender's node to the receiving thread's next dispatched task.
    KernelComm,
}

/// An explicit happens-before ordering edge recorded by a mediator (the
/// kernel). Fork edges are *not* recorded this way — they live on the
/// [`NodeRecord`] itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HbEdge {
    /// Source node (happens before).
    pub from: u64,
    /// Target node (happens after).
    pub to: u64,
    /// The ordering mechanism.
    pub kind: EdgeKind,
}

/// What a memory/state access touched — the conflict domain of the race
/// detector. Two accesses conflict when their targets are equal and at
/// least one is a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessTarget {
    /// A thread's current document (navigation/close write it; callback
    /// deliveries read it).
    Document {
        /// The owning thread.
        thread: ThreadId,
    },
    /// A network request's state (start/settle/abort all write it).
    Request {
        /// The request.
        req: RequestId,
    },
    /// A worker's lifecycle state (create/terminate write it).
    WorkerLifecycle {
        /// The worker handle.
        worker: WorkerId,
    },
    /// An `ArrayBuffer` backing store (transfer-free writes; reads read).
    Buffer {
        /// The buffer.
        buffer: BufferId,
    },
    /// One `SharedArrayBuffer` cell.
    Sab {
        /// The SAB.
        sab: SabId,
        /// Cell index.
        idx: u64,
    },
    /// A DOM node (mutations write; attribute reads read).
    Dom {
        /// The DOM node.
        node: NodeId,
    },
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Observation only.
    Read,
    /// State mutation.
    Write,
}

/// One recorded shared-state access, attributed to the task node that
/// performed it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessRecord {
    /// The task node performing the access.
    pub node: u64,
    /// The thread it ran on.
    pub thread: ThreadId,
    /// What was touched.
    pub target: AccessTarget,
    /// Read or write.
    pub kind: AccessKind,
    /// Call-site label (e.g. `"navigate"`, `"abort-deliver"`) — the leaf of
    /// the access stack the race report prints.
    pub what: String,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceItem {
    /// An intercepted built-in invocation.
    Api(ApiCall),
    /// A native semantic consequence.
    Fact(Fact),
    /// A dispatched task node (happens-before graph vertex + fork edge).
    Node(NodeRecord),
    /// A kernel-recorded ordering edge.
    Edge(HbEdge),
    /// A shared-state access.
    Access(AccessRecord),
}

/// A timestamped trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Virtual instant.
    pub time: SimTime,
    /// The record.
    pub item: TraceItem,
}

/// The full API/fact trace of a browser run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an API record.
    pub fn api(&mut self, time: SimTime, call: ApiCall) {
        self.entries.push(TraceEntry {
            time,
            item: TraceItem::Api(call),
        });
    }

    /// Appends a fact record.
    pub fn fact(&mut self, time: SimTime, fact: Fact) {
        self.entries.push(TraceEntry {
            time,
            item: TraceItem::Fact(fact),
        });
    }

    /// Appends a task-node record.
    pub fn node(&mut self, time: SimTime, node: NodeRecord) {
        self.entries.push(TraceEntry {
            time,
            item: TraceItem::Node(node),
        });
    }

    /// Appends an ordering-edge record.
    pub fn edge(&mut self, time: SimTime, edge: HbEdge) {
        self.entries.push(TraceEntry {
            time,
            item: TraceItem::Edge(edge),
        });
    }

    /// Appends a shared-state access record.
    pub fn access(&mut self, time: SimTime, access: AccessRecord) {
        self.entries.push(TraceEntry {
            time,
            item: TraceItem::Access(access),
        });
    }

    /// All records in order.
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Iterates over the facts in order.
    pub fn facts(&self) -> impl Iterator<Item = (&SimTime, &Fact)> {
        self.entries.iter().filter_map(|e| match &e.item {
            TraceItem::Fact(f) => Some((&e.time, f)),
            _ => None,
        })
    }

    /// Iterates over the API calls in order.
    pub fn apis(&self) -> impl Iterator<Item = (&SimTime, &ApiCall)> {
        self.entries.iter().filter_map(|e| match &e.item {
            TraceItem::Api(a) => Some((&e.time, a)),
            _ => None,
        })
    }

    /// Iterates over the task nodes in dispatch order.
    pub fn nodes(&self) -> impl Iterator<Item = (&SimTime, &NodeRecord)> {
        self.entries.iter().filter_map(|e| match &e.item {
            TraceItem::Node(n) => Some((&e.time, n)),
            _ => None,
        })
    }

    /// Iterates over the kernel-recorded ordering edges in order.
    pub fn edges(&self) -> impl Iterator<Item = (&SimTime, &HbEdge)> {
        self.entries.iter().filter_map(|e| match &e.item {
            TraceItem::Edge(ed) => Some((&e.time, ed)),
            _ => None,
        })
    }

    /// Iterates over the shared-state accesses in order.
    pub fn accesses(&self) -> impl Iterator<Item = (&SimTime, &AccessRecord)> {
        self.entries.iter().filter_map(|e| match &e.item {
            TraceItem::Access(a) => Some((&e.time, a)),
            _ => None,
        })
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_orders_and_filters() {
        let mut t = Trace::new();
        t.api(
            SimTime::from_millis(1),
            ApiCall::Navigate {
                thread: ThreadId::new(0),
            },
        );
        t.fact(
            SimTime::from_millis(2),
            Fact::StaleDocCallback {
                thread: ThreadId::new(0),
            },
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.apis().count(), 1);
        assert_eq!(t.facts().count(), 1);
        let (time, _) = t.facts().next().unwrap();
        assert_eq!(*time, SimTime::from_millis(2));
    }

    #[test]
    fn empty_trace_reports_empty() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.entries().len(), 0);
    }

    #[test]
    fn hb_records_filter_and_round_trip() {
        let mut t = Trace::new();
        t.node(
            SimTime::from_millis(1),
            NodeRecord {
                node: 0,
                thread: ThreadId::new(0),
                forked_from: None,
                label: "boot".into(),
            },
        );
        t.edge(
            SimTime::from_millis(2),
            HbEdge {
                from: 0,
                to: 1,
                kind: EdgeKind::DispatchChain,
            },
        );
        t.access(
            SimTime::from_millis(3),
            AccessRecord {
                node: 0,
                thread: ThreadId::new(0),
                target: AccessTarget::Document {
                    thread: ThreadId::new(0),
                },
                kind: AccessKind::Write,
                what: "navigate".into(),
            },
        );
        assert_eq!(t.nodes().count(), 1);
        assert_eq!(t.edges().count(), 1);
        assert_eq!(t.accesses().count(), 1);
        // HB records are invisible to the fact/api views the oracle uses.
        assert_eq!(t.facts().count(), 0);
        assert_eq!(t.apis().count(), 0);
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
