//! The defense interposition layer.
//!
//! A [`Mediator`] sits between user-space JavaScript and the "native"
//! browser, exactly where the paper's extensions sit: it sees every clock
//! read, every asynchronous event registration and confirmation, and every
//! security-relevant built-in call, and it decides what the user space
//! observes. The JSKernel itself (`jsk-core`), the baseline defenses
//! (`jsk-defenses`), and the do-nothing legacy browser are all mediators
//! over the same substrate — which is what makes the evaluation
//! apples-to-apples.
//!
//! Mediator hooks are **non-reentrant**: they receive a [`MediatorCtx`]
//! instead of the browser itself, and effects (releasing a withheld event,
//! scheduling a kernel tick, sending a kernel-space message) are queued as
//! [`MediatorOp`]s that the browser applies after the hook returns.

use crate::event::AsyncEventInfo;
use crate::ids::{EventToken, ThreadId};
use crate::trace::{ApiCall, EdgeKind};
use crate::value::JsValue;
use jsk_sim::rng::SimRng;
use jsk_sim::time::{SimDuration, SimTime};

/// Which clock API is being read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockKind {
    /// `performance.now()`.
    PerformanceNow,
    /// `Date.now()`.
    DateNow,
    /// The timestamp argument passed to a `requestAnimationFrame` callback.
    RafTimestamp,
    /// The `event.timeStamp` field of a dispatched event.
    EventTimestamp,
}

/// Classes of interposed API for per-call overhead accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterposeClass {
    /// Clock reads.
    Clock,
    /// Timer registration/cancellation.
    Timer,
    /// Messaging.
    Message,
    /// Worker lifecycle.
    Worker,
    /// Network APIs.
    Net,
    /// DOM operations.
    Dom,
    /// SharedArrayBuffer access.
    Sab,
}

/// Decision returned by [`Mediator::on_confirm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfirmDecision {
    /// Enqueue the callback to run at the given instant (clamped to now).
    InvokeAt(SimTime),
    /// Hold the event; the mediator will release it later via
    /// [`MediatorCtx::release`] (or drop it via [`MediatorCtx::drop_event`]).
    Withhold,
    /// Discard the event outright: its callback never runs. Returned for
    /// confirmations of events the mediator already gave up on (e.g. a
    /// watchdog-expired event whose confirmation finally arrived).
    Drop,
}

/// Decision returned by [`Mediator::on_api`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiOutcome {
    /// Let the native behaviour proceed unchanged.
    Allow,
    /// Block the call (the user space sees a benign failure).
    Deny {
        /// Why, for the trace.
        reason: String,
    },
    /// Deliver a replacement error-message string instead of the native one
    /// (for `ErrorEvent`).
    SanitizeError {
        /// The sanitized text.
        replacement: String,
    },
    /// For `CreateWorker`: do not spawn a parallel thread; run the worker
    /// cooperatively on the parent thread (Chrome Zero's polyfill).
    PolyfillWorker,
    /// For `TerminateWorker`: close only the user-visible object; the
    /// kernel-level thread stays alive until its obligations (pending
    /// fetches, live transfers, in-flight dispatches) settle.
    DeferTermination,
    /// For `CreateWorker` from a sandboxed context: force an opaque origin
    /// instead of the (buggy) inherited one.
    OpaqueOrigin,
    /// For `Navigate`/`CloseDocument`: cleanly cancel callbacks bound to the
    /// outgoing document before teardown.
    CancelDocBound,
    /// For `SetOnMessage` on a closing worker: silently ignore the
    /// assignment instead of letting the native setter crash.
    DropQuietly,
}

/// A deferred effect queued by a mediator hook.
#[derive(Debug, Clone, PartialEq)]
pub enum MediatorOp {
    /// Enqueue the withheld event's callback at the given instant.
    Release {
        /// The withheld event.
        token: EventToken,
        /// When it may run (clamped to now).
        at: SimTime,
    },
    /// Discard the withheld event entirely.
    DropEvent {
        /// The withheld event.
        token: EventToken,
    },
    /// Ask the browser to call [`Mediator::on_tick`] for `thread` at `at`.
    ScheduleTick {
        /// The thread whose kernel state should be pumped.
        thread: ThreadId,
        /// When.
        at: SimTime,
    },
    /// Deliver a kernel-space message (the paper's overlay channel with a
    /// `type` field distinguishing kernel from user traffic, §III-E2) to
    /// [`Mediator::on_kernel_message`] at `at`.
    KernelSend {
        /// Sending thread.
        from: ThreadId,
        /// Receiving thread.
        to: ThreadId,
        /// Payload.
        payload: JsValue,
        /// Delivery instant.
        at: SimTime,
        /// The HB node the send is attributed to (the task the hook ran
        /// inside, if any) — carried to the receiver so kernel-induced
        /// orderings become [`crate::trace::HbEdge`]s.
        sender_node: Option<u64>,
    },
    /// Record a happens-before ordering edge in the trace.
    OrderEdge {
        /// Source node (ordered before).
        from: u64,
        /// Destination node (ordered after).
        to: u64,
        /// Why the edge exists.
        kind: EdgeKind,
    },
}

/// The restricted view of the browser a mediator hook runs against.
#[derive(Debug)]
pub struct MediatorCtx<'a> {
    /// The current raw virtual instant.
    pub now: SimTime,
    /// A seeded RNG stream reserved for the mediator (used e.g. by
    /// Fuzzyfox's fuzzing).
    pub rng: &'a mut SimRng,
    /// The happens-before node of the task the hook is running inside, if
    /// the hook fires during a dispatched task. `None` for hooks that run
    /// outside any task (e.g. boot, machinery ticks).
    pub node: Option<u64>,
    ops: Vec<MediatorOp>,
    /// Per-item op boundaries written by [`mark`](Self::mark) during
    /// batched hooks: `marks[i]` is `ops.len()` after batch item `i`.
    marks: Vec<u32>,
}

impl<'a> MediatorCtx<'a> {
    /// Creates a context; the browser calls this around each hook.
    #[must_use]
    pub fn new(now: SimTime, rng: &'a mut SimRng) -> MediatorCtx<'a> {
        MediatorCtx {
            now,
            rng,
            node: None,
            ops: Vec::new(),
            marks: Vec::new(),
        }
    }

    /// Creates a context reusing previously-returned buffers (see
    /// [`into_parts`](Self::into_parts)). The steady-state path: the
    /// browser stashes the buffers between hooks so per-hook contexts
    /// allocate nothing once warm.
    #[must_use]
    pub fn recycled(
        now: SimTime,
        rng: &'a mut SimRng,
        mut ops: Vec<MediatorOp>,
        mut marks: Vec<u32>,
    ) -> MediatorCtx<'a> {
        ops.clear();
        marks.clear();
        MediatorCtx {
            now,
            rng,
            node: None,
            ops,
            marks,
        }
    }

    /// Queues release of a withheld event at `at`.
    pub fn release(&mut self, token: EventToken, at: SimTime) {
        self.ops.push(MediatorOp::Release { token, at });
    }

    /// Queues dropping a withheld event.
    pub fn drop_event(&mut self, token: EventToken) {
        self.ops.push(MediatorOp::DropEvent { token });
    }

    /// Queues a future [`Mediator::on_tick`] callback.
    pub fn schedule_tick(&mut self, thread: ThreadId, at: SimTime) {
        self.ops.push(MediatorOp::ScheduleTick { thread, at });
    }

    /// Queues a kernel-space message. The send is attributed to the HB node
    /// of the task the hook is running inside (if any), so a reply forwarded
    /// from `on_kernel_message` inherits the original sender's provenance.
    pub fn kernel_send(&mut self, from: ThreadId, to: ThreadId, payload: JsValue, at: SimTime) {
        self.ops.push(MediatorOp::KernelSend {
            from,
            to,
            payload,
            at,
            sender_node: self.node,
        });
    }

    /// Queues recording of a happens-before ordering edge (`from` happens
    /// before `to`) in the browser trace.
    pub fn order_edge(&mut self, from: u64, to: u64, kind: EdgeKind) {
        self.ops.push(MediatorOp::OrderEdge { from, to, kind });
    }

    /// Records a batch-item boundary: everything queued since the previous
    /// mark belongs to the item that just finished. [`Mediator::confirm_batch`]
    /// implementations call this once per item so the browser can apply
    /// ops and decisions in exactly the order a sequential run would have.
    pub fn mark(&mut self) {
        let len = u32::try_from(self.ops.len()).unwrap_or(u32::MAX);
        self.marks.push(len);
    }

    /// Number of ops queued so far (lets batched hooks observe their own
    /// mark boundaries).
    #[must_use]
    pub fn ops_len(&self) -> usize {
        self.ops.len()
    }

    /// Drains the queued operations (browser-internal).
    #[must_use]
    pub fn into_ops(self) -> Vec<MediatorOp> {
        self.ops
    }

    /// Drains the queued operations and the per-item marks, returning both
    /// buffers for reuse via [`recycled`](Self::recycled).
    #[must_use]
    pub fn into_parts(self) -> (Vec<MediatorOp>, Vec<u32>) {
        (self.ops, self.marks)
    }
}

/// Context handed to [`Mediator::read_clock`].
#[derive(Debug, Clone, Copy)]
pub struct ClockRead {
    /// The reading thread.
    pub thread: ThreadId,
    /// Which API.
    pub kind: ClockKind,
    /// The raw virtual instant.
    pub raw: SimTime,
    /// The engine's native precision for this API (the legacy behaviour is
    /// to quantize `raw` down to this).
    pub native_precision: SimDuration,
}

impl ClockRead {
    /// The value a legacy (undefended) browser would display.
    #[must_use]
    pub fn native_display(&self) -> SimTime {
        self.raw.quantize_down(self.native_precision)
    }
}

/// A defense layer interposed between user scripts and the native browser.
///
/// All hooks default to legacy (pass-through) behaviour, so a unit struct
/// implementing only [`name`](Mediator::name) *is* the undefended browser.
pub trait Mediator {
    /// The defense's display name (used in tables and traces).
    fn name(&self) -> &str;

    /// Hands the mediator a subscriber to instrument itself with.
    ///
    /// `Browser::new` calls this when its config carries an observer
    /// (`BrowserConfig::with_observer`); kernels intern their span and
    /// metric names here and hook their dispatch path. The default
    /// ignores the handle — a defense without instrumentation stays
    /// uninstrumented.
    #[cfg(feature = "observe")]
    fn attach_observer(&mut self, observer: jsk_observe::ObsHandle) {
        let _ = observer;
    }

    /// A thread came up (main thread at browser start, worker threads on
    /// creation). Kernel mediators use this to set up per-thread state.
    fn on_thread_started(&mut self, ctx: &mut MediatorCtx<'_>, thread: ThreadId, is_worker: bool) {
        let _ = (ctx, thread, is_worker);
    }

    /// A worker thread died (termination or crash). Kernel mediators reap
    /// the dead thread's still-queued events here so serialized dispatch
    /// never waits on an event that can no longer confirm.
    fn on_thread_exited(&mut self, ctx: &mut MediatorCtx<'_>, thread: ThreadId) {
        let _ = (ctx, thread);
    }

    /// A clock API is being read; returns the instant the user space sees.
    fn read_clock(&mut self, ctx: &mut MediatorCtx<'_>, read: ClockRead) -> SimTime {
        let _ = ctx;
        read.native_display()
    }

    /// An asynchronous event was registered.
    fn on_register(&mut self, ctx: &mut MediatorCtx<'_>, info: &AsyncEventInfo) {
        let _ = (ctx, info);
    }

    /// The raw browser trigger for `info` fired at `raw_fire`; decide when
    /// (whether) the callback runs.
    fn on_confirm(
        &mut self,
        ctx: &mut MediatorCtx<'_>,
        info: &AsyncEventInfo,
        raw_fire: SimTime,
    ) -> ConfirmDecision {
        let _ = (ctx, info);
        ConfirmDecision::InvokeAt(raw_fire)
    }

    /// Several raw triggers fired at the same virtual instant: settle them
    /// in one pass, pushing one [`ConfirmDecision`] per item into `out` (in
    /// item order) and calling [`MediatorCtx::mark`] after each item so the
    /// browser can interleave op application with decision application
    /// exactly as a sequential run of [`on_confirm`](Self::on_confirm)
    /// would have.
    ///
    /// The default forwards to `on_confirm` per item — correct for every
    /// mediator by construction. Kernel mediators override this to settle
    /// the whole batch against their per-thread queues in a single sweep.
    fn confirm_batch(
        &mut self,
        ctx: &mut MediatorCtx<'_>,
        items: &[(AsyncEventInfo, SimTime)],
        out: &mut Vec<ConfirmDecision>,
    ) {
        for (info, raw_fire) in items {
            let d = self.on_confirm(ctx, info, *raw_fire);
            out.push(d);
            ctx.mark();
        }
    }

    /// A registered event was cancelled by user space (`clearTimeout`,
    /// `cancelAnimationFrame`, abort).
    fn on_cancel(&mut self, ctx: &mut MediatorCtx<'_>, token: EventToken) {
        let _ = (ctx, token);
    }

    /// A security-relevant built-in is about to run.
    fn on_api(&mut self, ctx: &mut MediatorCtx<'_>, call: &ApiCall) -> ApiOutcome {
        let _ = (ctx, call);
        ApiOutcome::Allow
    }

    /// A tick previously requested via [`MediatorCtx::schedule_tick`].
    fn on_tick(&mut self, ctx: &mut MediatorCtx<'_>, thread: ThreadId) {
        let _ = (ctx, thread);
    }

    /// A kernel-space message sent via [`MediatorCtx::kernel_send`] arrived.
    fn on_kernel_message(
        &mut self,
        ctx: &mut MediatorCtx<'_>,
        from: ThreadId,
        to: ThreadId,
        payload: &JsValue,
    ) {
        let _ = (ctx, from, to, payload);
    }

    /// A task began executing on `thread` (the kernel clock ticks here).
    /// `context` is the task's browsing-context tag.
    fn on_task_dispatched(
        &mut self,
        ctx: &mut MediatorCtx<'_>,
        thread: ThreadId,
        token: Option<EventToken>,
        context: u32,
    ) {
        let _ = (ctx, thread, token, context);
    }

    /// Per-call CPU overhead this defense adds to interposed APIs of the
    /// given class (drives the Dromaeo/Raptor overhead evaluation).
    fn interposition_cost(&self, class: InterposeClass) -> SimDuration {
        let _ = class;
        SimDuration::ZERO
    }

    /// Multiplier on scripted computation time (proxy-wrapped globals
    /// de-optimize script execution — Chrome Zero's visible page slowdown).
    fn compute_scale(&self) -> f64 {
        1.0
    }

    /// Whether `SharedArrayBuffer` construction is allowed at all
    /// (JavaScript Zero removes the constructor).
    fn allow_sab(&self) -> bool {
        true
    }

    /// Downcast support: mediators that expose post-run state (the
    /// kernel's statistics) override this to return themselves.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Whether SAB reads are frozen per task: the paper's JSKernel
    /// "provides a customized interface to access SharedArrayBuffer
    /// contents so that every access is redirected to the kernel and put
    /// into the event queue" (§III-E2) — a task observes one snapshot, so a
    /// cross-thread counter cannot time intra-task work.
    fn freeze_sab_reads(&self) -> bool {
        false
    }
}

/// The undefended browser: every hook passes through.
#[derive(Debug, Clone, Default)]
pub struct LegacyMediator;

impl Mediator for LegacyMediator {
    fn name(&self) -> &str {
        "legacy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AsyncKind;

    #[test]
    fn legacy_mediator_passes_through() {
        let mut m = LegacyMediator;
        let mut rng = SimRng::new(0);
        let mut ctx = MediatorCtx::new(SimTime::from_millis(5), &mut rng);
        let read = ClockRead {
            thread: ThreadId::new(0),
            kind: ClockKind::PerformanceNow,
            raw: SimTime::from_nanos(1_234_567),
            native_precision: SimDuration::from_micros(5),
        };
        // 1.234567 ms quantized to 5 µs => 1.230 ms.
        assert_eq!(m.read_clock(&mut ctx, read), SimTime::from_nanos(1_230_000));

        let info = AsyncEventInfo {
            token: EventToken::new(1),
            thread: ThreadId::new(0),
            kind: AsyncKind::Raf,
            registered_at: SimTime::ZERO,
            doc_generation: 0,
            context: 0,
        };
        let fire = SimTime::from_millis(16);
        assert_eq!(
            m.on_confirm(&mut ctx, &info, fire),
            ConfirmDecision::InvokeAt(fire)
        );
        assert_eq!(
            m.on_api(
                &mut ctx,
                &ApiCall::Navigate {
                    thread: ThreadId::new(0)
                }
            ),
            ApiOutcome::Allow
        );
        assert_eq!(m.interposition_cost(InterposeClass::Dom), SimDuration::ZERO);
        assert!(ctx.into_ops().is_empty());
    }

    #[test]
    fn ctx_collects_ops_in_order() {
        let mut rng = SimRng::new(0);
        let mut ctx = MediatorCtx::new(SimTime::ZERO, &mut rng);
        ctx.release(EventToken::new(1), SimTime::from_millis(1));
        ctx.schedule_tick(ThreadId::new(0), SimTime::from_millis(2));
        ctx.drop_event(EventToken::new(2));
        let ops = ctx.into_ops();
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], MediatorOp::Release { .. }));
        assert!(matches!(ops[1], MediatorOp::ScheduleTick { .. }));
        assert!(matches!(ops[2], MediatorOp::DropEvent { .. }));
    }

    #[test]
    fn recycled_ctx_reuses_buffers_without_stale_state() {
        let mut rng = SimRng::new(0);
        let mut ctx = MediatorCtx::new(SimTime::ZERO, &mut rng);
        ctx.release(EventToken::new(1), SimTime::from_millis(1));
        ctx.mark();
        let (ops, marks) = ctx.into_parts();
        assert_eq!(ops.len(), 1);
        assert_eq!(marks, vec![1]);
        let cap = ops.capacity();
        let ctx = MediatorCtx::recycled(SimTime::from_millis(9), &mut rng, ops, marks);
        assert_eq!(ctx.ops_len(), 0, "recycled ctx starts empty");
        let (ops, marks) = ctx.into_parts();
        assert!(marks.is_empty());
        assert_eq!(ops.capacity(), cap, "capacity survives recycling");
    }

    fn raf_info(token: u64) -> AsyncEventInfo {
        AsyncEventInfo {
            token: EventToken::new(token),
            thread: ThreadId::new(0),
            kind: AsyncKind::Raf,
            registered_at: SimTime::ZERO,
            doc_generation: 0,
            context: 0,
        }
    }

    #[test]
    fn default_confirm_batch_forwards_per_item_and_marks_boundaries() {
        let mut m = LegacyMediator;
        let mut rng = SimRng::new(0);
        let mut ctx = MediatorCtx::new(SimTime::from_millis(3), &mut rng);
        let items = vec![
            (raf_info(1), SimTime::from_millis(3)),
            (raf_info(2), SimTime::from_millis(3)),
        ];
        let mut out = Vec::new();
        m.confirm_batch(&mut ctx, &items, &mut out);
        assert_eq!(
            out,
            vec![
                ConfirmDecision::InvokeAt(SimTime::from_millis(3)),
                ConfirmDecision::InvokeAt(SimTime::from_millis(3)),
            ]
        );
        let (ops, marks) = ctx.into_parts();
        assert!(ops.is_empty(), "legacy confirms queue no ops");
        assert_eq!(marks, vec![0, 0], "one boundary per item");
    }
}
