//! The browser: threads, the event loop, and native API semantics.
//!
//! [`Browser`] is a single-seed discrete-event simulation of an event-driven
//! browser. It owns every thread's run queue, the asynchronous event
//! lifecycle (register → raw trigger → confirm → invoke), the network/DOM
//! substrates, and — crucially — the [`Mediator`] seam through which every
//! defense (including the JSKernel) observes and reshapes execution.
//!
//! The "native" semantics deliberately include the **bugs** of the
//! vulnerable browser versions the paper evaluates (dangling aborts on
//! document teardown, transfers freed with their worker, stale-document
//! callbacks, …): the vulnerability oracle in `jsk-vuln` watches the trace
//! for their triggering sequences, and defenses succeed by preventing the
//! sequences.

use crate::dom::Dom;
use crate::event::{AsyncEventInfo, AsyncKind};
use crate::ids::{
    BufferId, EventToken, RequestId, SabId, SignalId, ThreadId, TimerId, WorkerId, MAIN_THREAD,
};
use crate::mediator::{ApiOutcome, ConfirmDecision, Mediator, MediatorCtx, MediatorOp};
use crate::net::{ContentCache, NetState, ResourceSpec};
use crate::profile::BrowserProfile;
use crate::scope::JsScope;
use crate::task::{Callback, Task, TaskSource, WorkerScript};
use crate::thread::{OriginKind, ThreadKind, ThreadState};
use crate::trace::{
    AccessKind, AccessRecord, AccessTarget, ApiCall, Fact, HbEdge, NodeRecord, TerminationReason,
    Trace,
};
use crate::value::JsValue;
use crate::worker::{
    BufferRecord, RequestRecord, RequestState, SharedBuffer, SignalRecord, WorkerRecord,
    WorkerState,
};
use jsk_sim::fault::{ConfirmFate, FaultInjector, FaultPlan, FaultStats, MessageFate};
use jsk_sim::queue::{QueueKey, TimeQueue};
use jsk_sim::rng::SimRng;
use jsk_sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};

/// Configuration of one browser instance.
#[derive(Debug, Clone)]
pub struct BrowserConfig {
    /// Engine timing profile.
    pub profile: BrowserProfile,
    /// RNG seed; a run is a pure function of this.
    pub seed: u64,
    /// Whether the session is in private-browsing mode.
    pub private_mode: bool,
    /// The first-party origin of the page.
    pub origin: String,
    /// Multiplier on network latency (Tor routes through circuits).
    pub net_latency_scale: f64,
    /// Hard cap on processed simulation events (runaway guard).
    pub step_limit: u64,
    /// Faults to inject during the run (`None` → fault-free).
    pub fault: Option<FaultPlan>,
    /// Which serving shard this browser runs on (`None` → unsharded).
    /// Shard-addressed faults in the plan (per-shard clock skew) only
    /// apply when their shard id matches this.
    pub shard: Option<u64>,
    /// Observer to instrument the run with (`None` → uninstrumented).
    #[cfg(feature = "observe")]
    pub observer: Option<jsk_observe::ObsHandle>,
}

impl BrowserConfig {
    /// A configuration for the given profile with library defaults.
    #[must_use]
    pub fn new(profile: BrowserProfile, seed: u64) -> BrowserConfig {
        BrowserConfig {
            profile,
            seed,
            private_mode: false,
            origin: "https://attacker.example".to_owned(),
            net_latency_scale: 1.0,
            step_limit: 5_000_000,
            fault: None,
            shard: None,
            #[cfg(feature = "observe")]
            observer: None,
        }
    }

    /// Installs a fault plan.
    #[must_use]
    pub fn with_fault(mut self, plan: FaultPlan) -> BrowserConfig {
        self.fault = Some(plan);
        self
    }

    /// Places this browser on a serving shard, making it addressable by
    /// the plan's shard-scoped faults (clock skew). The shard id does not
    /// influence the simulation itself — an unfaulted run is bit-identical
    /// on any shard.
    #[must_use]
    pub fn with_shard(mut self, shard: u64) -> BrowserConfig {
        self.shard = Some(shard);
        self
    }

    /// Attaches an observer: the browser instruments task dispatch,
    /// worker/net lifecycle, and fault hits, and hands the same handle to
    /// the mediator (see `Mediator::attach_observer`) so the kernel
    /// instruments its dispatch path. Build one with
    /// `jsk_observe::handle_of(&Observer::with_trace().shared())`.
    #[cfg(feature = "observe")]
    #[must_use]
    pub fn with_observer(mut self, observer: jsk_observe::ObsHandle) -> BrowserConfig {
        self.observer = Some(observer);
        self
    }
}

/// Pre-interned browser-side observability names (interned once when the
/// observer attaches, so the hooks never touch a string).
#[cfg(feature = "observe")]
#[derive(Debug)]
struct BrowserSyms {
    task: jsk_observe::Sym,
    tasks: jsk_observe::Sym,
    fetches_started: jsk_observe::Sym,
    fetches_settled: jsk_observe::Sym,
    workers_started: jsk_observe::Sym,
    workers_terminated: jsk_observe::Sym,
    worker_started: jsk_observe::Sym,
    worker_terminated: jsk_observe::Sym,
    confirm_dropped: jsk_observe::Sym,
    confirm_delayed: jsk_observe::Sym,
    worker_crashes: jsk_observe::Sym,
}

/// The browser's attached observer plus its interned names.
#[cfg(feature = "observe")]
#[derive(Debug)]
struct ObsCtx {
    handle: jsk_observe::ObsHandle,
    syms: BrowserSyms,
}

#[cfg(feature = "observe")]
impl ObsCtx {
    fn new(handle: jsk_observe::ObsHandle) -> ObsCtx {
        let syms = BrowserSyms {
            task: handle.intern("browser.task"),
            tasks: handle.intern("browser.tasks"),
            fetches_started: handle.intern("browser.fetches_started"),
            fetches_settled: handle.intern("browser.fetches_settled"),
            workers_started: handle.intern("browser.workers_started"),
            workers_terminated: handle.intern("browser.workers_terminated"),
            worker_started: handle.intern("browser.worker_started"),
            worker_terminated: handle.intern("browser.worker_terminated"),
            confirm_dropped: handle.intern("fault.confirm_dropped"),
            confirm_delayed: handle.intern("fault.confirm_delayed"),
            worker_crashes: handle.intern("fault.worker_crashes"),
        };
        ObsCtx { handle, syms }
    }
}

/// Browser-level simulation events.
enum SimEvent {
    /// Try to run the next task on a thread.
    Pump(ThreadId),
    /// The underlying browser trigger of a registered async event fired.
    RawTrigger(EventToken),
    /// A worker thread finishes spawning and runs its top-level script.
    WorkerStart(WorkerId),
    /// Delayed worker teardown after document navigation (the freed-document
    /// message window).
    WorkerTeardown(WorkerId),
    /// A mediator-requested housekeeping tick.
    MediatorTick(ThreadId),
    /// A kernel-space overlay message.
    KernelMessage {
        from: ThreadId,
        to: ThreadId,
        payload: JsValue,
        /// HB node the send was attributed to, restored into the receiving
        /// hook's context so kernel replies keep their provenance.
        sender_node: Option<u64>,
    },
    /// A fault-plan worker crash (worker addressed by creation order).
    WorkerCrash(u64),
}

/// A registered, not-yet-confirmed asynchronous event.
struct PendingEvent {
    info: AsyncEventInfo,
    callback: Callback,
    arg: JsValue,
    source: TaskSource,
    /// Key of the scheduled `RawTrigger`, for cancellation.
    raw_key: Option<QueueKey>,
    from_worker: Option<WorkerId>,
    polyfill_worker: Option<WorkerId>,
    nesting: u32,
    context: u32,
    /// HB node of the task that registered the event (the fork edge the
    /// eventual callback task inherits).
    forked_from: Option<u64>,
}

/// Parameters for [`Browser::register_async`]. The six fields every
/// registration needs ride the constructor; provenance extras default and
/// chain (`.via_worker(..)`, `.in_polyfill(..)`, `.nesting(..)`).
pub(crate) struct AsyncReg {
    thread: ThreadId,
    kind: AsyncKind,
    source: TaskSource,
    callback: Callback,
    arg: JsValue,
    raw_fire_at: SimTime,
    from_worker: Option<WorkerId>,
    polyfill_worker: Option<WorkerId>,
    nesting: u32,
    /// `Some(x)` pins the callback task's HB ancestor to `x`; `None` (the
    /// default) attributes it to whatever is running at registration time.
    forked_from: Option<Option<u64>>,
}

impl AsyncReg {
    pub(crate) fn new(
        thread: ThreadId,
        kind: AsyncKind,
        source: TaskSource,
        callback: Callback,
        arg: JsValue,
        raw_fire_at: SimTime,
    ) -> AsyncReg {
        AsyncReg {
            thread,
            kind,
            source,
            callback,
            arg,
            raw_fire_at,
            from_worker: None,
            polyfill_worker: None,
            nesting: 0,
            forked_from: None,
        }
    }

    /// Marks the eventual task as dispatching a message from `worker`.
    pub(crate) fn via_worker(mut self, worker: WorkerId) -> AsyncReg {
        self.from_worker = Some(worker);
        self
    }

    /// Runs the eventual task inside a polyfill worker context.
    pub(crate) fn in_polyfill(mut self, worker: Option<WorkerId>) -> AsyncReg {
        self.polyfill_worker = worker;
        self
    }

    /// Sets the timer nesting depth.
    pub(crate) fn nesting(mut self, nesting: u32) -> AsyncReg {
        self.nesting = nesting;
        self
    }

    /// Pins the HB ancestor instead of using the ambient one.
    pub(crate) fn forked(mut self, node: Option<u64>) -> AsyncReg {
        self.forked_from = Some(node);
        self
    }
}

/// A repeating or one-shot timer registration.
struct TimerRecord {
    thread: ThreadId,
    callback: Callback,
    period: Option<SimDuration>,
    kind_is_media: bool,
    kind_is_css: bool,
    current_token: EventToken,
    cancelled: bool,
    nesting: u32,
    polyfill_worker: Option<WorkerId>,
    /// First firing instant; repeating timers are anchored to
    /// `anchor + n·period` (the HTML timer model), so firing jitter never
    /// accumulates into drift.
    anchor: SimTime,
    /// Firings so far.
    fires: u64,
}

/// Execution context of the currently running task.
pub(crate) struct CurTask {
    pub thread: ThreadId,
    pub start: SimTime,
    pub cost: SimDuration,
    pub source: TaskSource,
    pub timer_nesting: u32,
    pub from_worker: Option<WorkerId>,
    pub polyfill_worker: Option<WorkerId>,
    pub sandboxed: bool,
    pub context: u32,
    /// The task's happens-before node id.
    pub node: u64,
    /// Per-task SAB read snapshots (kernel-frozen reads, §III-E2).
    pub sab_seen: HashMap<(u64, usize), f64>,
}

/// IndexedDB database record.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IdbRecord {
    name: String,
    persisted: bool,
    private_session: bool,
}

/// The simulated browser.
pub struct Browser {
    pub(crate) cfg: BrowserConfig,
    now: SimTime,
    events: TimeQueue<SimEvent>,
    pub(crate) threads: Vec<ThreadState>,
    pub(crate) workers: Vec<WorkerRecord>,
    pub(crate) buffers: Vec<BufferRecord>,
    pub(crate) signals: Vec<SignalRecord>,
    pub(crate) requests: Vec<RequestRecord>,
    sabs: Vec<SharedBuffer>,
    /// Virtual SAB counters: `(sab, idx) → (start, period)`. A real
    /// counting worker increments in a tight loop; the DES models that
    /// continuous process analytically so intra-task reads observe the
    /// value as of the *current virtual instant* (a discrete task could
    /// never interleave with it).
    sab_counters: HashMap<(u64, usize), (SimTime, SimDuration)>,
    timers: Vec<TimerRecord>,
    pending: HashMap<EventToken, PendingEvent>,
    withheld: HashMap<EventToken, PendingEvent>,
    raf_tokens: HashMap<u64, EventToken>,
    next_token: u64,
    next_raf: u64,
    mediator: Option<Box<dyn Mediator>>,
    pub(crate) rng_cpu: SimRng,
    pub(crate) rng_net: SimRng,
    pub(crate) rng_sched: SimRng,
    rng_med: SimRng,
    pub(crate) net: NetState,
    pub(crate) content_cache: ContentCache,
    pub(crate) dom: Dom,
    pub(crate) trace: Trace,
    console: Vec<JsValue>,
    records: BTreeMap<String, JsValue>,
    pub(crate) cur: Option<CurTask>,
    steps: u64,
    idb: Vec<IdbRecord>,
    thread_epochs: Vec<u64>,
    worker_scripts: HashMap<WorkerId, WorkerScript>,
    request_tokens: HashMap<RequestId, EventToken>,
    /// Last delivery instant per (from, to) message channel — `postMessage`
    /// channels are FIFO, so later sends never overtake earlier ones.
    channel_last: HashMap<(u64, u64), SimTime>,
    /// Fault injector, when a plan is installed.
    pub(crate) fault: Option<FaultInjector>,
    /// Skew applied to raw clock reads, when the plan targets our shard.
    raw_skew: Option<jsk_sim::fault::ClockSkew>,
    /// Next happens-before node id (one per dispatched task).
    next_node: u64,
    /// HB attribution for hooks running outside a task (kernel-message
    /// delivery carries the sender's node here).
    hb_ctx_node: Option<u64>,
    /// Synthetic HB node for browser-initiated teardown work (async worker
    /// teardown has no dispatched task to attribute its frees to).
    hb_synth_node: Option<u64>,
    /// Recycled mediator-call buffers (op list + batch-mark list), taken
    /// at the start of every hook invocation and returned once the ops
    /// are applied — steady-state hooks allocate nothing.
    med_scratch: Option<(Vec<MediatorOp>, Vec<u32>)>,
    /// Scratch for the batched same-instant confirmation path.
    batch_items: Vec<(AsyncEventInfo, SimTime)>,
    batch_pes: Vec<PendingEvent>,
    batch_decisions: Vec<ConfirmDecision>,
    /// Attached observer and its pre-interned names.
    #[cfg(feature = "observe")]
    obs: Option<ObsCtx>,
}

impl std::fmt::Debug for Browser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Browser")
            .field("engine", &self.cfg.profile.engine)
            .field(
                "defense",
                &self.mediator.as_ref().map(|m| m.name().to_owned()),
            )
            .field("now", &self.now)
            .field("threads", &self.threads.len())
            .field("steps", &self.steps)
            .finish()
    }
}

impl Browser {
    /// Creates a browser with the given defense mediator installed.
    #[must_use]
    pub fn new(cfg: BrowserConfig, mediator: Box<dyn Mediator>) -> Browser {
        let root = SimRng::new(cfg.seed);
        let main = ThreadState::new(MAIN_THREAD, ThreadKind::Main, cfg.origin.clone());
        let fault = cfg.fault.clone().map(FaultInjector::new);
        let raw_skew = cfg.shard.and_then(|shard| {
            cfg.fault
                .as_ref()
                .and_then(|p| p.skew_for(shard).copied())
                .filter(|s| !s.is_inert())
        });
        #[cfg(feature = "observe")]
        let obs = cfg.observer.clone().map(ObsCtx::new);
        let mut b = Browser {
            rng_cpu: root.fork("cpu"),
            rng_net: root.fork("net"),
            rng_sched: root.fork("sched"),
            rng_med: root.fork("mediator"),
            cfg,
            now: SimTime::ZERO,
            events: TimeQueue::new(),
            threads: vec![main],
            workers: Vec::new(),
            buffers: Vec::new(),
            signals: Vec::new(),
            requests: Vec::new(),
            sabs: Vec::new(),
            sab_counters: HashMap::new(),
            timers: Vec::new(),
            pending: HashMap::new(),
            withheld: HashMap::new(),
            raf_tokens: HashMap::new(),
            next_token: 0,
            next_raf: 0,
            mediator: Some(mediator),
            net: NetState::new(),
            content_cache: ContentCache::new(),
            dom: Dom::new(),
            trace: Trace::new(),
            console: Vec::new(),
            records: BTreeMap::new(),
            cur: None,
            steps: 0,
            idb: Vec::new(),
            thread_epochs: vec![0],
            worker_scripts: HashMap::new(),
            request_tokens: HashMap::new(),
            channel_last: HashMap::new(),
            fault,
            raw_skew,
            next_node: 0,
            hb_ctx_node: None,
            hb_synth_node: None,
            med_scratch: Some((Vec::new(), Vec::new())),
            batch_items: Vec::new(),
            batch_pes: Vec::new(),
            batch_decisions: Vec::new(),
            #[cfg(feature = "observe")]
            obs,
        };
        // The mediator gets the same observer so kernel spans, browser
        // task spans, and fault instants land in one interner and export.
        #[cfg(feature = "observe")]
        if let Some(o) = b.obs.as_ref() {
            let handle = o.handle.clone();
            if let Some(m) = b.mediator.as_mut() {
                m.attach_observer(handle);
            }
        }
        // Worker crashes are scheduled up front: the plan names victims by
        // creation order, so a crash for a not-yet-created (or never-created)
        // worker is simply a no-op when it fires.
        let crashes: Vec<jsk_sim::fault::WorkerCrash> = b
            .fault
            .as_ref()
            .map(|inj| inj.plan().worker_crashes.clone())
            .unwrap_or_default();
        for crash in crashes {
            b.events.push(
                SimTime::from_millis(crash.at_ms),
                SimEvent::WorkerCrash(crash.worker),
            );
        }
        b.with_mediator(|m, ctx| m.on_thread_started(ctx, MAIN_THREAD, false));
        b
    }

    /// Counters for faults injected so far (`None` when no plan installed).
    #[must_use]
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault.as_ref().map(FaultInjector::stats)
    }

    // --- public driving API ------------------------------------------------

    /// Enqueues the page's main script to run at the current instant.
    pub fn boot<F>(&mut self, script: F)
    where
        F: Fn(&mut JsScope<'_>) + 'static,
    {
        self.boot_in_context(0, script);
    }

    /// Enqueues a top-level script tagged with a browsing-context id
    /// (cross-context pages share the main thread's event loop — the
    /// Loopscan setting).
    pub fn boot_in_context<F>(&mut self, context: u32, script: F)
    where
        F: Fn(&mut JsScope<'_>) + 'static,
    {
        let mut task = Task::new(
            std::rc::Rc::new(move |scope: &mut JsScope<'_>, _| script(scope)),
            JsValue::Undefined,
            TaskSource::Script,
        );
        task.context = context;
        self.enqueue_task(MAIN_THREAD, self.now, task);
    }

    /// Runs until no events remain or the step limit is hit.
    pub fn run_until_idle(&mut self) {
        while self.steps < self.cfg.step_limit {
            let Some(p) = self.events.pop() else { break };
            self.advance_to(p.time);
            self.handle(p.value);
            self.steps += 1;
        }
    }

    /// Runs until the virtual clock reaches `deadline` (events after it stay
    /// queued) or the step limit is hit.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.steps < self.cfg.step_limit {
            match self.events.peek_time() {
                Some(t) if t <= deadline => {
                    let p = self.events.pop().expect("peeked event exists");
                    self.advance_to(p.time);
                    self.handle(p.value);
                    self.steps += 1;
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// The current virtual instant (event-loop view).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The instant as seen inside the currently running task, if any.
    #[must_use]
    pub fn current_instant(&self) -> SimTime {
        match &self.cur {
            Some(c) => c.start + c.cost,
            None => self.now,
        }
    }

    /// The raw hardware-clock reading scripts and mediators are shown:
    /// [`Browser::current_instant`], put through this shard's clock skew
    /// when the fault plan targets us. Scheduling always uses the true
    /// instant — skew perturbs what a clock *read* reports, never when
    /// events fire, exactly like a drifting TSC under a correct scheduler.
    #[must_use]
    pub fn raw_instant(&self) -> SimTime {
        let raw = self.current_instant();
        match &self.raw_skew {
            Some(skew) => skew.apply(raw),
            None => raw,
        }
    }

    /// The installed defense's name.
    #[must_use]
    pub fn defense_name(&self) -> String {
        self.mediator
            .as_ref()
            .map(|m| m.name().to_owned())
            .unwrap_or_default()
    }

    /// Downcast access to the installed mediator's post-run state, when the
    /// mediator exposes it (e.g. the kernel's statistics).
    ///
    /// # Examples
    ///
    /// ```ignore
    /// let kernel: &JsKernel = browser.mediator_as().expect("kernel installed");
    /// println!("{}", kernel.stats());
    /// ```
    #[must_use]
    pub fn mediator_as<T: 'static>(&self) -> Option<&T> {
        self.mediator
            .as_ref()
            .and_then(|m| m.as_any())
            .and_then(|a| a.downcast_ref::<T>())
    }

    /// The API/fact trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The trace serialized as pretty JSON — the exchange format for
    /// offline analysis and policy synthesis.
    #[must_use]
    pub fn trace_json(&self) -> String {
        serde_json::to_string_pretty(&self.trace).expect("traces are serializable")
    }

    /// Console output (`console.log` calls).
    #[must_use]
    pub fn console(&self) -> &[JsValue] {
        &self.console
    }

    /// Values recorded by scripts via `JsScope::record`.
    #[must_use]
    pub fn records(&self) -> &BTreeMap<String, JsValue> {
        &self.records
    }

    /// A recorded value by key.
    #[must_use]
    pub fn record_value(&self, key: &str) -> Option<&JsValue> {
        self.records.get(key)
    }

    /// Registers a network resource.
    pub fn register_resource(&mut self, url: impl Into<String>, spec: ResourceSpec) {
        self.net.register(url, spec);
    }

    /// Marks a URL visited in the browsing history (history-sniffing secret).
    pub fn mark_visited(&mut self, url: impl Into<String>) {
        self.dom.mark_visited(url);
    }

    /// Enables or disables `SharedArrayBuffer` for this browser instance
    /// (most evaluated browsers shipped with it disabled post-Spectre; the
    /// SAB-timer experiment turns it on).
    pub fn set_sab_enabled(&mut self, on: bool) {
        self.cfg.profile.sab_enabled = on;
    }

    /// Seeds (or flushes) the shared content cache (cache-attack secret).
    pub fn seed_content_cache(&mut self, key: impl Into<String>, present: bool) {
        let key = key.into();
        if present {
            self.content_cache.insert(key);
        } else {
            self.content_cache.flush(&key);
        }
    }

    /// The main document.
    #[must_use]
    pub fn dom(&self) -> &Dom {
        &self.dom
    }

    /// Number of simulation events processed.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The engine profile in effect.
    #[must_use]
    pub fn profile(&self) -> &BrowserProfile {
        &self.cfg.profile
    }

    /// The instant a thread finishes its current/most recent task — the
    /// harness-side measure of consumed CPU time (independent of any clock
    /// defense, like measuring with a stopwatch next to the machine).
    #[must_use]
    pub fn thread_busy_until(&self, thread: ThreadId) -> SimTime {
        self.threads
            .get(thread.index() as usize)
            .map_or(SimTime::ZERO, |t| t.busy_until)
    }

    /// Number of live (user-visible) workers.
    #[must_use]
    pub fn live_worker_count(&self) -> usize {
        self.workers.iter().filter(|w| w.user_alive()).count()
    }

    // --- mediator plumbing --------------------------------------------------

    pub(crate) fn with_mediator<R>(
        &mut self,
        f: impl FnOnce(&mut dyn Mediator, &mut MediatorCtx<'_>) -> R,
    ) -> R {
        let mut m = self.mediator.take().expect("mediator hook reentrancy");
        let instant = self.current_instant();
        let node = self.hb_current_node();
        let (ops_buf, marks_buf) = self.med_scratch.take().unwrap_or_default();
        let (r, mut ops, marks) = {
            let mut ctx = MediatorCtx::recycled(instant, &mut self.rng_med, ops_buf, marks_buf);
            ctx.node = node;
            let r = f(m.as_mut(), &mut ctx);
            let (ops, marks) = ctx.into_parts();
            (r, ops, marks)
        };
        self.mediator = Some(m);
        for op in ops.drain(..) {
            self.apply_op(op);
        }
        self.med_scratch = Some((ops, marks));
        r
    }

    /// The HB node the current moment is attributed to: the running task,
    /// or a context carried in from outside (kernel-message delivery,
    /// synthetic teardown work). `None` when nothing JS-visible is running.
    pub(crate) fn hb_current_node(&self) -> Option<u64> {
        self.cur
            .as_ref()
            .map(|c| c.node)
            .or(self.hb_ctx_node)
            .or(self.hb_synth_node)
    }

    /// Records a shared-state access attributed to the current HB node;
    /// accesses with no attributable node (pure machinery) are not recorded.
    pub(crate) fn hb_access(
        &mut self,
        thread: ThreadId,
        target: AccessTarget,
        kind: AccessKind,
        what: &str,
    ) {
        let Some(node) = self.hb_current_node() else {
            return;
        };
        let t = self.current_instant();
        let what = self.trace.intern(what);
        self.trace.access(
            t,
            AccessRecord {
                node,
                thread,
                target,
                kind,
                what,
            },
        );
    }

    fn apply_op(&mut self, op: MediatorOp) {
        match op {
            MediatorOp::Release { token, at } => {
                if let Some(pe) = self.withheld.remove(&token) {
                    let at = at.max(self.now);
                    self.invoke_event(pe, at);
                }
            }
            MediatorOp::DropEvent { token } => {
                self.withheld.remove(&token);
            }
            MediatorOp::ScheduleTick { thread, at } => {
                self.events
                    .push(at.max(self.now), SimEvent::MediatorTick(thread));
            }
            MediatorOp::KernelSend {
                from,
                to,
                payload,
                at,
                sender_node,
            } => {
                self.events.push(
                    at.max(self.now),
                    SimEvent::KernelMessage {
                        from,
                        to,
                        payload,
                        sender_node,
                    },
                );
            }
            MediatorOp::OrderEdge { from, to, kind } => {
                let t = self.current_instant();
                self.trace.edge(t, HbEdge { from, to, kind });
            }
        }
    }

    pub(crate) fn intercept(&mut self, call: &ApiCall) -> ApiOutcome {
        let t = self.current_instant();
        self.trace.api(t, *call);
        let outcome = self.with_mediator(|m, ctx| m.on_api(ctx, call));
        if let ApiOutcome::Deny { reason } = &outcome {
            let t = self.current_instant();
            let what = call.describe(self.trace.strings());
            let what = self.trace.intern(&what);
            let reason = self.trace.intern(reason);
            self.trace.fact(t, Fact::Denied { what, reason });
        }
        outcome
    }

    pub(crate) fn fact(&mut self, fact: Fact) {
        let t = self.current_instant();
        #[cfg(feature = "observe")]
        if let Some(o) = self.obs.as_ref() {
            match &fact {
                Fact::FetchStarted { .. } => o.handle.counter_add(o.syms.fetches_started, 1),
                Fact::FetchSettled { .. } => o.handle.counter_add(o.syms.fetches_settled, 1),
                Fact::WorkerStarted { thread, .. } => {
                    o.handle.counter_add(o.syms.workers_started, 1);
                    o.handle.instant(o.syms.worker_started, thread.index(), t);
                }
                Fact::WorkerTerminated { .. } => {
                    o.handle.counter_add(o.syms.workers_terminated, 1);
                    o.handle
                        .instant(o.syms.worker_terminated, MAIN_THREAD.index(), t);
                }
                _ => {}
            }
        }
        self.trace.fact(t, fact);
    }

    // --- event machinery ----------------------------------------------------

    fn handle(&mut self, ev: SimEvent) {
        match ev {
            SimEvent::Pump(tid) => self.pump(tid),
            SimEvent::RawTrigger(token) => self.raw_trigger(token),
            SimEvent::WorkerStart(wid) => self.worker_start(wid),
            SimEvent::WorkerTeardown(wid) => self.finish_worker_teardown(wid),
            SimEvent::MediatorTick(tid) => {
                self.with_mediator(|m, ctx| m.on_tick(ctx, tid));
            }
            SimEvent::KernelMessage {
                from,
                to,
                payload,
                sender_node,
            } => {
                // The receiving hook runs outside any task; attribute it (and
                // any replies it sends) to the original sender's node.
                self.hb_ctx_node = sender_node;
                self.with_mediator(|m, ctx| m.on_kernel_message(ctx, from, to, &payload));
                self.hb_ctx_node = None;
            }
            SimEvent::WorkerCrash(index) => self.crash_worker(index),
        }
    }

    /// Fault-plan worker crash: abrupt teardown, no defense interception —
    /// the process just died.
    fn crash_worker(&mut self, index: u64) {
        let i = index as usize;
        if i >= self.workers.len() || self.workers[i].state == WorkerState::Closed {
            return;
        }
        let wid = self.workers[i].id;
        self.do_terminate(wid, TerminationReason::Crash, false);
        if let Some(inj) = self.fault.as_mut() {
            inj.note_worker_crashed();
        }
        #[cfg(feature = "observe")]
        if let Some(o) = self.obs.as_ref() {
            o.handle.counter_add(o.syms.worker_crashes, 1);
        }
    }

    pub(crate) fn fresh_token(&mut self) -> EventToken {
        let t = EventToken::new(self.next_token);
        self.next_token += 1;
        t
    }

    /// Registers an asynchronous event and schedules its raw trigger.
    pub(crate) fn register_async(&mut self, reg: AsyncReg) -> EventToken {
        let AsyncReg {
            thread,
            kind,
            source,
            callback,
            arg,
            raw_fire_at,
            from_worker,
            polyfill_worker,
            nesting,
            forked_from,
        } = reg;
        // The registering task is the callback task's HB ancestor (the
        // timer-arm→fire / send→deliver fork edge), unless the caller
        // explicitly pinned a different ancestor (interval re-arms).
        let forked_from = forked_from.unwrap_or_else(|| self.hb_current_node());
        let token = self.fresh_token();
        let info = AsyncEventInfo {
            token,
            thread,
            kind,
            registered_at: self.current_instant(),
            doc_generation: self.threads[thread.index() as usize].doc_generation,
            context: self.cur.as_ref().map_or(0, |c| c.context),
        };
        self.with_mediator(|m, ctx| m.on_register(ctx, &info));
        // Confirmation faults: a dropped confirmation leaves the event
        // registered but never triggers it (the kernel sees a Pending event
        // that never confirms — the watchdog's livelock case); a delayed one
        // pushes the raw trigger out.
        let fate = match self.fault.as_mut() {
            Some(inj) => inj.confirm_fate(),
            None => ConfirmFate::Deliver,
        };
        #[cfg(feature = "observe")]
        if let Some(o) = self.obs.as_ref() {
            match &fate {
                ConfirmFate::Drop => o.handle.counter_add(o.syms.confirm_dropped, 1),
                ConfirmFate::Delay(_) => o.handle.counter_add(o.syms.confirm_delayed, 1),
                ConfirmFate::Deliver => {}
            }
        }
        let raw_key = match fate {
            ConfirmFate::Drop => None,
            ConfirmFate::Deliver => Some(
                self.events
                    .push(raw_fire_at.max(self.now), SimEvent::RawTrigger(token)),
            ),
            ConfirmFate::Delay(d) => Some(
                self.events
                    .push(raw_fire_at.max(self.now) + d, SimEvent::RawTrigger(token)),
            ),
        };
        self.pending.insert(
            token,
            PendingEvent {
                info,
                callback,
                arg,
                source,
                raw_key,
                from_worker,
                polyfill_worker,
                nesting,
                context: info.context,
                forked_from,
            },
        );
        token
    }

    /// Cancels a registered (or withheld) event; notifies the mediator.
    pub(crate) fn cancel_event(&mut self, token: EventToken) -> bool {
        let mut found = false;
        if let Some(pe) = self.pending.remove(&token) {
            if let Some(k) = pe.raw_key {
                self.events.cancel(k);
            }
            found = true;
        }
        if self.withheld.remove(&token).is_some() {
            found = true;
        }
        if found {
            self.with_mediator(|m, ctx| m.on_cancel(ctx, token));
        }
        found
    }

    fn raw_trigger(&mut self, token: EventToken) {
        let Some(mut pe) = self.pending.remove(&token) else {
            return; // cancelled
        };
        pe.raw_key = None;
        // Repeating registrations (intervals, media, CSS ticks) re-arm before
        // the current firing is even confirmed, like the real event loop.
        self.maybe_rearm(token, pe.forked_from);
        let raw_fire = self.now;

        // Batched confirmation drain: raw triggers that share this exact
        // virtual instant are settled through one mediator call instead of
        // one per event. Only *non-periodic* followers may join the batch —
        // a periodic firing re-arms (a fresh registration) between confirms
        // on the sequential path, which does not commute with the confirms
        // before it. Each extra pop consumes a step exactly as the run loop
        // would have (the loop adds the final +1 for the original event).
        let mut items = std::mem::take(&mut self.batch_items);
        let mut pes = std::mem::take(&mut self.batch_pes);
        items.clear();
        pes.clear();
        items.push((pe.info, raw_fire));
        pes.push(pe);
        loop {
            if self.steps + 1 >= self.cfg.step_limit {
                break;
            }
            let tok = match self.events.peek() {
                Some((t, SimEvent::RawTrigger(tok))) if t == self.now => *tok,
                _ => break,
            };
            if self.is_periodic_firing(tok) {
                break;
            }
            self.events.pop();
            self.steps += 1;
            let Some(mut pe) = self.pending.remove(&tok) else {
                continue; // cancelled follower: consumed, like the run loop
            };
            pe.raw_key = None;
            items.push((pe.info, raw_fire));
            pes.push(pe);
        }
        if items.len() == 1 {
            let info = items[0].0;
            let pe = pes.pop().expect("one batched event");
            let decision = self.with_mediator(|m, ctx| m.on_confirm(ctx, &info, raw_fire));
            self.settle_confirmed(pe, decision);
        } else {
            self.confirm_batched(&items, &mut pes);
        }
        items.clear();
        pes.clear();
        self.batch_items = items;
        self.batch_pes = pes;
    }

    /// Whether `token` is the current firing of a live periodic timer
    /// (interval / media / CSS tick) — i.e. confirming it would re-arm.
    fn is_periodic_firing(&self, token: EventToken) -> bool {
        self.timers
            .iter()
            .any(|t| t.current_token == token && !t.cancelled && t.period.is_some())
    }

    /// Applies one confirmation decision to its pending event, exactly as
    /// the tail of the sequential `raw_trigger` did.
    fn settle_confirmed(&mut self, pe: PendingEvent, decision: ConfirmDecision) {
        match decision {
            ConfirmDecision::InvokeAt(t) => {
                let at = t.max(self.now);
                self.invoke_event(pe, at);
            }
            ConfirmDecision::Withhold => {
                self.withheld.insert(pe.info.token, pe);
            }
            ConfirmDecision::Drop => {
                // The mediator already wrote this event off (e.g. the
                // watchdog expired it); a late confirmation is discarded.
            }
        }
    }

    /// Settles a same-instant batch of confirmations through one mediator
    /// call. The mediator records a mark after each item; ops are applied
    /// interleaved with the per-item decisions so the observable sequence
    /// (ops_0, decision_0, ops_1, decision_1, …) is byte-identical to the
    /// sequential path.
    fn confirm_batched(
        &mut self,
        items: &[(AsyncEventInfo, SimTime)],
        pes: &mut Vec<PendingEvent>,
    ) {
        let mut m = self.mediator.take().expect("mediator hook reentrancy");
        let instant = self.current_instant();
        let node = self.hb_current_node();
        let (ops_buf, marks_buf) = self.med_scratch.take().unwrap_or_default();
        let mut decisions = std::mem::take(&mut self.batch_decisions);
        decisions.clear();
        let (mut ops, mut marks) = {
            let mut ctx = MediatorCtx::recycled(instant, &mut self.rng_med, ops_buf, marks_buf);
            ctx.node = node;
            m.confirm_batch(&mut ctx, items, &mut decisions);
            ctx.into_parts()
        };
        self.mediator = Some(m);
        debug_assert_eq!(decisions.len(), items.len(), "one decision per item");
        debug_assert_eq!(marks.len(), items.len(), "one mark per item");
        let mut op_stream = ops.drain(..);
        let mut applied: usize = 0;
        for (i, pe) in pes.drain(..).enumerate() {
            let mark = marks.get(i).copied().unwrap_or(u32::MAX) as usize;
            while applied < mark {
                match op_stream.next() {
                    Some(op) => {
                        applied += 1;
                        self.apply_op(op);
                    }
                    None => break,
                }
            }
            self.settle_confirmed(pe, decisions[i]);
        }
        for op in op_stream {
            self.apply_op(op);
        }
        marks.clear();
        self.med_scratch = Some((ops, marks));
        decisions.clear();
        self.batch_decisions = decisions;
    }

    fn invoke_event(&mut self, pe: PendingEvent, at: SimTime) {
        let task = Task {
            callback: pe.callback,
            arg: pe.arg,
            source: pe.source,
            token: Some(pe.info.token),
            nesting: pe.nesting,
            from_worker: pe.from_worker,
            polyfill_worker: pe.polyfill_worker,
            sandboxed: false,
            epoch: 0, // overwritten by enqueue_task
            context: pe.context,
            forked_from: pe.forked_from,
        };
        self.enqueue_task(pe.info.thread, at, task);
    }

    fn maybe_rearm(&mut self, fired: EventToken, forked_from: Option<u64>) {
        let Some(idx) = self
            .timers
            .iter()
            .position(|t| t.current_token == fired && !t.cancelled && t.period.is_some())
        else {
            return;
        };
        let (thread, period, nesting, poly, is_media, is_css, callback) = {
            let t = &self.timers[idx];
            (
                t.thread,
                t.period.expect("checked above"),
                t.nesting,
                t.polyfill_worker,
                t.kind_is_media,
                t.kind_is_css,
                t.callback.clone(),
            )
        };
        if !self.threads[thread.index() as usize].alive {
            return;
        }
        let kind = if is_media {
            AsyncKind::Media
        } else if is_css {
            AsyncKind::CssTick
        } else {
            AsyncKind::Interval { delay: period }
        };
        let source = if is_media {
            TaskSource::Media
        } else if is_css {
            TaskSource::CssAnimation
        } else {
            TaskSource::Timer
        };
        // Anchored firing: the n-th firing targets `anchor + n·period`, with
        // bounded per-firing jitter that never accumulates.
        self.timers[idx].fires += 1;
        let n = self.timers[idx].fires;
        let anchor = self.timers[idx].anchor;
        let jitter = self
            .rng_sched
            .jitter(period, self.cfg.profile.sched.timer_jitter)
            .saturating_sub(period);
        let target = (anchor + period * n + jitter).max(self.now);
        // Re-arms happen outside any task; every firing keeps the node that
        // armed the timer as its HB ancestor.
        let token = self.register_async(
            AsyncReg::new(thread, kind, source, callback, JsValue::Undefined, target)
                .in_polyfill(poly)
                .nesting(nesting)
                .forked(forked_from),
        );
        self.timers[idx].current_token = token;
    }

    pub(crate) fn enqueue_task(&mut self, thread: ThreadId, at: SimTime, mut task: Task) {
        let i = thread.index() as usize;
        if i >= self.threads.len() || !self.threads[i].alive {
            return;
        }
        task.epoch = self.thread_epochs[i];
        if task.source == TaskSource::Message && task.from_worker.is_some() {
            self.threads[i].queued_worker_messages += 1;
        }
        self.threads[i].enqueue(at.max(self.now), task);
        self.schedule_pump(thread, at.max(self.now));
    }

    fn schedule_pump(&mut self, thread: ThreadId, at: SimTime) {
        let i = thread.index() as usize;
        let at = at.max(self.now).max(self.threads[i].busy_until);
        if let Some(existing) = self.threads[i].next_pump_at {
            if existing <= at {
                return;
            }
        }
        self.threads[i].next_pump_at = Some(at);
        self.events.push(at, SimEvent::Pump(thread));
    }

    fn pump(&mut self, thread: ThreadId) {
        let i = thread.index() as usize;
        if i >= self.threads.len() || !self.threads[i].alive {
            return;
        }
        if self.threads[i].next_pump_at == Some(self.now) {
            self.threads[i].next_pump_at = None;
        }
        let Some(ready) = self.threads[i].run_queue.peek_time() else {
            return;
        };
        let start = ready.max(self.threads[i].busy_until).max(self.now);
        if start > self.now {
            self.schedule_pump(thread, start);
            return;
        }
        let task = self.threads[i]
            .run_queue
            .pop()
            .expect("peeked task exists")
            .value;
        if task.source == TaskSource::Message && task.from_worker.is_some() {
            self.threads[i].queued_worker_messages =
                self.threads[i].queued_worker_messages.saturating_sub(1);
        }
        if task.epoch < self.thread_epochs[i] {
            // Cleanly cancelled by a defense (doc-bound cancellation). The
            // mediator still learns the slot was consumed, so serialized
            // dispatchers do not wait for a task that will never run.
            let token = task.token;
            let context = task.context;
            self.with_mediator(|m, ctx| m.on_task_dispatched(ctx, thread, token, context));
            self.schedule_next_pump(thread);
            return;
        }
        self.run_task(thread, task);
        self.schedule_next_pump(thread);
    }

    fn schedule_next_pump(&mut self, thread: ThreadId) {
        let i = thread.index() as usize;
        if !self.threads[i].alive {
            return;
        }
        if let Some(next) = self.threads[i].run_queue.peek_time() {
            let at = next.max(self.threads[i].busy_until);
            self.schedule_pump(thread, at);
        }
    }

    fn run_task(&mut self, thread: ThreadId, task: Task) {
        let i = thread.index() as usize;
        let start = self.now;
        let task_context = task.context;
        // Every dispatched task is one HB node; its fork ancestor is the
        // task that registered the callback / sent the message.
        let node = self.next_node;
        self.next_node += 1;
        let label = self.trace.intern(source_label(task.source));
        self.trace.node(
            self.now,
            NodeRecord {
                node,
                thread,
                forked_from: task.forked_from,
                label,
            },
        );
        // The dispatch hook sees the new node (kernels chain consecutive
        // dispatches into DispatchChain edges off it).
        self.hb_ctx_node = Some(node);
        self.with_mediator(|m, ctx| m.on_task_dispatched(ctx, thread, task.token, task_context));
        // Delivering a message or a network completion reads the target
        // document's state — the access that races with navigation/close.
        if matches!(task.source, TaskSource::Message | TaskSource::Net) {
            self.hb_access(
                thread,
                AccessTarget::Document { thread },
                AccessKind::Read,
                "deliver-into-document",
            );
        }
        self.hb_ctx_node = None;
        self.cur = Some(CurTask {
            thread,
            start,
            cost: SimDuration::ZERO,
            source: task.source,
            timer_nesting: task.nesting,
            from_worker: task.from_worker,
            polyfill_worker: task.polyfill_worker,
            sandboxed: task.sandboxed,
            context: task.context,
            node,
            sab_seen: HashMap::new(),
        });
        // The task span: its width is the task's simulated cost — the
        // quantity the event-loop-occupancy attacks (Loophole) measure.
        #[cfg(feature = "observe")]
        let obs_task = self.obs.as_ref().map(|o| {
            o.handle.span_enter(o.syms.task, thread.index(), start);
            (o.handle.clone(), o.syms.task, o.syms.tasks)
        });
        let cb = task.callback.clone();
        {
            let mut scope = JsScope::new(self, thread);
            cb(&mut scope, task.arg);
        }
        let cur = self.cur.take().expect("current task context");
        #[cfg(feature = "observe")]
        if let Some((h, task_sym, tasks_sym)) = obs_task {
            h.span_exit(task_sym, thread.index(), start + cur.cost);
            h.counter_add(tasks_sym, 1);
        }
        let overhead = self.cfg.profile.sched.dispatch_overhead;
        if i < self.threads.len() && self.threads[i].alive {
            self.threads[i].busy_until = start + overhead + cur.cost;
        }
    }

    // --- timers ---------------------------------------------------------------

    pub(crate) fn set_timer(
        &mut self,
        thread: ThreadId,
        delay_ms: f64,
        callback: Callback,
        repeating: bool,
        media: bool,
        css: bool,
    ) -> TimerId {
        let p = &self.cfg.profile.sched;
        let nesting = self.cur.as_ref().map_or(0, |c| {
            if c.source == TaskSource::Timer {
                c.timer_nesting + 1
            } else {
                0
            }
        });
        let clamp = if nesting > p.nesting_threshold || repeating {
            p.timer_nested_clamp
        } else {
            p.timer_min_clamp
        };
        let requested = SimDuration::from_millis_f64(delay_ms);
        let delay = if requested < clamp { clamp } else { requested };
        let jittered = self.rng_sched.jitter(delay, p.timer_jitter);
        let (kind, source) = if media {
            (AsyncKind::Media, TaskSource::Media)
        } else if css {
            (AsyncKind::CssTick, TaskSource::CssAnimation)
        } else if repeating {
            (AsyncKind::Interval { delay }, TaskSource::Timer)
        } else {
            (AsyncKind::Timeout { delay, nesting }, TaskSource::Timer)
        };
        let poly = self.cur.as_ref().and_then(|c| c.polyfill_worker);
        let fire_at = self.current_instant() + jittered;
        let token = self.register_async(
            AsyncReg::new(
                thread,
                kind,
                source,
                callback.clone(),
                JsValue::Undefined,
                fire_at,
            )
            .in_polyfill(poly)
            .nesting(nesting),
        );
        let id = TimerId::new(self.timers.len() as u64);
        self.timers.push(TimerRecord {
            thread,
            callback,
            period: repeating.then_some(delay),
            kind_is_media: media,
            kind_is_css: css,
            current_token: token,
            cancelled: false,
            nesting,
            polyfill_worker: poly,
            anchor: fire_at,
            fires: 0,
        });
        id
    }

    pub(crate) fn clear_timer(&mut self, id: TimerId) {
        let i = id.index() as usize;
        if i >= self.timers.len() || self.timers[i].cancelled {
            return;
        }
        self.timers[i].cancelled = true;
        let token = self.timers[i].current_token;
        // Paper §III-D2: cancelling an already-invoked event is ignored.
        self.cancel_event(token);
    }

    // --- requestAnimationFrame --------------------------------------------------

    pub(crate) fn request_raf(
        &mut self,
        thread: ThreadId,
        callback: Callback,
    ) -> crate::ids::RafId {
        let vsync = self.cfg.profile.sched.vsync;
        let instant = self.current_instant();
        let mut fire = instant.quantize_up(vsync);
        if fire <= instant {
            fire += vsync;
        }
        let poly = self.cur.as_ref().and_then(|c| c.polyfill_worker);
        let token = self.register_async(
            AsyncReg::new(
                thread,
                AsyncKind::Raf,
                TaskSource::Animation,
                callback,
                JsValue::Undefined,
                fire,
            )
            .in_polyfill(poly),
        );
        let id = crate::ids::RafId::new(self.next_raf);
        self.next_raf += 1;
        self.raf_tokens.insert(id.index(), token);
        id
    }

    pub(crate) fn cancel_raf(&mut self, id: crate::ids::RafId) {
        if let Some(token) = self.raf_tokens.remove(&id.index()) {
            self.cancel_event(token);
        }
    }

    // --- workers ------------------------------------------------------------------

    pub(crate) fn create_worker_impl(&mut self, src: String, script: WorkerScript) -> WorkerId {
        let parent = self.cur.as_ref().map_or(MAIN_THREAD, |c| c.thread);
        let sandboxed = self.cur.as_ref().is_some_and(|c| c.sandboxed);
        let wid = WorkerId::new(self.workers.len() as u64);
        let src_sym = self.trace.intern(&src);
        let outcome = self.intercept(&ApiCall::CreateWorker {
            parent,
            worker: wid,
            src: src_sym,
            sandboxed,
        });
        let created_gen = self.threads[parent.index() as usize].doc_generation;
        let parent_origin = self.threads[parent.index() as usize].origin.clone();
        let spec = self.net.lookup(&src);
        let cross = crate::net::is_cross_origin(&self.cfg.origin, &src) && src.contains("://");

        let (thread, polyfill, origin_kind) = match &outcome {
            ApiOutcome::Deny { .. } => {
                // Record a dead worker so the returned handle is inert.
                self.workers.push(WorkerRecord {
                    id: wid,
                    thread: parent,
                    owner: parent,
                    state: WorkerState::Closed,
                    src,
                    polyfill: false,
                    user_terminated: true,
                    transferred_out: Vec::new(),
                    pending_fetches: std::collections::HashSet::new(),
                    created_gen,
                    poly_onmessage: None,
                    owner_onmessage: None,
                    owner_onerror: None,
                    onerror_set: false,
                    created_by_node: None,
                    closed_by_node: None,
                });
                return wid;
            }
            ApiOutcome::PolyfillWorker => (parent, true, OriginKind::Normal),
            ApiOutcome::OpaqueOrigin => {
                let tid = self.spawn_thread(parent, wid, parent_origin);
                (tid, false, OriginKind::Opaque)
            }
            _ => {
                let tid = self.spawn_thread(parent, wid, parent_origin);
                // Native bug (CVE-2011-1190): workers created from sandboxed
                // contexts inherit the parent origin.
                let kind = if sandboxed {
                    OriginKind::InheritedFromSandbox
                } else {
                    OriginKind::Normal
                };
                (tid, false, kind)
            }
        };
        if !polyfill {
            let i = thread.index() as usize;
            self.threads[i].origin_kind = origin_kind;
        }
        self.workers.push(WorkerRecord {
            id: wid,
            thread,
            owner: parent,
            state: WorkerState::Started,
            src: src.clone(),
            polyfill,
            user_terminated: false,
            transferred_out: Vec::new(),
            pending_fetches: std::collections::HashSet::new(),
            created_gen,
            poly_onmessage: None,
            owner_onmessage: None,
            owner_onerror: None,
            onerror_set: false,
            created_by_node: self.hb_current_node(),
            closed_by_node: None,
        });
        self.hb_access(
            parent,
            AccessTarget::WorkerLifecycle { worker: wid },
            AccessKind::Write,
            "create-worker",
        );
        self.fact(Fact::WorkerStarted {
            worker: wid,
            thread,
            parent,
            sandboxed_parent: sandboxed,
            inherited_origin: origin_kind == OriginKind::InheritedFromSandbox
                || (!sandboxed && origin_kind == OriginKind::Normal),
        });

        if !spec.exists {
            // Worker creation failure: the native error message leaks the
            // script URL and a content hint (CVE-2014-1487).
            let message = format!("NetworkError: failed to load worker script {src} (response preview: <secret-bytes>)");
            self.deliver_error_to_owner(wid, message, cross);
            let widx = wid.index() as usize;
            self.workers[widx].state = WorkerState::Closed;
            return wid;
        }

        let spawn = self
            .rng_sched
            .jitter(self.cfg.profile.sched.worker_spawn, 0.1);
        let start_at = self.current_instant() + spawn;
        self.events.push(start_at, SimEvent::WorkerStart(wid));
        // Stash the script to run at start.
        self.worker_scripts.insert(wid, script);
        wid
    }

    fn spawn_thread(&mut self, owner: ThreadId, worker: WorkerId, origin: String) -> ThreadId {
        let tid = ThreadId::new(self.threads.len() as u64);
        self.threads.push(ThreadState::new(
            tid,
            ThreadKind::Worker { owner, worker },
            origin,
        ));
        self.thread_epochs.push(0);
        self.with_mediator(|m, ctx| m.on_thread_started(ctx, tid, true));
        tid
    }

    fn worker_start(&mut self, wid: WorkerId) {
        let i = wid.index() as usize;
        if self.workers[i].state != WorkerState::Started {
            return;
        }
        let Some(script) = self.worker_scripts.remove(&wid) else {
            return;
        };
        let thread = self.workers[i].thread;
        let polyfill = self.workers[i].polyfill;
        let created_by = self.workers[i].created_by_node;
        let task = Task {
            callback: std::rc::Rc::new(move |scope: &mut JsScope<'_>, _| {
                script(scope);
                scope.finish_worker_start();
            }),
            arg: JsValue::Undefined,
            source: TaskSource::Script,
            token: None,
            nesting: 0,
            from_worker: None,
            polyfill_worker: polyfill.then_some(wid),
            sandboxed: false,
            epoch: 0,
            context: 0,
            // create→first-run: the worker's top-level script is ordered
            // after the task that constructed the Worker.
            forked_from: created_by,
        };
        self.enqueue_task(thread, self.now, task);
    }

    pub(crate) fn worker_became_ready(&mut self, wid: WorkerId) {
        let i = wid.index() as usize;
        if self.workers[i].state == WorkerState::Started {
            self.workers[i].state = WorkerState::Ready;
        }
        let thread = self.workers[i].thread;
        let ti = thread.index() as usize;
        if !self.workers[i].polyfill {
            self.threads[ti].ready = true;
            let buffered: Vec<JsValue> = std::mem::take(&mut self.threads[ti].startup_buffer);
            for v in buffered {
                self.deliver_message_task(thread, None, v, self.now);
            }
        }
    }

    /// Enqueues the message-dispatch task for a delivery that already passed
    /// registration/confirmation (startup-buffer flush path).
    fn deliver_message_task(
        &mut self,
        thread: ThreadId,
        from_worker: Option<WorkerId>,
        value: JsValue,
        at: SimTime,
    ) {
        let task = Task {
            callback: std::rc::Rc::new(move |scope: &mut JsScope<'_>, v| {
                scope.dispatch_incoming_message(v);
            }),
            arg: value,
            source: TaskSource::Message,
            token: None,
            nesting: 0,
            from_worker,
            polyfill_worker: None,
            sandboxed: false,
            epoch: 0,
            context: 0,
            // Flushed after the worker-ready task, which itself is ordered
            // after the buffering delivery — transitively after the send.
            forked_from: self.hb_current_node(),
        };
        self.enqueue_task(thread, at, task);
    }

    pub(crate) fn terminate_worker_impl(&mut self, wid: WorkerId, reason: TerminationReason) {
        let i = wid.index() as usize;
        if i >= self.workers.len() || self.workers[i].state == WorkerState::Closed {
            return;
        }
        let during_dispatch = self
            .cur
            .as_ref()
            .is_some_and(|c| c.thread == self.workers[i].owner && c.from_worker == Some(wid));
        let live_transfers = self.workers[i]
            .transferred_out
            .iter()
            .filter(|b| !self.buffers[b.index() as usize].freed)
            .count();
        let pending_fetches = self.workers[i].pending_fetches.len();
        let outcome = self.intercept(&ApiCall::TerminateWorker {
            worker: wid,
            reason,
            during_dispatch,
            live_transfers,
            pending_fetches,
        });
        match outcome {
            ApiOutcome::Deny { .. } => {}
            ApiOutcome::DeferTermination => {
                self.workers[i].user_terminated = true;
                self.workers[i].state = WorkerState::Closing;
                self.fact(Fact::WorkerTerminated {
                    worker: wid,
                    reason,
                    during_dispatch: false,
                    freed_transfers: 0,
                    user_level_only: true,
                });
            }
            _ => {
                if reason == TerminationReason::SelfClose && !self.workers[i].polyfill {
                    // The native engine tears a self-closed worker down
                    // asynchronously: it sits in the "closing" state for a
                    // short window (the CVE-2013-5602 null-deref window).
                    self.workers[i].state = WorkerState::Closing;
                    self.workers[i].closed_by_node = self.hb_current_node();
                    let at = self.current_instant() + SimDuration::from_millis(5);
                    self.events.push(at, SimEvent::WorkerTeardown(wid));
                } else {
                    self.do_terminate(wid, reason, during_dispatch);
                }
            }
        }
    }

    pub(crate) fn do_terminate(
        &mut self,
        wid: WorkerId,
        reason: TerminationReason,
        during_dispatch: bool,
    ) {
        let i = wid.index() as usize;
        if self.workers[i].state == WorkerState::Closed {
            return;
        }
        self.workers[i].state = WorkerState::Closed;
        let thread = self.workers[i].thread;
        let owner = self.workers[i].owner;
        let polyfill = self.workers[i].polyfill;
        if !polyfill {
            let ti = thread.index() as usize;
            self.threads[ti].kill();
            self.thread_epochs[ti] += 1;
        }
        self.hb_access(
            owner,
            AccessTarget::WorkerLifecycle { worker: wid },
            AccessKind::Write,
            "terminate-worker",
        );
        // Native bug (CVE-2014-1488): buffers this worker transferred out are
        // backed by its allocator and get freed with it.
        let transfers: Vec<BufferId> = self.workers[i].transferred_out.clone();
        let mut freed = 0;
        if !polyfill {
            for b in transfers {
                let bi = b.index() as usize;
                if !self.buffers[bi].freed {
                    self.buffers[bi].freed = true;
                    freed += 1;
                    self.hb_access(
                        owner,
                        AccessTarget::Buffer { buffer: b },
                        AccessKind::Write,
                        "free-transferred-buffer",
                    );
                    self.fact(Fact::TransferFreed { buffer: b });
                }
            }
        }
        // Pending fetches dangle: their owner is gone but the requests (and
        // any abort signals) stay live — the CVE-2018-5092 precondition.
        let fetches: Vec<RequestId> = self.workers[i].pending_fetches.iter().copied().collect();
        for r in fetches {
            let ri = r.index() as usize;
            if self.requests[ri].state == RequestState::Pending {
                self.requests[ri].owner_alive = false;
            }
        }
        self.fact(Fact::WorkerTerminated {
            worker: wid,
            reason,
            during_dispatch,
            freed_transfers: freed,
            user_level_only: false,
        });
        if during_dispatch && !polyfill {
            self.fact(Fact::DispatchUseAfterFree { worker: wid });
        }
        if !polyfill {
            // The thread is gone for good: let the mediator reap whatever it
            // still holds for it (orphaned kernel events, inflight slots).
            self.with_mediator(|m, ctx| m.on_thread_exited(ctx, thread));
        }
    }

    fn finish_worker_teardown(&mut self, wid: WorkerId) {
        let i = wid.index() as usize;
        if self.workers[i].state != WorkerState::Closed {
            // Asynchronous teardown runs outside any task: give it a
            // synthetic HB node forked from the task that initiated it, so
            // the frees it performs are ordered after the close but remain
            // concurrent with everything else — the use-after-termination
            // window the race detector must see.
            let node = self.next_node;
            self.next_node += 1;
            let thread = self.workers[i].thread;
            let label = self.trace.intern("worker-teardown");
            self.trace.node(
                self.now,
                NodeRecord {
                    node,
                    thread,
                    forked_from: self.workers[i].closed_by_node,
                    label,
                },
            );
            self.hb_synth_node = Some(node);
            self.do_terminate(wid, TerminationReason::DocumentTeardown, false);
            self.hb_synth_node = None;
        }
    }

    fn deliver_error_to_owner(&mut self, wid: WorkerId, message: String, cross_origin: bool) {
        let owner = self
            .workers
            .get(wid.index() as usize)
            .map_or(MAIN_THREAD, |w| w.owner);
        self.deliver_error_event(
            owner,
            Some(wid),
            crate::trace::ErrorSource::WorkerCreation,
            message,
            cross_origin,
        );
    }

    /// Routes an error message through the mediator (which may sanitize it)
    /// and delivers it as a task to the worker object's `onerror` (when
    /// `via_worker` is set) or the thread's own `onerror`.
    pub(crate) fn deliver_error_event(
        &mut self,
        thread: ThreadId,
        via_worker: Option<WorkerId>,
        source: crate::trace::ErrorSource,
        native_message: String,
        leaks_cross_origin: bool,
    ) {
        let native_sym = self.trace.intern(&native_message);
        let outcome = self.intercept(&ApiCall::ErrorEvent {
            thread,
            message: native_sym,
            leaks_cross_origin,
        });
        let (message, leaked) = match outcome {
            ApiOutcome::SanitizeError { replacement } => (replacement, false),
            ApiOutcome::Deny { .. } => return,
            _ => (native_message, leaks_cross_origin),
        };
        let latency = self.rng_sched.jitter(
            self.cfg.profile.sched.message_latency,
            self.cfg.profile.sched.message_jitter,
        );
        // The callback records the delivered text by symbol: `Sym` is
        // `Copy`, so repeated deliveries no longer clone the message.
        let msg_sym = self.trace.intern(&message);
        let token = self.register_async(AsyncReg::new(
            thread,
            AsyncKind::Net {
                req: RequestId::new(u64::MAX),
                class: crate::event::NetClass::ScriptLoad,
                cached: false,
            },
            TaskSource::Net,
            std::rc::Rc::new(move |scope: &mut JsScope<'_>, arg| {
                scope.browser.fact(Fact::ErrorMessageDelivered {
                    thread: scope.thread(),
                    source,
                    message: msg_sym,
                    leaked_cross_origin: leaked,
                });
                scope.dispatch_error_for(via_worker, arg);
            }),
            JsValue::from(message),
            self.current_instant() + latency,
        ));
        let _ = token;
    }

    // --- buffers / signals / SAB -----------------------------------------------

    pub(crate) fn create_buffer(&mut self, owner: ThreadId, len: usize) -> BufferId {
        let id = BufferId::new(self.buffers.len() as u64);
        self.buffers.push(BufferRecord {
            id,
            owner,
            len,
            freed: false,
            backed_by_worker: None,
        });
        id
    }

    pub(crate) fn create_signal(&mut self) -> SignalId {
        let id = SignalId::new(self.signals.len() as u64);
        self.signals.push(SignalRecord::default());
        id
    }

    pub(crate) fn create_sab(&mut self, len: usize) -> Option<SabId> {
        if !self.cfg.profile.sab_enabled {
            return None;
        }
        if !self.with_mediator(|m, _| m.allow_sab()) {
            return None;
        }
        let id = SabId::new(self.sabs.len() as u64);
        self.sabs.push(SharedBuffer {
            cells: vec![0.0; len],
        });
        Some(id)
    }

    pub(crate) fn sab_cell(&mut self, id: SabId, idx: usize) -> Option<&mut f64> {
        self.sabs
            .get_mut(id.index() as usize)
            .and_then(|s| s.cells.get_mut(idx))
    }

    /// Starts a continuous increment process on a SAB cell (a counting
    /// worker's tight loop, modelled analytically).
    pub(crate) fn sab_start_counter(&mut self, id: SabId, idx: usize, period: SimDuration) {
        let start = self.current_instant();
        self.sab_counters.insert(
            (id.index(), idx),
            (start, period.max(SimDuration::from_nanos(1))),
        );
    }

    /// The cell's value at the current virtual instant, counters included.
    pub(crate) fn sab_value_now(&mut self, id: SabId, idx: usize) -> Option<f64> {
        let now = self.current_instant();
        let base = *self.sab_cell(id, idx)?;
        let extra = match self.sab_counters.get(&(id.index(), idx)) {
            Some(&(start, period)) => {
                (now.saturating_duration_since(start).as_nanos() / period.as_nanos()) as f64
            }
            None => 0.0,
        };
        Some(base + extra)
    }

    // --- document teardown -------------------------------------------------------

    pub(crate) fn navigate_impl(&mut self, thread: ThreadId) {
        let outcome = self.intercept(&ApiCall::Navigate { thread });
        let clean = matches!(outcome, ApiOutcome::CancelDocBound);
        let ti = thread.index() as usize;
        if clean {
            self.cancel_doc_bound(thread);
        }
        // Bump the generation and reset the tree either way.
        self.threads[ti].doc_generation += 1;
        self.dom.navigate();
        self.hb_access(
            thread,
            AccessTarget::Document { thread },
            AccessKind::Write,
            "navigate",
        );
        // Workers owned by this document tear down.
        let owned: Vec<WorkerId> = self
            .workers
            .iter()
            .filter(|w| w.owner == thread && w.state != WorkerState::Closed)
            .map(|w| w.id)
            .collect();
        for w in owned {
            if clean {
                // Defense path: settle the worker's fetches without dangling
                // aborts, then close it at the user level only.
                self.settle_worker_fetches(w);
                let wi = w.index() as usize;
                self.workers[wi].user_terminated = true;
                self.workers[wi].state = WorkerState::Closing;
                self.fact(Fact::WorkerTerminated {
                    worker: w,
                    reason: TerminationReason::DocumentTeardown,
                    during_dispatch: false,
                    freed_transfers: 0,
                    user_level_only: true,
                });
            } else {
                // Native path: teardown is asynchronous, leaving a window in
                // which the worker can still post to the freed document.
                self.workers[w.index() as usize].closed_by_node = self.hb_current_node();
                let teardown_at = self.now + SimDuration::from_millis(10);
                self.events.push(teardown_at, SimEvent::WorkerTeardown(w));
            }
        }
    }

    pub(crate) fn close_document_impl(&mut self, thread: ThreadId) {
        let ti = thread.index() as usize;
        let pending_msgs = self.threads[ti].queued_worker_messages;
        let outcome = self.intercept(&ApiCall::CloseDocument {
            thread,
            pending_worker_messages: pending_msgs,
        });
        let clean = matches!(outcome, ApiOutcome::CancelDocBound);
        self.hb_access(
            thread,
            AccessTarget::Document { thread },
            AccessKind::Write,
            "close-document",
        );
        if clean {
            self.cancel_doc_bound(thread);
            let owned: Vec<WorkerId> = self
                .workers
                .iter()
                .filter(|w| w.owner == thread && w.state != WorkerState::Closed)
                .map(|w| w.id)
                .collect();
            for w in owned {
                self.settle_worker_fetches(w);
                let wi = w.index() as usize;
                self.workers[wi].user_terminated = true;
                self.workers[wi].state = WorkerState::Closing;
            }
            self.threads[ti].closing = true;
            return;
        }
        // Native path, in the buggy order of Listing 2's trigger:
        // 1. false-terminate workers, leaving their fetches dangling;
        let owned: Vec<WorkerId> = self
            .workers
            .iter()
            .filter(|w| w.owner == thread && w.state != WorkerState::Closed)
            .map(|w| w.id)
            .collect();
        for w in owned {
            self.do_terminate(w, TerminationReason::DocumentTeardown, false);
        }
        // 2. abort every outstanding request of the browsing context —
        //    including the dangling ones (CVE-2018-5092's use-after-free).
        let pending: Vec<RequestId> = self
            .requests
            .iter()
            .filter(|r| r.state == RequestState::Pending)
            .map(|r| r.id)
            .collect();
        for r in pending {
            self.deliver_abort(r);
        }
        // 3. the document is now closing, but already-queued worker messages
        //    still dispatch (CVE-2013-6646).
        self.threads[ti].closing = true;
    }

    fn cancel_doc_bound(&mut self, thread: ThreadId) {
        let ti = thread.index() as usize;
        self.thread_epochs[ti] += 1;
        // Remove every stale event from both maps *before* notifying the
        // mediator: an on_cancel notification may release another withheld
        // event, and a release for an already-removed token is a no-op —
        // otherwise a not-yet-cancelled event could be re-enqueued into the
        // fresh epoch and run against the closed document.
        let mut stale: Vec<EventToken> = self
            .pending
            .values()
            .filter(|pe| pe.info.thread == thread)
            .map(|pe| pe.info.token)
            .collect();
        for t in &stale {
            if let Some(pe) = self.pending.remove(t) {
                if let Some(k) = pe.raw_key {
                    self.events.cancel(k);
                }
            }
        }
        let withheld_stale: Vec<EventToken> = self
            .withheld
            .values()
            .filter(|pe| pe.info.thread == thread)
            .map(|pe| pe.info.token)
            .collect();
        for t in &withheld_stale {
            self.withheld.remove(t);
        }
        stale.extend(withheld_stale);
        // `pending`/`withheld` are hash maps, so the collected order above
        // is arbitrary; cancel in token order or the mediator's release
        // decisions (and dispatch-latency accounting) become a function of
        // hash-seed state.
        stale.sort_by_key(|t| t.index());
        for t in stale {
            // The mediator still hears about each (a serialized dispatcher
            // must not wait on a dropped event).
            self.with_mediator(|m, ctx| m.on_cancel(ctx, t));
        }
        self.threads[ti].queued_worker_messages = 0;
    }

    /// Settles a worker's in-flight fetches without delivering aborts
    /// (defense-side clean teardown).
    fn settle_worker_fetches(&mut self, wid: WorkerId) {
        let wi = wid.index() as usize;
        let mut fetches: Vec<RequestId> = self.workers[wi].pending_fetches.drain().collect();
        // Hash-set drain order is arbitrary; abort in request order so the
        // cancellation sequence the mediator observes is deterministic.
        fetches.sort_by_key(|r| r.index());
        for r in fetches {
            let ri = r.index() as usize;
            if self.requests[ri].state == RequestState::Pending {
                self.requests[ri].state = RequestState::Aborted;
                if let Some(tok) = self.request_tokens.get(&r).copied() {
                    self.cancel_event(tok);
                }
            }
        }
    }

    // --- network -----------------------------------------------------------------

    pub(crate) fn deliver_abort(&mut self, req: RequestId) {
        let ri = req.index() as usize;
        if ri >= self.requests.len() {
            return;
        }
        if self.requests[ri].state != RequestState::Pending {
            return;
        }
        let owner = self.requests[ri].thread;
        let owner_alive = self.requests[ri].owner_alive;
        let outcome = self.intercept(&ApiCall::DeliverAbort {
            req,
            owner,
            owner_alive,
        });
        if matches!(outcome, ApiOutcome::Deny { .. }) {
            return;
        }
        self.fact(Fact::AbortDelivered {
            req,
            owner,
            owner_alive,
        });
        self.hb_access(
            owner,
            AccessTarget::Request { req },
            AccessKind::Write,
            "deliver-abort",
        );
        self.requests[ri].state = RequestState::Aborted;
        if let Some(tok) = self.request_tokens.get(&req).copied() {
            // Replace the success callback with an abort-error delivery when
            // the owner is still alive.
            if owner_alive {
                if let Some(pe) = self.pending.get_mut(&tok) {
                    pe.arg = JsValue::object([
                        ("ok", JsValue::Bool(false)),
                        ("error", JsValue::from("AbortError")),
                    ]);
                    // Fire the callback promptly rather than at network time.
                    if let Some(k) = pe.raw_key.take() {
                        self.events.cancel(k);
                    }
                    let k = self.events.push(self.now, SimEvent::RawTrigger(tok));
                    if let Some(pe) = self.pending.get_mut(&tok) {
                        pe.raw_key = Some(k);
                    }
                }
            } else {
                // Owner is gone: nothing to deliver to — the signal hit freed
                // state (that *is* the vulnerability; the fact above records
                // it). Drop the pending event.
                self.cancel_event(tok);
            }
        }
    }

    // --- console / records ----------------------------------------------------------

    pub(crate) fn push_console(&mut self, v: JsValue) {
        self.console.push(v);
    }

    pub(crate) fn push_record(&mut self, key: String, v: JsValue) {
        self.records.insert(key, v);
    }

    // --- IndexedDB ------------------------------------------------------------------

    pub(crate) fn idb_open_impl(&mut self, thread: ThreadId, name: String, persist: bool) -> bool {
        let outcome = self.intercept(&ApiCall::IdbOpen {
            thread,
            private_mode: self.cfg.private_mode,
            persist,
        });
        if matches!(outcome, ApiOutcome::Deny { .. }) {
            return false;
        }
        let persisted = persist;
        self.idb.push(IdbRecord {
            name,
            persisted,
            private_session: self.cfg.private_mode,
        });
        if self.cfg.private_mode && persisted {
            self.fact(Fact::IdbPersistedInPrivateMode { thread });
        }
        true
    }

    /// Whether any IndexedDB data persisted from a private session (test
    /// and oracle support).
    #[must_use]
    pub fn idb_private_leftovers(&self) -> usize {
        self.idb
            .iter()
            .filter(|r| r.persisted && r.private_session)
            .count()
    }
}

impl Browser {
    pub(crate) fn request_token(&mut self, req: RequestId, token: EventToken) {
        self.request_tokens.insert(req, token);
    }

    /// Clamps a proposed message-arrival instant so the (from, to) channel
    /// stays FIFO, and records it as the channel's new high-water mark.
    pub(crate) fn channel_arrival(
        &mut self,
        from: ThreadId,
        to: ThreadId,
        proposed: SimTime,
    ) -> SimTime {
        let key = (from.index(), to.index());
        let last = self
            .channel_last
            .get(&key)
            .copied()
            .unwrap_or(SimTime::ZERO);
        let at = proposed.max(last + SimDuration::from_nanos(1));
        self.channel_last.insert(key, at);
        at
    }

    /// The delivery instants for one cross-thread message after fault
    /// injection: `[]` = lost, one instant = normal, two = duplicated. A
    /// reordered message keeps the channel's FIFO high-water mark at its
    /// *undelayed* arrival, so later sends can overtake it.
    pub(crate) fn message_arrivals(
        &mut self,
        from: ThreadId,
        to: ThreadId,
        proposed: SimTime,
    ) -> Vec<SimTime> {
        let fate = match self.fault.as_mut() {
            Some(inj) => inj.message_fate(),
            None => MessageFate::Deliver,
        };
        match fate {
            MessageFate::Deliver => vec![self.channel_arrival(from, to, proposed)],
            MessageFate::Drop => Vec::new(),
            MessageFate::Duplicate => {
                let first = self.channel_arrival(from, to, proposed);
                let second = self.channel_arrival(from, to, first);
                vec![first, second]
            }
            MessageFate::Delay(d) => {
                let at = self.channel_arrival(from, to, proposed);
                vec![at + d]
            }
        }
    }
}

/// Short HB-node label for a task source.
fn source_label(source: TaskSource) -> &'static str {
    match source {
        TaskSource::Script => "script",
        TaskSource::Timer => "timer",
        TaskSource::Message => "message",
        TaskSource::Animation => "raf",
        TaskSource::Net => "net",
        TaskSource::Media => "media",
        TaskSource::CssAnimation => "css",
        TaskSource::Kernel => "kernel",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mediator::LegacyMediator;
    use crate::task::cb;

    fn browser(seed: u64) -> Browser {
        Browser::new(
            BrowserConfig::new(BrowserProfile::chrome(), seed),
            Box::new(LegacyMediator),
        )
    }

    #[test]
    fn new_browser_starts_with_one_ready_main_thread() {
        let b = browser(1);
        assert_eq!(b.threads.len(), 1);
        assert!(b.threads[0].alive);
        assert!(b.threads[0].ready);
        assert_eq!(b.now(), SimTime::ZERO);
        assert_eq!(b.defense_name(), "legacy");
    }

    #[test]
    fn run_until_respects_the_deadline() {
        let mut b = browser(2);
        b.boot(|scope| {
            scope.set_timeout(
                10.0,
                cb(|scope, _| {
                    scope.record("early", JsValue::from(true));
                }),
            );
            scope.set_timeout(
                100.0,
                cb(|scope, _| {
                    scope.record("late", JsValue::from(true));
                }),
            );
        });
        b.run_until(SimTime::from_millis(50));
        assert!(b.record_value("early").is_some());
        assert!(b.record_value("late").is_none());
        assert_eq!(b.now(), SimTime::from_millis(50));
        // Continuing picks the late timer up.
        b.run_until_idle();
        assert!(b.record_value("late").is_some());
    }

    #[test]
    fn step_limit_caps_runaway_loops() {
        let mut cfg = BrowserConfig::new(BrowserProfile::chrome(), 3);
        cfg.step_limit = 500;
        let mut b = Browser::new(cfg, Box::new(LegacyMediator));
        b.boot(|scope| {
            // A self-sustaining task storm.
            fn spin(scope: &mut JsScope<'_>) {
                scope.post_task(cb(|scope, _| spin(scope)));
            }
            spin(scope);
        });
        b.run_until_idle();
        assert!(b.steps() <= 500, "guard must stop the run: {}", b.steps());
    }

    #[test]
    fn shard_clock_skew_shifts_raw_reads_but_not_scheduling() {
        use jsk_sim::fault::{ClockSkew, FaultPlan};
        let run = |cfg: BrowserConfig| {
            let mut b = Browser::new(cfg, Box::new(LegacyMediator));
            b.boot(|scope| {
                scope.set_timeout(
                    100.0,
                    cb(|scope, _| {
                        let now = scope.performance_now();
                        scope.record("now", JsValue::from(now));
                        scope.record("fired_at", JsValue::from(scope.browser_now_ms()));
                    }),
                );
            });
            b.run_until_idle();
            (
                b.record_value("now").unwrap().as_f64().unwrap(),
                b.record_value("fired_at").unwrap().as_f64().unwrap(),
            )
        };
        let plan = FaultPlan::new(0).with_clock_skew(ClockSkew {
            shard: 3,
            drift_ppm: 100_000, // +10%, comfortably above clock quantization
            step_ms: 0,
            step_at_ms: 0,
        });
        let base = BrowserConfig::new(BrowserProfile::chrome(), 9);
        let (plain_now, plain_fired) = run(base.clone());
        // Skew addressed to our shard: the legacy-displayed clock runs fast,
        // but the timer still fires at the same true instant.
        let (skewed_now, skewed_fired) = run(base.clone().with_fault(plan.clone()).with_shard(3));
        assert!(
            skewed_now > plain_now * 1.05,
            "skewed read {skewed_now} should run ~10% fast of {plain_now}"
        );
        assert!(
            (skewed_fired - plain_fired).abs() < 1e-9,
            "scheduling must not skew"
        );
        // Skew addressed to a different shard: inert.
        let (other_now, _) = run(base.with_fault(plan).with_shard(2));
        assert!((other_now - plain_now).abs() < 1e-9);
    }

    #[test]
    fn clear_timer_on_interval_stops_rearming() {
        let mut b = browser(4);
        b.boot(|scope| {
            let id = scope.set_interval(
                5.0,
                cb(|scope, _| {
                    scope.record("ticked", JsValue::from(true));
                }),
            );
            // Cleared before the first firing: never ticks.
            scope.clear_timer(id);
        });
        b.run_for(SimDuration::from_millis(100));
        assert!(b.record_value("ticked").is_none());
    }

    #[test]
    fn clear_timer_twice_is_harmless() {
        let mut b = browser(5);
        b.boot(|scope| {
            let id = scope.set_timeout(5.0, cb(|_, _| {}));
            scope.clear_timer(id);
            scope.clear_timer(id);
            scope.record("ok", JsValue::from(true));
        });
        b.run_until_idle();
        assert!(b.record_value("ok").is_some());
    }

    #[test]
    fn current_instant_tracks_in_task_cost() {
        let mut b = browser(6);
        b.boot(|scope| {
            let before = scope.browser_now_ms();
            scope.compute(SimDuration::from_millis(7));
            let after = scope.browser_now_ms();
            scope.record("delta", JsValue::from(after - before));
        });
        b.run_until_idle();
        let delta = b.record_value("delta").unwrap().as_f64().unwrap();
        assert!((delta - 7.0).abs() < 0.01, "{delta}");
    }

    #[test]
    fn anchored_interval_does_not_drift() {
        let mut b = browser(7);
        b.boot(|scope| {
            let stamps: std::rc::Rc<std::cell::RefCell<Vec<f64>>> =
                std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let s2 = stamps;
            scope.set_interval(
                10.0,
                cb(move |scope, _| {
                    s2.borrow_mut().push(scope.browser_now_ms());
                    if s2.borrow().len() == 20 {
                        let first = s2.borrow()[0];
                        let last = *s2.borrow().last().unwrap();
                        // 19 periods of 10 ms: drift must stay within the
                        // per-firing jitter bound, never accumulate.
                        scope.record("span", JsValue::from(last - first));
                    }
                }),
            );
        });
        b.run_for(SimDuration::from_millis(400));
        let span = b.record_value("span").unwrap().as_f64().unwrap();
        assert!((span - 190.0).abs() < 3.0, "anchored span {span}");
    }

    #[test]
    fn fresh_tokens_are_unique() {
        let mut b = browser(8);
        let a = b.fresh_token();
        let c = b.fresh_token();
        assert_ne!(a, c);
    }

    #[test]
    fn registered_resources_affect_load_plans() {
        let mut b = browser(9);
        b.register_resource("https://x.example/big", ResourceSpec::of_size(1 << 20));
        b.boot(|scope| {
            scope.fetch(
                "https://x.example/big",
                None,
                cb(|scope, v| {
                    let t = scope.browser_now_ms();
                    scope.record("big_done", JsValue::from(t));
                    let _ = v;
                }),
            );
            scope.fetch(
                "https://x.example/small",
                None,
                cb(|scope, v| {
                    let t = scope.browser_now_ms();
                    scope.record("small_done", JsValue::from(t));
                    let _ = v;
                }),
            );
        });
        b.run_until_idle();
        let big = b.record_value("big_done").unwrap().as_f64().unwrap();
        let small = b.record_value("small_done").unwrap().as_f64().unwrap();
        assert!(
            big > small + 300.0,
            "1 MB over ADSL ≫ default 2 KB: {big} vs {small}"
        );
    }

    #[test]
    fn sab_counter_is_continuous_in_virtual_time() {
        let mut b = browser(10);
        b.set_sab_enabled(true);
        b.boot(|scope| {
            let sab = scope.sab_create(1).expect("enabled");
            // Counters only run from real worker threads.
            let _w = scope.create_worker(
                "c.js",
                crate::task::worker_script(move |scope| {
                    scope.sab_run_counter(sab, 0, 1_000); // 1 µs per increment
                }),
            );
            scope.set_timeout(
                20.0,
                cb(move |scope, _| {
                    let c0 = scope.sab_read(sab, 0).unwrap();
                    scope.compute(SimDuration::from_millis(3));
                    let c1 = scope.sab_read(sab, 0).unwrap();
                    scope.record("delta", JsValue::from(c1 - c0));
                }),
            );
        });
        b.run_until_idle();
        let delta = b.record_value("delta").unwrap().as_f64().unwrap();
        assert!(
            (delta - 3_000.0).abs() < 200.0,
            "3 ms at 1 µs/increment: {delta}"
        );
    }
}
