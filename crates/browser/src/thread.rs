//! Per-thread state: the event loop queue and execution context.
//!
//! Each JavaScript thread (main or worker) owns a time-ordered run queue of
//! [`Task`]s, a `busy_until` watermark modelling single-threaded execution,
//! and its message handler slots. Threads never share state directly —
//! everything crosses via `postMessage`, exactly like the web.

use crate::ids::{ThreadId, WorkerId};
use crate::task::{Callback, Task};
use crate::value::JsValue;
use jsk_sim::queue::TimeQueue;
use jsk_sim::time::SimTime;

/// Whether a thread is the main thread or a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadKind {
    /// The page's main thread.
    Main,
    /// A dedicated worker thread.
    Worker {
        /// The thread that created it.
        owner: ThreadId,
        /// The user-visible `Worker` object it backs.
        worker: WorkerId,
    },
}

impl ThreadKind {
    /// Whether this is a worker thread.
    #[must_use]
    pub fn is_worker(&self) -> bool {
        matches!(self, ThreadKind::Worker { .. })
    }

    /// The backing worker id, if a worker thread.
    #[must_use]
    pub fn worker(&self) -> Option<WorkerId> {
        match self {
            ThreadKind::Worker { worker, .. } => Some(*worker),
            ThreadKind::Main => None,
        }
    }
}

/// How a thread's origin was established (CVE-2011-1190 hinges on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OriginKind {
    /// A normal same-origin context.
    Normal,
    /// A unique opaque origin (correct for sandboxed creators).
    Opaque,
    /// The parent's origin inherited by a worker created from a *sandboxed*
    /// context — the native bug.
    InheritedFromSandbox,
}

/// The state of one JavaScript thread.
pub struct ThreadState {
    /// The thread's id.
    pub id: ThreadId,
    /// Main or worker.
    pub kind: ThreadKind,
    /// Queued tasks, ordered by ready time.
    pub run_queue: TimeQueue<Task>,
    /// The instant until which the thread is executing its current task.
    pub busy_until: SimTime,
    /// Earliest already-scheduled pump, to avoid duplicate pump events.
    pub next_pump_at: Option<SimTime>,
    /// Whether the thread is alive (terminated threads drop their queue).
    pub alive: bool,
    /// Whether the thread's document/global is closing.
    pub closing: bool,
    /// The thread's `onmessage` handler.
    pub onmessage: Option<Callback>,
    /// The thread's `onerror` handler.
    pub onerror: Option<Callback>,
    /// The thread's origin.
    pub origin: String,
    /// How the origin was established.
    pub origin_kind: OriginKind,
    /// For worker threads: whether the top-level script has finished, after
    /// which buffered messages flush.
    pub ready: bool,
    /// Messages that arrived before the worker was ready.
    pub startup_buffer: Vec<JsValue>,
    /// Count of queued `Message`-source tasks originating from workers
    /// (consulted by `CloseDocument`, CVE-2013-6646).
    pub queued_worker_messages: usize,
    /// Document generation this thread currently serves (main thread only;
    /// bumped by navigation).
    pub doc_generation: u64,
}

impl ThreadState {
    /// Creates a fresh, alive thread.
    #[must_use]
    pub fn new(id: ThreadId, kind: ThreadKind, origin: String) -> ThreadState {
        let is_main = matches!(kind, ThreadKind::Main);
        ThreadState {
            id,
            kind,
            run_queue: TimeQueue::new(),
            busy_until: SimTime::ZERO,
            next_pump_at: None,
            alive: true,
            closing: false,
            onmessage: None,
            onerror: None,
            origin,
            origin_kind: OriginKind::Normal,
            // The main thread is immediately ready; workers become ready
            // after their top-level script runs.
            ready: is_main,
            startup_buffer: Vec::new(),
            queued_worker_messages: 0,
            doc_generation: 0,
        }
    }

    /// Enqueues a task to become runnable at `ready_at`.
    pub fn enqueue(&mut self, ready_at: SimTime, task: Task) {
        self.run_queue.push(ready_at, task);
    }

    /// Kills the thread: clears the queue and handlers.
    pub fn kill(&mut self) {
        self.alive = false;
        self.run_queue.clear();
        self.onmessage = None;
        self.onerror = None;
        self.startup_buffer.clear();
        self.queued_worker_messages = 0;
    }
}

impl std::fmt::Debug for ThreadState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadState")
            .field("id", &self.id)
            .field("kind", &self.kind)
            .field("alive", &self.alive)
            .field("ready", &self.ready)
            .field("queued", &self.run_queue.len())
            .field("busy_until", &self.busy_until)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{cb, TaskSource};

    #[test]
    fn main_thread_is_ready_worker_is_not() {
        let m = ThreadState::new(ThreadId::new(0), ThreadKind::Main, "https://a".into());
        assert!(m.ready);
        let w = ThreadState::new(
            ThreadId::new(1),
            ThreadKind::Worker {
                owner: ThreadId::new(0),
                worker: WorkerId::new(0),
            },
            "https://a".into(),
        );
        assert!(!w.ready);
        assert!(w.kind.is_worker());
        assert_eq!(w.kind.worker(), Some(WorkerId::new(0)));
    }

    #[test]
    fn kill_clears_state() {
        let mut t = ThreadState::new(ThreadId::new(0), ThreadKind::Main, "o".into());
        t.onmessage = Some(cb(|_, _| {}));
        t.enqueue(
            SimTime::from_millis(1),
            Task::new(cb(|_, _| {}), JsValue::Null, TaskSource::Timer),
        );
        t.queued_worker_messages = 3;
        t.kill();
        assert!(!t.alive);
        assert!(t.onmessage.is_none());
        assert!(t.run_queue.is_empty());
        assert_eq!(t.queued_worker_messages, 0);
    }

    #[test]
    fn enqueue_orders_by_ready_time() {
        let mut t = ThreadState::new(ThreadId::new(0), ThreadKind::Main, "o".into());
        t.enqueue(
            SimTime::from_millis(5),
            Task::new(cb(|_, _| {}), JsValue::from(2.0), TaskSource::Timer),
        );
        t.enqueue(
            SimTime::from_millis(1),
            Task::new(cb(|_, _| {}), JsValue::from(1.0), TaskSource::Timer),
        );
        let first = t.run_queue.pop().unwrap();
        assert_eq!(first.value.arg, JsValue::from(1.0));
    }
}
