//! `JsScope`: the web-API surface a user script executes against.
//!
//! A scope is handed to every callback while its task runs. It plays the
//! role of `window` / `self`: clocks, timers, `requestAnimationFrame`,
//! messaging, workers, `fetch`/XHR, DOM, and the measured operations the
//! paper's attacks time (SVG filters, floating-point ops, link repaint,
//! cache access). Every call accrues virtual CPU cost on the current task
//! (plus the installed defense's interposition overhead), so in-task clock
//! reads advance realistically and single-threaded execution blocks the
//! thread's event loop.

use crate::browser::{AsyncReg, Browser};
use crate::event::{AsyncKind, NetClass};
use crate::ids::{
    BufferId, NodeId, RafId, RequestId, SabId, SignalId, ThreadId, TimerId, WorkerId,
};
use crate::mediator::{ApiOutcome, ClockKind, ClockRead, InterposeClass};
use crate::task::{cb, Callback, TaskSource, WorkerScript};
use crate::trace::{AccessKind, AccessTarget, ApiCall, Fact, TerminationReason};
use crate::value::JsValue;
use crate::worker::{RequestState, WorkerState};
use jsk_sim::time::SimDuration;

/// The execution scope of the currently running task.
///
/// # Examples
///
/// ```
/// use jsk_browser::browser::{Browser, BrowserConfig};
/// use jsk_browser::mediator::LegacyMediator;
/// use jsk_browser::profile::BrowserProfile;
/// use jsk_browser::task::cb;
/// use jsk_browser::value::JsValue;
///
/// let cfg = BrowserConfig::new(BrowserProfile::chrome(), 42);
/// let mut browser = Browser::new(cfg, Box::new(LegacyMediator));
/// browser.boot(|scope| {
///     scope.set_timeout(4.0, cb(|scope, _| {
///         let t = scope.performance_now();
///         scope.record("fired_at_ms", JsValue::from(t));
///     }));
/// });
/// browser.run_until_idle();
/// assert!(browser.record_value("fired_at_ms").is_some());
/// ```
pub struct JsScope<'a> {
    pub(crate) browser: &'a mut Browser,
    thread: ThreadId,
}

impl<'a> JsScope<'a> {
    pub(crate) fn new(browser: &'a mut Browser, thread: ThreadId) -> JsScope<'a> {
        JsScope { browser, thread }
    }

    /// The thread this scope executes on.
    #[must_use]
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Whether this scope is a worker global (`self`) rather than `window`.
    #[must_use]
    pub fn in_worker(&self) -> bool {
        self.current_worker().is_some()
    }

    /// The worker this scope executes as, if any (real or polyfill).
    #[must_use]
    pub fn current_worker(&self) -> Option<WorkerId> {
        if let Some(c) = &self.browser.cur {
            if let Some(w) = c.polyfill_worker {
                return Some(w);
            }
        }
        self.browser.threads[self.thread.index() as usize]
            .kind
            .worker()
    }

    // --- cost accounting -------------------------------------------------

    fn add_cost(&mut self, d: SimDuration) {
        if let Some(c) = self.browser.cur.as_mut() {
            c.cost += d;
        }
    }

    fn interpose(&mut self, class: InterposeClass) {
        let d = self
            .browser
            .with_mediator(|m, _| m.interposition_cost(class));
        self.add_cost(d);
    }

    /// Burns `d` of virtual CPU time (a scripted computation), scaled by
    /// the defense's script-execution multiplier.
    pub fn compute(&mut self, d: SimDuration) {
        let scale = self.browser.with_mediator(|m, _| m.compute_scale());
        self.add_cost(d.mul_f64(scale));
    }

    /// Burns the cost of `n` cheap scripted operations (`i++`), jittered —
    /// the clock-edge attack's workload.
    pub fn busy_loop(&mut self, n: u64) {
        let scale = self.browser.with_mediator(|m, _| m.compute_scale());
        let base = (self.browser.cfg.profile.cpu.op_cost * n).mul_f64(scale);
        let jitter = self.browser.cfg.profile.cpu.jitter;
        let d = self.browser.rng_cpu.jitter(base, jitter);
        self.add_cost(d);
    }

    // --- clocks ------------------------------------------------------------

    fn read_clock(&mut self, kind: ClockKind) -> f64 {
        let p = self.browser.cfg.profile.clock;
        self.add_cost(p.call_cost);
        self.interpose(InterposeClass::Clock);
        // Shard-scoped clock skew applies here — the raw reading handed to
        // the mediator — so a deterministic kernel clock masks it while a
        // legacy passthrough displays it.
        let raw = self.browser.raw_instant();
        let native_precision = match kind {
            ClockKind::DateNow => p.date_precision,
            _ => p.perf_precision,
        };
        let thread = self.thread;
        let displayed = self.browser.with_mediator(|m, ctx| {
            m.read_clock(
                ctx,
                ClockRead {
                    thread,
                    kind,
                    raw,
                    native_precision,
                },
            )
        });
        displayed.as_millis_f64()
    }

    /// `performance.now()`, in milliseconds, as mediated by the installed
    /// defense.
    pub fn performance_now(&mut self) -> f64 {
        self.read_clock(ClockKind::PerformanceNow)
    }

    /// `Date.now()`-style coarse clock, in milliseconds.
    pub fn date_now(&mut self) -> f64 {
        self.read_clock(ClockKind::DateNow)
    }

    /// The raw virtual instant in milliseconds — a **harness** clock that no
    /// page script could observe (it bypasses the installed defense). Used
    /// by workload drivers to report ground-truth load times.
    #[must_use]
    pub fn browser_now_ms(&self) -> f64 {
        self.browser.current_instant().as_millis_f64()
    }

    /// Reads an instruction-level-parallelism racing counter (Hacky Racers,
    /// Xiao & Ainsworth): `chains` parallel increment chains race the
    /// surrounding work, and the returned count is how many increments
    /// retired so far. Because the "timer" is built from superscalar
    /// execution-unit contention rather than any clock API, the reading
    /// deliberately derives from the **raw** virtual instant — clock
    /// coarsening, fuzzing, and the kernel's deterministic logical clock
    /// never touch it. The only defense seam is the interposition itself:
    /// a policy that denies [`ApiCall::IlpCounterRead`] makes the read
    /// return 0.
    pub fn ilp_counter_read(&mut self, chains: u32) -> f64 {
        self.interpose(InterposeClass::Sab);
        // Keeping the racing chains warm costs real work per read.
        let op = self.browser.cfg.profile.cpu.op_cost;
        self.add_cost(op * u64::from(chains.max(1)));
        let thread = self.thread;
        let outcome = self
            .browser
            .intercept(&ApiCall::IlpCounterRead { thread, chains });
        if matches!(outcome, ApiOutcome::Deny { .. }) {
            return 0.0;
        }
        // One increment retires per chain per ~100 ns of raw execution.
        let nanos = self.browser.current_instant().as_nanos() as f64;
        (nanos * f64::from(chains.max(1)) / 100.0).floor()
    }

    // --- timers -------------------------------------------------------------

    /// `setTimeout(callback, delay_ms)`.
    pub fn set_timeout(&mut self, delay_ms: f64, callback: Callback) -> TimerId {
        self.interpose(InterposeClass::Timer);
        self.browser
            .set_timer(self.thread, delay_ms, callback, false, false, false)
    }

    /// `setInterval(callback, delay_ms)`.
    pub fn set_interval(&mut self, delay_ms: f64, callback: Callback) -> TimerId {
        self.interpose(InterposeClass::Timer);
        self.browser
            .set_timer(self.thread, delay_ms, callback, true, false, false)
    }

    /// `clearTimeout` / `clearInterval`.
    pub fn clear_timer(&mut self, id: TimerId) {
        self.interpose(InterposeClass::Timer);
        self.browser.clear_timer(id);
    }

    /// Starts a media ticker (video frame / WebVTT cue callbacks at the
    /// given period) — the Video/WebVTT implicit clock.
    pub fn start_media_ticker(&mut self, period_ms: f64, callback: Callback) -> TimerId {
        self.interpose(InterposeClass::Timer);
        self.browser
            .set_timer(self.thread, period_ms, callback, true, true, false)
    }

    /// Starts a CSS animation tick stream (one callback per animation frame
    /// interval) — the CSS-animation implicit clock.
    pub fn start_css_animation(&mut self, callback: Callback) -> TimerId {
        self.interpose(InterposeClass::Timer);
        let vsync_ms = self.browser.cfg.profile.sched.vsync.as_millis_f64();
        self.browser
            .set_timer(self.thread, vsync_ms, callback, true, false, true)
    }

    /// Enqueues a task on this thread's own event loop with minimal delay
    /// (a self-`postMessage`) — the Loopscan monitoring primitive.
    ///
    /// Interposed as a [`ApiCall::PostMessage`] whose sender and receiver
    /// are the same thread, so a policy can recognize (and deny) the
    /// self-post flood the event-loop monitors are built from.
    pub fn post_task(&mut self, callback: Callback) {
        self.interpose(InterposeClass::Message);
        let thread = self.thread;
        let outcome = self.browser.intercept(&ApiCall::PostMessage {
            from: thread,
            to: thread,
            transfer_count: 0,
            to_doc_freed: false,
        });
        if matches!(outcome, ApiOutcome::Deny { .. }) {
            return;
        }
        let proposed = self.browser.current_instant() + SimDuration::from_micros(30);
        let at = self.browser.channel_arrival(thread, thread, proposed);
        let poly = self.browser.cur.as_ref().and_then(|c| c.polyfill_worker);
        self.browser.register_async(
            AsyncReg::new(
                thread,
                AsyncKind::Message { from: thread },
                TaskSource::Message,
                callback,
                JsValue::Undefined,
                at,
            )
            .in_polyfill(poly),
        );
    }

    // --- requestAnimationFrame ------------------------------------------------

    /// `requestAnimationFrame(callback)`; the callback receives the frame
    /// timestamp (ms) as its argument.
    pub fn request_animation_frame(&mut self, callback: Callback) -> RafId {
        self.interpose(InterposeClass::Timer);
        let user = callback;
        let wrapped = cb(move |scope: &mut JsScope<'_>, _| {
            let ts = scope.read_clock(ClockKind::RafTimestamp);
            user(scope, JsValue::from(ts));
        });
        self.browser.request_raf(self.thread, wrapped)
    }

    /// `cancelAnimationFrame(id)`.
    pub fn cancel_animation_frame(&mut self, id: RafId) {
        self.interpose(InterposeClass::Timer);
        self.browser.cancel_raf(id);
    }

    // --- messaging ---------------------------------------------------------------

    /// Sets this global's `onmessage` handler (`self.onmessage` in a
    /// worker, `window.onmessage` on main).
    pub fn set_onmessage(&mut self, callback: Callback) {
        self.interpose(InterposeClass::Message);
        let thread = self.thread;
        let _ = self.browser.intercept(&ApiCall::SetOnMessage {
            thread,
            worker: None,
            worker_closing: false,
        });
        if let Some(c) = &self.browser.cur {
            if let Some(w) = c.polyfill_worker {
                self.browser.workers[w.index() as usize].poly_onmessage = Some(callback);
                return;
            }
        }
        self.browser.threads[thread.index() as usize].onmessage = Some(callback);
    }

    /// Sets this global's `onerror` handler.
    pub fn set_onerror(&mut self, callback: Callback) {
        self.browser.threads[self.thread.index() as usize].onerror = Some(callback);
    }

    /// Sets `worker.onmessage` on a worker object owned by this thread.
    ///
    /// On a *closing* worker the native setter dereferences null
    /// (CVE-2013-5602); a defense may trap the setter and drop the
    /// assignment.
    pub fn set_worker_onmessage(&mut self, worker: WorkerId, callback: Callback) {
        self.interpose(InterposeClass::Message);
        let wi = worker.index() as usize;
        let closing = matches!(self.browser.workers[wi].state, WorkerState::Closing);
        let outcome = self.browser.intercept(&ApiCall::SetOnMessage {
            thread: self.thread,
            worker: Some(worker),
            worker_closing: closing,
        });
        match outcome {
            ApiOutcome::DropQuietly | ApiOutcome::Deny { .. } => {}
            _ => {
                if closing {
                    self.browser.fact(Fact::NullDerefOnAssign { worker });
                } else {
                    self.browser.workers[wi].owner_onmessage = Some(callback);
                }
            }
        }
    }

    /// Sets `worker.onerror` on a worker object owned by this thread.
    pub fn set_worker_onerror(&mut self, worker: WorkerId, callback: Callback) {
        self.interpose(InterposeClass::Message);
        let wi = worker.index() as usize;
        self.browser.workers[wi].owner_onerror = Some(callback);
        self.browser.workers[wi].onerror_set = true;
    }

    /// `worker.postMessage(value)` — owner to worker.
    pub fn post_message_to_worker(&mut self, worker: WorkerId, value: JsValue) {
        self.post_message_to_worker_transfer(worker, value, Vec::new());
    }

    /// `worker.postMessage(value, [transfer])` — owner to worker with
    /// transferred buffers.
    //
    // Takes `value`/`transfer` by value to mirror the Web API's hand-off
    // semantics; fault-injected duplicate deliveries force the internal
    // clones.
    #[allow(clippy::needless_pass_by_value)]
    pub fn post_message_to_worker_transfer(
        &mut self,
        worker: WorkerId,
        value: JsValue,
        transfer: Vec<BufferId>,
    ) {
        self.interpose(InterposeClass::Message);
        let wi = worker.index() as usize;
        if !self.browser.workers[wi].user_alive() {
            return;
        }
        let to = self.browser.workers[wi].thread;
        let from = self.thread;
        let outcome = self.browser.intercept(&ApiCall::PostMessage {
            from,
            to,
            transfer_count: transfer.len(),
            to_doc_freed: false,
        });
        if matches!(outcome, ApiOutcome::Deny { .. }) {
            return;
        }
        self.transfer_buffers(&transfer, to);
        let latency = self.message_latency();
        let proposed = self.browser.current_instant() + latency;
        // Fault injection decides delivery instants: none (lost), one
        // (normal/reordered), or two (duplicated).
        for at in self.browser.message_arrivals(from, to, proposed) {
            if self.browser.workers[wi].polyfill {
                let target = worker;
                self.browser.register_async(
                    AsyncReg::new(
                        to,
                        AsyncKind::Message { from },
                        TaskSource::Message,
                        cb(move |scope: &mut JsScope<'_>, v| {
                            scope.dispatch_polyfill_message(target, v);
                        }),
                        value.clone(),
                        at,
                    )
                    .in_polyfill(Some(worker)),
                );
            } else {
                self.browser.register_async(AsyncReg::new(
                    to,
                    AsyncKind::Message { from },
                    TaskSource::Message,
                    cb(move |scope: &mut JsScope<'_>, v| scope.dispatch_incoming_message(v)),
                    value.clone(),
                    at,
                ));
            }
        }
    }

    /// `postMessage(value)` from a worker back to its owner.
    pub fn post_message(&mut self, value: JsValue) {
        self.post_message_transfer(value, Vec::new());
    }

    /// `postMessage(value, [transfer])` from a worker back to its owner.
    //
    // By value for the same Web-API hand-off reason as
    // [`post_message_to_worker_transfer`](JsScope::post_message_to_worker_transfer).
    #[allow(clippy::needless_pass_by_value)]
    pub fn post_message_transfer(&mut self, value: JsValue, transfer: Vec<BufferId>) {
        self.interpose(InterposeClass::Message);
        let Some(worker) = self.current_worker() else {
            return;
        };
        let wi = worker.index() as usize;
        if self.browser.workers[wi].user_terminated {
            return;
        }
        let owner = self.browser.workers[wi].owner;
        let from = self.thread;
        let to_doc_freed = self.browser.workers[wi].created_gen
            < self.browser.threads[owner.index() as usize].doc_generation;
        let outcome = self.browser.intercept(&ApiCall::PostMessage {
            from,
            to: owner,
            transfer_count: transfer.len(),
            to_doc_freed,
        });
        if matches!(outcome, ApiOutcome::Deny { .. }) {
            return;
        }
        // Buffers transferred out of a worker remain backed by the worker's
        // allocator (the CVE-2014-1488 tie).
        self.transfer_buffers(&transfer, owner);
        if !self.browser.workers[wi].polyfill {
            for b in &transfer {
                self.browser.buffers[b.index() as usize].backed_by_worker = Some(worker);
                self.browser.workers[wi].transferred_out.push(*b);
            }
        }
        let latency = self.message_latency();
        let proposed = self.browser.current_instant() + latency;
        let src = worker;
        for at in self.browser.message_arrivals(from, owner, proposed) {
            self.browser.register_async(
                AsyncReg::new(
                    owner,
                    AsyncKind::Message { from },
                    TaskSource::Message,
                    cb(move |scope: &mut JsScope<'_>, v| {
                        scope.dispatch_worker_message_to_owner(src, v);
                    }),
                    value.clone(),
                    at,
                )
                .via_worker(worker),
            );
        }
    }

    fn message_latency(&mut self) -> SimDuration {
        let base = self.browser.cfg.profile.sched.message_latency;
        let jitter = self.browser.cfg.profile.sched.message_jitter;
        self.browser.rng_sched.jitter(base, jitter)
    }

    fn transfer_buffers(&mut self, transfer: &[BufferId], to: ThreadId) {
        for b in transfer {
            let bi = b.index() as usize;
            if bi < self.browser.buffers.len() {
                self.browser.buffers[bi].owner = to;
            }
        }
    }

    // --- message dispatch plumbing (wrapper callbacks land here) ----------------

    /// Dispatches a message delivered to this global (`self.onmessage`).
    pub(crate) fn dispatch_incoming_message(&mut self, value: JsValue) {
        let ti = self.thread.index() as usize;
        if !self.browser.threads[ti].ready {
            self.browser.threads[ti].startup_buffer.push(value);
            return;
        }
        let handler = self.browser.threads[ti].onmessage.clone();
        if let Some(h) = handler {
            h(self, value);
        }
    }

    /// Dispatches a polyfill worker's incoming message.
    pub(crate) fn dispatch_polyfill_message(&mut self, worker: WorkerId, value: JsValue) {
        let wi = worker.index() as usize;
        if !self.browser.workers[wi].user_alive() {
            return;
        }
        let handler = self.browser.workers[wi].poly_onmessage.clone();
        if let Some(h) = handler {
            h(self, value);
        }
    }

    /// Dispatches a worker's message on the owner thread (`worker.onmessage`).
    pub(crate) fn dispatch_worker_message_to_owner(&mut self, worker: WorkerId, value: JsValue) {
        let ti = self.thread.index() as usize;
        let wi = worker.index() as usize;
        let stale = self.browser.workers[wi].created_gen < self.browser.threads[ti].doc_generation;
        if stale {
            self.browser.fact(Fact::MessageToFreedDoc {
                from: self.browser.workers[wi].thread,
                to: self.thread,
            });
        }
        if self.browser.threads[ti].closing {
            self.browser.fact(Fact::CallbackAfterClose {
                thread: self.thread,
            });
        }
        let handler = self.browser.workers[wi].owner_onmessage.clone();
        if let Some(h) = handler {
            h(self, value);
        }
    }

    /// Dispatches an error event (worker-object `onerror` when `via_worker`
    /// is set, else this global's `onerror`).
    pub(crate) fn dispatch_error_for(&mut self, via_worker: Option<WorkerId>, value: JsValue) {
        let handler = match via_worker {
            Some(w) => self.browser.workers[w.index() as usize]
                .owner_onerror
                .clone(),
            None => self.browser.threads[self.thread.index() as usize]
                .onerror
                .clone(),
        };
        if let Some(h) = handler {
            h(self, value);
        }
    }

    /// Completes worker startup (runs after the top-level worker script).
    pub(crate) fn finish_worker_start(&mut self) {
        if let Some(w) = self.current_worker() {
            self.browser.worker_became_ready(w);
        }
    }

    // --- workers --------------------------------------------------------------------

    /// `new Worker(src)` — `script` is the worker's top-level code.
    pub fn create_worker(&mut self, src: impl Into<String>, script: WorkerScript) -> WorkerId {
        self.interpose(InterposeClass::Worker);
        self.browser.create_worker_impl(src.into(), script)
    }

    /// `worker.terminate()`.
    pub fn terminate_worker(&mut self, worker: WorkerId) {
        self.interpose(InterposeClass::Worker);
        self.browser
            .terminate_worker_impl(worker, TerminationReason::Explicit);
    }

    /// `self.close()` in a worker; `window.close()` on the main thread.
    pub fn close(&mut self) {
        self.interpose(InterposeClass::Worker);
        if let Some(w) = self.current_worker() {
            self.browser
                .terminate_worker_impl(w, TerminationReason::SelfClose);
        } else {
            self.browser.close_document_impl(self.thread);
        }
    }

    /// Navigates the main document (`location = …`).
    pub fn navigate(&mut self) {
        self.interpose(InterposeClass::Worker);
        self.browser.navigate_impl(self.thread);
    }

    /// Runs `f` in a sandboxed frame context (worker creations inside
    /// inherit the sandbox flag — the CVE-2011-1190 setup).
    pub fn run_sandboxed(&mut self, f: impl FnOnce(&mut JsScope<'_>)) {
        let prev = self.browser.cur.as_ref().map(|c| c.sandboxed);
        if let Some(c) = self.browser.cur.as_mut() {
            c.sandboxed = true;
        }
        f(self);
        if let (Some(c), Some(p)) = (self.browser.cur.as_mut(), prev) {
            c.sandboxed = p;
        }
    }

    /// Whether the user-visible worker object is alive.
    #[must_use]
    pub fn worker_alive(&self, worker: WorkerId) -> bool {
        self.browser
            .workers
            .get(worker.index() as usize)
            .is_some_and(crate::worker::WorkerRecord::user_alive)
    }

    // --- abort controllers / fetch ------------------------------------------------

    /// `new AbortController()`; returns its signal.
    pub fn new_abort_controller(&mut self) -> SignalId {
        self.interpose(InterposeClass::Net);
        self.browser.create_signal()
    }

    /// `controller.abort()`.
    pub fn abort(&mut self, signal: SignalId) {
        self.interpose(InterposeClass::Net);
        let si = signal.index() as usize;
        if si >= self.browser.signals.len() || self.browser.signals[si].aborted {
            return;
        }
        self.browser.signals[si].aborted = true;
        let reqs: Vec<RequestId> = self.browser.signals[si].requests.clone();
        for r in reqs {
            self.browser.deliver_abort(r);
        }
    }

    /// `fetch(url, {signal})`; `callback` receives `{ok, error?, url}`.
    pub fn fetch(
        &mut self,
        url: impl Into<String>,
        signal: Option<SignalId>,
        callback: Callback,
    ) -> RequestId {
        self.interpose(InterposeClass::Net);
        let url = url.into();
        let req = RequestId::new(self.browser.requests.len() as u64);
        let thread = self.thread;
        let gen = self.browser.threads[thread.index() as usize].doc_generation;
        self.browser.requests.push(crate::worker::RequestRecord {
            id: req,
            thread,
            url: url.clone(),
            state: RequestState::Pending,
            signal,
            doc_generation: gen,
            owner_alive: true,
        });
        if let Some(w) = self.current_worker() {
            if !self.browser.workers[w.index() as usize].polyfill {
                self.browser.workers[w.index() as usize]
                    .pending_fetches
                    .insert(req);
            }
        }
        if let Some(s) = signal {
            let si = s.index() as usize;
            self.browser.signals[si].requests.push(req);
            if self.browser.signals[si].aborted {
                self.browser.requests[req.index() as usize].state = RequestState::Aborted;
                self.schedule_immediate_error(callback, "AbortError");
                return req;
            }
        }
        let url_sym = self.browser.trace.intern(&url);
        let outcome = self.browser.intercept(&ApiCall::Fetch {
            thread,
            req,
            url: url_sym,
            has_signal: signal.is_some(),
        });
        if matches!(outcome, ApiOutcome::Deny { .. }) {
            self.browser.requests[req.index() as usize].state = RequestState::Aborted;
            self.schedule_immediate_error(callback, "SecurityError");
            return req;
        }
        let scale = self.browser.cfg.net_latency_scale;
        let plan = {
            let profile = self.browser.cfg.profile;
            self.browser
                .net
                .plan_load(&url, &profile, &mut self.browser.rng_cpu, scale)
        };
        self.browser.fact(Fact::FetchStarted {
            req,
            thread,
            has_signal: signal.is_some(),
        });
        self.browser.hb_access(
            thread,
            AccessTarget::Request { req },
            AccessKind::Write,
            "fetch-start",
        );
        // Network fault injection with retry-with-backoff: each faulted
        // attempt costs its failure time (a round trip for an error, the
        // timeout for a timeout) plus the plan's backoff before the next
        // attempt. The whole chain is resolved now — virtual time makes the
        // schedule exact — and a single completion is registered at the end.
        let mut fault_extra = SimDuration::ZERO;
        let mut fault_error: Option<&'static str> = None;
        if let Some(inj) = self.browser.fault.as_mut() {
            let mut attempt = 0u32;
            loop {
                match inj.net_fate() {
                    jsk_sim::fault::NetFate::Ok => {
                        fault_error = None;
                        break;
                    }
                    jsk_sim::fault::NetFate::Error => {
                        fault_extra += plan.net_time;
                        fault_error = Some("NetworkError");
                    }
                    jsk_sim::fault::NetFate::Timeout(d) => {
                        fault_extra += d;
                        fault_error = Some("TimeoutError");
                    }
                }
                match inj.retry_after(attempt) {
                    Some(backoff) => {
                        fault_extra += backoff;
                        attempt += 1;
                    }
                    None => break,
                }
            }
        }
        let (arg, at) = match fault_error {
            Some(err) => (
                JsValue::object([
                    ("ok", JsValue::Bool(false)),
                    ("error", JsValue::from(err)),
                    ("url", JsValue::from(url)),
                ]),
                // fault_extra already includes the final failing attempt.
                self.browser.current_instant() + fault_extra,
            ),
            None => (
                JsValue::object([("ok", JsValue::Bool(plan.ok)), ("url", JsValue::from(url))]),
                self.browser.current_instant() + fault_extra + plan.net_time,
            ),
        };
        let user = callback;
        let token = self.browser.register_async(AsyncReg::new(
            thread,
            AsyncKind::Net {
                req,
                class: NetClass::Fetch,
                cached: plan.cached,
            },
            TaskSource::Net,
            cb(move |scope: &mut JsScope<'_>, v| {
                scope.finish_fetch(req);
                user(scope, v);
            }),
            arg,
            at,
        ));
        self.browser.request_token(req, token);
        req
    }

    fn schedule_immediate_error(&mut self, callback: Callback, error: &str) {
        let arg = JsValue::object([
            ("ok", JsValue::Bool(false)),
            ("error", JsValue::from(error)),
        ]);
        let thread = self.thread;
        let at = self.browser.current_instant() + SimDuration::from_micros(50);
        self.browser.register_async(AsyncReg::new(
            thread,
            AsyncKind::Net {
                req: RequestId::new(u64::MAX),
                class: NetClass::Fetch,
                cached: false,
            },
            TaskSource::Net,
            callback,
            arg,
            at,
        ));
    }

    fn finish_fetch(&mut self, req: RequestId) {
        let ri = req.index() as usize;
        let stale = {
            let r = &self.browser.requests[ri];
            r.doc_generation < self.browser.threads[r.thread.index() as usize].doc_generation
        };
        if stale {
            self.browser.fact(Fact::StaleDocCallback {
                thread: self.thread,
            });
        }
        if self.browser.requests[ri].state == RequestState::Pending {
            self.browser.requests[ri].state = RequestState::Settled;
            let thread = self.thread;
            self.browser.hb_access(
                thread,
                AccessTarget::Request { req },
                AccessKind::Write,
                "fetch-settle",
            );
            self.browser.fact(Fact::FetchSettled { req, ok: true });
        }
        if let Some(w) = self.current_worker() {
            self.browser.workers[w.index() as usize]
                .pending_fetches
                .remove(&req);
        }
    }

    /// `XMLHttpRequest` send; `callback` receives `{ok, error?}`.
    ///
    /// The native same-origin policy blocks cross-origin XHR from the main
    /// thread — but not from workers (the CVE-2013-1714 bug).
    pub fn xhr_send(&mut self, url: impl Into<String>, callback: Callback) {
        self.interpose(InterposeClass::Net);
        let url = url.into();
        let thread = self.thread;
        let ti = thread.index() as usize;
        // The SOP bypass lives in the *worker-thread* XHR path; a polyfill
        // worker issues main-thread XHR, where the check is intact.
        let from_worker = self.browser.threads[ti].kind.is_worker();
        let origin = self.browser.threads[ti].origin.clone();
        let cross = crate::net::is_cross_origin(&origin, &url);
        let url_sym = self.browser.trace.intern(&url);
        let outcome = self.browser.intercept(&ApiCall::XhrSend {
            thread,
            from_worker,
            url: url_sym,
            cross_origin: cross,
        });
        if matches!(outcome, ApiOutcome::Deny { .. }) {
            self.schedule_immediate_error(callback, "SecurityError");
            return;
        }
        if !from_worker && cross {
            // The main-thread path enforces the same-origin policy.
            self.schedule_immediate_error(callback, "SecurityError");
            return;
        }
        if from_worker && cross {
            self.browser.fact(Fact::CrossOriginWorkerRequest {
                thread,
                url: url_sym,
            });
        }
        if self.browser.threads[ti].origin_kind == crate::thread::OriginKind::InheritedFromSandbox
            && !cross
        {
            self.browser.fact(Fact::InheritedOriginRequest { thread });
        }
        let scale = self.browser.cfg.net_latency_scale;
        let plan = {
            let profile = self.browser.cfg.profile;
            self.browser
                .net
                .plan_load(&url, &profile, &mut self.browser.rng_cpu, scale)
        };
        let arg = JsValue::object([("ok", JsValue::Bool(plan.ok))]);
        let at = self.browser.current_instant() + plan.net_time;
        self.browser.register_async(AsyncReg::new(
            thread,
            AsyncKind::Net {
                req: RequestId::new(u64::MAX),
                class: NetClass::Xhr,
                cached: plan.cached,
            },
            TaskSource::Net,
            callback,
            arg,
            at,
        ));
    }

    /// `importScripts(url)` in a worker. Returns `false` when the load
    /// failed (an error event with the — possibly sanitized — message is
    /// delivered to this worker's `onerror`).
    pub fn import_scripts(&mut self, url: impl Into<String>) -> bool {
        self.interpose(InterposeClass::Net);
        let url = url.into();
        let thread = self.thread;
        let origin = self.browser.threads[thread.index() as usize].origin.clone();
        let cross = crate::net::is_cross_origin(&origin, &url);
        let url_sym = self.browser.trace.intern(&url);
        let outcome = self.browser.intercept(&ApiCall::ImportScripts {
            thread,
            url: url_sym,
            cross_origin: cross,
        });
        if matches!(outcome, ApiOutcome::Deny { .. }) {
            return false;
        }
        let spec = self.browser.net.lookup(&url);
        if spec.exists {
            let parse = self.browser.cfg.profile.parse_cost(spec.size_bytes);
            let jitter = self.browser.cfg.profile.cpu.jitter;
            let d = self.browser.rng_cpu.jitter(parse, jitter);
            self.add_cost(d);
            true
        } else {
            // The native error message leaks the URL and first bytes of the
            // (cross-origin) response — CVE-2015-7215.
            let message = format!(
                "SyntaxError: importScripts failed for {url}: unexpected token in <secret-content>"
            );
            self.browser.deliver_error_event(
                thread,
                None,
                crate::trace::ErrorSource::ImportScripts,
                message,
                cross,
            );
            false
        }
    }

    // --- resource loading (DOM side) -----------------------------------------------

    /// Loads `url` as a `<script>` element; `callback` receives `{ok}` after
    /// network + parse.
    pub fn load_script(&mut self, url: impl Into<String>, callback: Callback) {
        self.load_resource(url.into(), "script", NetClass::ScriptLoad, callback);
    }

    /// Loads `url` as an `<img>` element; `callback` receives `{ok}` after
    /// network + decode.
    pub fn load_image(&mut self, url: impl Into<String>, callback: Callback) {
        self.load_resource(url.into(), "img", NetClass::ImageLoad, callback);
    }

    fn load_resource(&mut self, url: String, tag: &str, class: NetClass, callback: Callback) {
        self.interpose(InterposeClass::Net);
        self.interpose(InterposeClass::Dom);
        let node = self.browser.dom.create_element(tag);
        self.browser.dom.set_attribute(node, "src", url.clone());
        let root = self.browser.dom.root();
        self.browser.dom.append_child(root, node);
        self.add_cost(self.browser.cfg.profile.cpu.dom_append);

        let thread = self.thread;
        let scale = self.browser.cfg.net_latency_scale;
        let plan = {
            let profile = self.browser.cfg.profile;
            self.browser
                .net
                .plan_load(&url, &profile, &mut self.browser.rng_net, scale)
        };
        let decode = match class {
            NetClass::ImageLoad => self.browser.cfg.profile.decode_cost(plan.size_bytes),
            _ => self.browser.cfg.profile.parse_cost(plan.size_bytes),
        };
        let ok = plan.ok;
        let arg = JsValue::object([("ok", JsValue::Bool(ok)), ("url", JsValue::from(url))]);
        let at = self.browser.current_instant() + plan.net_time;
        let user = callback;
        let req = RequestId::new(u64::MAX);
        self.browser.register_async(AsyncReg::new(
            thread,
            AsyncKind::Net {
                req,
                class,
                cached: plan.cached,
            },
            TaskSource::Net,
            cb(move |scope: &mut JsScope<'_>, v| {
                if ok {
                    // Parsing/decoding blocks the main thread inside the
                    // completion task — the van Goethem measurement target.
                    let jitter = scope.browser.cfg.profile.cpu.jitter;
                    let d = scope.browser.rng_cpu.jitter(decode, jitter);
                    scope.add_cost(d);
                }
                let ti = scope.thread.index() as usize;
                let stale_now = scope.browser.threads[ti].doc_generation;
                let _ = stale_now;
                user(scope, v);
            }),
            arg,
            at,
        ));
    }

    // --- measured operations (attack targets) -----------------------------------------

    /// Applies an SVG filter over `px` pixels (blocks this thread for the
    /// profile's jittered cost) — the SVG-filtering attack target.
    pub fn apply_svg_filter(&mut self, px: u64) {
        self.interpose(InterposeClass::Dom);
        let base = self.browser.cfg.profile.svg_filter_cost(px);
        let jitter = self.browser.cfg.profile.cpu.jitter;
        let d = self.browser.rng_cpu.jitter(base, jitter);
        self.add_cost(d);
    }

    /// Runs `n` floating-point operations on normal or subnormal operands —
    /// the floating-point timing channel.
    pub fn float_ops(&mut self, n: u64, subnormal: bool) {
        let per = if subnormal {
            self.browser.cfg.profile.cpu.float_subnormal
        } else {
            self.browser.cfg.profile.cpu.float_normal
        };
        let jitter = self.browser.cfg.profile.cpu.jitter;
        let d = self.browser.rng_cpu.jitter(per * n, jitter);
        self.add_cost(d);
    }

    /// Styles a link to `url` and pays the visited/unvisited repaint cost —
    /// the history-sniffing channel.
    pub fn style_link(&mut self, url: impl Into<String>) {
        self.interpose(InterposeClass::Dom);
        let url = url.into();
        let node = self.browser.dom.create_element("a");
        self.browser.dom.set_attribute(node, "href", url.clone());
        let root = self.browser.dom.root();
        self.browser.dom.append_child(root, node);
        let visited = self.browser.dom.is_visited(&url);
        let base = if visited {
            self.browser.cfg.profile.cpu.visited_paint
        } else {
            self.browser.cfg.profile.cpu.unvisited_paint
        };
        let jitter = self.browser.cfg.profile.cpu.jitter;
        let d = self.browser.rng_cpu.jitter(base, jitter);
        self.add_cost(d);
    }

    /// Accesses shared-cache content (hit vs. miss cost) — the cache-attack
    /// channel. The access caches the key as a side effect.
    pub fn access_cached(&mut self, key: impl AsRef<str>) {
        let profile = self.browser.cfg.profile;
        let d =
            self.browser
                .content_cache
                .access(key.as_ref(), &profile, &mut self.browser.rng_cpu);
        self.add_cost(d);
    }

    // --- DOM -------------------------------------------------------------------------------

    /// `document.createElement(tag)`.
    pub fn create_element(&mut self, tag: impl Into<String>) -> NodeId {
        self.interpose(InterposeClass::Dom);
        self.add_cost(self.browser.cfg.profile.cpu.dom_append / 4);
        self.browser.dom.create_element(tag)
    }

    /// `parent.appendChild(child)`.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> bool {
        self.interpose(InterposeClass::Dom);
        self.add_cost(self.browser.cfg.profile.cpu.dom_append);
        let thread = self.thread;
        self.browser.hb_access(
            thread,
            AccessTarget::Dom { node: parent },
            AccessKind::Write,
            "append-child",
        );
        self.browser.dom.append_child(parent, child)
    }

    /// `element.setAttribute(key, value)`.
    pub fn set_attribute(
        &mut self,
        node: NodeId,
        key: impl Into<String>,
        value: impl Into<String>,
    ) {
        self.interpose(InterposeClass::Dom);
        self.add_cost(self.browser.cfg.profile.cpu.dom_attr);
        let thread = self.thread;
        self.browser.hb_access(
            thread,
            AccessTarget::Dom { node },
            AccessKind::Write,
            "set-attribute",
        );
        self.browser.dom.set_attribute(node, key, value);
    }

    /// `element.getAttribute(key)`.
    pub fn get_attribute(&mut self, node: NodeId, key: &str) -> Option<String> {
        self.interpose(InterposeClass::Dom);
        self.add_cost(self.browser.cfg.profile.cpu.dom_attr);
        let thread = self.thread;
        self.browser.hb_access(
            thread,
            AccessTarget::Dom { node },
            AccessKind::Read,
            "get-attribute",
        );
        self.browser.dom.attribute(node, key).map(str::to_owned)
    }

    /// Sets an element's text content.
    pub fn set_text(&mut self, node: NodeId, text: impl Into<String>) {
        self.interpose(InterposeClass::Dom);
        self.add_cost(self.browser.cfg.profile.cpu.dom_attr);
        let thread = self.thread;
        self.browser.hb_access(
            thread,
            AccessTarget::Dom { node },
            AccessKind::Write,
            "set-text",
        );
        self.browser.dom.set_text(node, text);
    }

    /// The document root.
    #[must_use]
    pub fn document_root(&self) -> NodeId {
        self.browser.dom.root()
    }

    // --- IndexedDB -----------------------------------------------------------------------------

    /// `indexedDB.open(name)` with optional durable persistence; returns
    /// whether the open succeeded.
    pub fn idb_open(&mut self, name: impl Into<String>, persist: bool) -> bool {
        self.interpose(InterposeClass::Net);
        self.add_cost(self.browser.cfg.profile.cpu.idb_open);
        let thread = self.thread;
        self.browser.idb_open_impl(thread, name.into(), persist)
    }

    // --- buffers / SharedArrayBuffer -----------------------------------------------------------

    /// Allocates a transferable `ArrayBuffer` owned by this thread.
    pub fn create_buffer(&mut self, len: usize) -> BufferId {
        let thread = self.thread;
        self.browser.create_buffer(thread, len)
    }

    /// Reads a buffer; touching a freed backing store is recorded as a
    /// use-after-free fact (CVE-2014-1488).
    pub fn read_buffer(&mut self, buffer: BufferId) -> bool {
        let bi = buffer.index() as usize;
        if bi >= self.browser.buffers.len() {
            return false;
        }
        let freed = self.browser.buffers[bi].freed;
        let thread = self.thread;
        let _ = self.browser.intercept(&ApiCall::BufferAccess {
            thread,
            buffer,
            freed,
        });
        self.browser.hb_access(
            thread,
            AccessTarget::Buffer { buffer },
            AccessKind::Read,
            "read-buffer",
        );
        if freed {
            self.browser
                .fact(Fact::FreedBufferAccess { buffer, thread });
        }
        self.add_cost(SimDuration::from_nanos(200));
        !freed
    }

    /// Allocates a `SharedArrayBuffer`, if the engine enables them.
    pub fn sab_create(&mut self, len: usize) -> Option<SabId> {
        self.interpose(InterposeClass::Sab);
        self.browser.create_sab(len)
    }

    /// Starts incrementing a SAB cell in a tight loop at one increment per
    /// `period_ns` (the "Fantastic Timers" counting-worker pattern). The
    /// loop is continuous, so it only makes sense from a real worker
    /// thread; on the main thread (including polyfill workers) the loop
    /// would starve the very tasks trying to read it, so this is a no-op
    /// there.
    pub fn sab_run_counter(&mut self, sab: SabId, idx: usize, period_ns: u64) {
        self.interpose(InterposeClass::Sab);
        let ti = self.thread.index() as usize;
        if !self.browser.threads[ti].kind.is_worker() {
            return;
        }
        self.browser
            .sab_start_counter(sab, idx, SimDuration::from_nanos(period_ns));
    }

    /// Writes a SAB cell.
    pub fn sab_write(&mut self, sab: SabId, idx: usize, value: f64) {
        self.interpose(InterposeClass::Sab);
        self.add_cost(SimDuration::from_nanos(40));
        let thread = self.thread;
        self.browser.hb_access(
            thread,
            AccessTarget::Sab {
                sab,
                idx: idx as u64,
            },
            AccessKind::Write,
            "sab-write",
        );
        if let Some(cell) = self.browser.sab_cell(sab, idx) {
            *cell = value;
        }
    }

    /// Reads a SAB cell.
    ///
    /// Under a defense that freezes SAB reads (the JSKernel), all reads of
    /// a cell within one task return the snapshot taken by the first — the
    /// access is "redirected to the kernel and put into the event queue",
    /// so intra-task progress of a cross-thread counter is unobservable.
    pub fn sab_read(&mut self, sab: SabId, idx: usize) -> Option<f64> {
        self.interpose(InterposeClass::Sab);
        self.add_cost(SimDuration::from_nanos(40));
        let thread = self.thread;
        self.browser.hb_access(
            thread,
            AccessTarget::Sab {
                sab,
                idx: idx as u64,
            },
            AccessKind::Read,
            "sab-read",
        );
        let frozen = self.browser.with_mediator(|m, _| m.freeze_sab_reads());
        let raw = self.browser.sab_value_now(sab, idx)?;
        if !frozen {
            return Some(raw);
        }
        let key = (sab.index(), idx);
        if let Some(c) = self.browser.cur.as_mut() {
            return Some(*c.sab_seen.entry(key).or_insert(raw));
        }
        Some(raw)
    }

    // --- output ----------------------------------------------------------------------------------

    /// `console.log(value)`.
    pub fn console_log(&mut self, value: JsValue) {
        self.browser.push_console(value);
    }

    /// Records a named result for the harness to read after the run.
    pub fn record(&mut self, key: impl Into<String>, value: JsValue) {
        self.browser.push_record(key.into(), value);
    }
}
