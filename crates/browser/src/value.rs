//! A dynamically-typed value, standing in for JavaScript values.
//!
//! User scripts in this reproduction are Rust closures, but the data they
//! exchange — `postMessage` payloads, event arguments, console output —
//! flows through [`JsValue`], which mirrors the JSON-ish subset of
//! JavaScript values the paper's attacks and policies manipulate.
//!
//! # Examples
//!
//! ```
//! use jsk_browser::value::JsValue;
//!
//! let msg = JsValue::object([
//!     ("command", JsValue::from("pendingChildFetch")),
//!     ("id", JsValue::from(7.0)),
//! ]);
//! assert_eq!(msg.get("command").and_then(JsValue::as_str), Some("pendingChildFetch"));
//! assert_eq!(msg.get("id").and_then(JsValue::as_f64), Some(7.0));
//! assert!(msg.get("missing").is_none());
//! ```

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A JavaScript-like dynamic value.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum JsValue {
    /// The `undefined` value (also the default).
    #[default]
    Undefined,
    /// The `null` value.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (all JavaScript numbers are `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsValue>),
    /// An object with string keys (ordered for determinism).
    Obj(BTreeMap<String, JsValue>),
}

impl JsValue {
    /// Builds an object value from `(key, value)` pairs.
    #[must_use]
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsValue)>) -> JsValue {
        JsValue::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array value.
    #[must_use]
    pub fn array(items: impl IntoIterator<Item = JsValue>) -> JsValue {
        JsValue::Arr(items.into_iter().collect())
    }

    /// Property lookup on objects; `None` for other variants or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsValue> {
        match self {
            JsValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Index lookup on arrays.
    #[must_use]
    pub fn at(&self, index: usize) -> Option<&JsValue> {
        match self {
            JsValue::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The number backing this value, if it is a [`JsValue::Num`].
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string backing this value, if it is a [`JsValue::Str`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean backing this value, if it is a [`JsValue::Bool`].
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// JavaScript truthiness.
    #[must_use]
    pub fn is_truthy(&self) -> bool {
        match self {
            JsValue::Undefined | JsValue::Null => false,
            JsValue::Bool(b) => *b,
            JsValue::Num(n) => *n != 0.0 && !n.is_nan(),
            JsValue::Str(s) => !s.is_empty(),
            JsValue::Arr(_) | JsValue::Obj(_) => true,
        }
    }

    /// Whether this is `undefined`.
    #[must_use]
    pub fn is_undefined(&self) -> bool {
        matches!(self, JsValue::Undefined)
    }

    /// Inserts a property, turning the value into an object if needed.
    /// Returns the previous value of the key, if any.
    pub fn set(&mut self, key: impl Into<String>, value: JsValue) -> Option<JsValue> {
        if !matches!(self, JsValue::Obj(_)) {
            *self = JsValue::Obj(BTreeMap::new());
        }
        match self {
            JsValue::Obj(map) => map.insert(key.into(), value),
            _ => unreachable!("just coerced to object"),
        }
    }
}

impl From<bool> for JsValue {
    fn from(b: bool) -> Self {
        JsValue::Bool(b)
    }
}

impl From<f64> for JsValue {
    fn from(n: f64) -> Self {
        JsValue::Num(n)
    }
}

impl From<u64> for JsValue {
    fn from(n: u64) -> Self {
        JsValue::Num(n as f64)
    }
}

impl From<i32> for JsValue {
    fn from(n: i32) -> Self {
        JsValue::Num(f64::from(n))
    }
}

impl From<&str> for JsValue {
    fn from(s: &str) -> Self {
        JsValue::Str(s.to_owned())
    }
}

impl From<String> for JsValue {
    fn from(s: String) -> Self {
        JsValue::Str(s)
    }
}

impl<T: Into<JsValue>> From<Vec<T>> for JsValue {
    fn from(items: Vec<T>) -> Self {
        JsValue::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for JsValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsValue::Undefined => write!(f, "undefined"),
            JsValue::Null => write!(f, "null"),
            JsValue::Bool(b) => write!(f, "{b}"),
            JsValue::Num(n) => write!(f, "{n}"),
            JsValue::Str(s) => write!(f, "{s:?}"),
            JsValue::Arr(items) => {
                write!(f, "[")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{it}")?;
                }
                write!(f, "]")
            }
            JsValue::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{k:?}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_and_get() {
        let v = JsValue::object([("a", JsValue::from(1.0)), ("b", JsValue::from("x"))]);
        assert_eq!(v.get("a").and_then(JsValue::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(JsValue::as_str), Some("x"));
        assert!(v.get("c").is_none());
        assert!(JsValue::Null.get("a").is_none());
    }

    #[test]
    fn array_indexing() {
        let v = JsValue::array([JsValue::from(1.0), JsValue::from(2.0)]);
        assert_eq!(v.at(1).and_then(JsValue::as_f64), Some(2.0));
        assert!(v.at(5).is_none());
        assert!(JsValue::from(3.0).at(0).is_none());
    }

    #[test]
    fn truthiness_matches_javascript() {
        assert!(!JsValue::Undefined.is_truthy());
        assert!(!JsValue::Null.is_truthy());
        assert!(!JsValue::from(0.0).is_truthy());
        assert!(!JsValue::from(f64::NAN).is_truthy());
        assert!(!JsValue::from("").is_truthy());
        assert!(JsValue::from(1.0).is_truthy());
        assert!(JsValue::from("x").is_truthy());
        assert!(JsValue::array([]).is_truthy());
        assert!(JsValue::object::<&str>([]).is_truthy());
    }

    #[test]
    fn set_coerces_to_object() {
        let mut v = JsValue::Undefined;
        assert!(v.set("k", JsValue::from(5.0)).is_none());
        assert_eq!(v.get("k").and_then(JsValue::as_f64), Some(5.0));
        let prev = v.set("k", JsValue::from(6.0));
        assert_eq!(prev.and_then(|p| p.as_f64()), Some(5.0));
    }

    #[test]
    fn display_is_json_like() {
        let v = JsValue::object([("n", JsValue::from(1.0)), ("s", JsValue::from("hi"))]);
        assert_eq!(v.to_string(), "{\"n\":1,\"s\":\"hi\"}");
        assert_eq!(JsValue::array([JsValue::Null]).to_string(), "[null]");
    }

    #[test]
    fn default_is_undefined() {
        assert!(JsValue::default().is_undefined());
    }
}
